"""Legacy setuptools shim (the sandboxed environment lacks the ``wheel``
package, so PEP 517 editable installs are unavailable; ``pip install -e .``
falls back to ``setup.py develop`` via this file)."""

from setuptools import setup

setup()
