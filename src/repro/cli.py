"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``claims [--details] [--env-objects N]`` — replay every numbered claim
  and worked example of the paper (the PVS-replay run);
* ``parse FILE.oun`` — parse and elaborate an OUN document, listing the
  specifications it declares;
* ``check FILE.oun --refines CONCRETE ABSTRACT`` — decide a refinement
  between two specifications declared in the document;
* ``check FILE.oun --equal A B`` — decide extensional equality;
* ``check FILE.oun --compose A B`` — compose two specifications, printing
  the composability report and the observable alphabet;
* ``deadlock FILE.oun SPEC`` — quiescence/deadlock analysis of a
  specification over a finite universe;
* ``monitor FILE.oun SPEC TRACE`` — check a recorded trace (or ``-`` to
  stream events from stdin) against a specification;
* ``serve FILE.oun`` / ``serve --scenario NAME`` — run the
  online-monitoring TCP service over the document's specifications, or
  over a built-in workload scenario's (``--http-port N`` also serves
  the HTTP/JSON gateway, see docs/http-api.md);
* ``gateway`` — run the HTTP/JSON gateway standalone, in front of an
  already-running monitoring service;
* ``send TRACE`` — stream a trace to a running service and report the
  session verdict;
* ``workload list`` — list the built-in multiparty-protocol scenarios;
* ``workload run SCENARIO`` — generate seeded (optionally
  fault-injected) event streams from a scenario, drive them through the
  service, and check the observed verdicts against the generator's
  violation oracle;
* ``workload verify SCENARIO`` — discharge a scenario's
  refinement/composition claims through the obligation engine;
* ``explain FILE.oun SPEC [--compose OTHER ...]`` — show what the
  normalization pipeline does to a specification: the machine tree
  before and after, and per-pass rewrite counts;
* ``profile FILE.oun SPEC`` — run the full pipeline (elaborate →
  normalize → compile cold and warm → check) with tracing on and print
  the nested span tree with per-phase wall time.

Exit status is 0 when the query's answer is positive (refines / equal /
composable / deadlock-free; for ``claims``, full agreement; for
``monitor``/``send``, no violation; for ``workload run``, every session
agreeing with the oracle), 1 otherwise, 2 for usage or input errors.

The obligation-running commands (``claims``, ``check --refines/--equal``,
``verify``) accept ``--jobs N`` to fan independent obligations out to
worker processes and ``--cache-dir DIR`` to reuse compiled machines
across runs (``REPRO_CACHE_DIR`` sets a default; ``--no-cache`` forces
the cache off).  ``--no-normalize`` compiles raw trace sets, skipping the
normalization pipeline.  Results are independent of all three knobs — see
``repro.checker.engine`` and ``repro.passes``.  These flags live on one
shared parent parser, as does ``--obs-spans PATH`` (every subcommand):
stream every finished span of the run to a JSON-lines file.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from pathlib import Path

from repro.checker.engine import EngineConfig, ObligationEngine, ObligationSource
from repro.checker.universe import FiniteUniverse
from repro.core.composition import check_composable, compose
from repro.core.errors import ReproError
from repro.core.specification import Specification

__all__ = ["main", "build_parser"]


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags: every subcommand accepts these."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--obs-spans",
        default=None,
        metavar="PATH",
        help="write every finished span of this run to PATH as JSON lines",
    )
    return parent


def _engine_parent() -> argparse.ArgumentParser:
    """Shared engine flags for the obligation-running subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run obligations on N worker processes (default 1: inline)",
    )
    parent.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-obligation timeout (enforced when --jobs > 1)",
    )
    parent.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed machine cache directory "
        "(default: $REPRO_CACHE_DIR if set, else no cache)",
    )
    parent.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the machine cache even if REPRO_CACHE_DIR is set",
    )
    parent.add_argument(
        "--no-normalize",
        action="store_true",
        help="compile raw trace sets, skipping the normalization pipeline "
        "(results are identical; only work and cache keys change)",
    )
    return parent


def _engine_config(args) -> EngineConfig:
    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    if args.no_cache:
        cache_dir = None
    return EngineConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        cache_dir=cache_dir,
        normalize=not args.no_normalize,
    )


def _run_engine(source: ObligationSource, config: EngineConfig, out):
    """Run a source through the engine, printing stats when interesting."""
    run = ObligationEngine(config).run(source)
    if config.cache_dir is not None:
        m = run.metrics
        print(
            f"cache: {m.cache_hits} hits, {m.cache_misses} misses, "
            f"{m.cache_uncacheable} uncacheable "
            f"({m.cache_stores} stored; dir {config.cache_dir})",
            file=out,
        )
    if config.jobs > 1:
        print(
            f"engine: {len(run.session.outcomes)} obligations on "
            f"{run.jobs} workers in {run.wall_seconds:.2f}s",
            file=out,
        )
    return run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Composition and refinement for partial object "
        "specifications — checker CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs = _obs_parent()
    engine = _engine_parent()

    p_claims = sub.add_parser(
        "claims", help="replay the paper's claims", parents=[obs, engine]
    )
    p_claims.add_argument("--details", action="store_true")
    p_claims.add_argument("--env-objects", type=int, default=2)

    p_parse = sub.add_parser(
        "parse", help="parse an OUN document", parents=[obs]
    )
    p_parse.add_argument("file", type=Path)
    p_parse.add_argument(
        "--format",
        action="store_true",
        help="print the canonically formatted document instead of a summary",
    )

    p_monitor = sub.add_parser(
        "monitor",
        help="check a recorded trace file against a specification",
        parents=[obs],
    )
    p_monitor.add_argument("file", type=Path, help="OUN document")
    p_monitor.add_argument("spec", help="specification name")
    p_monitor.add_argument(
        "trace", help="trace file, or '-' to stream events from stdin"
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the online-monitoring service over an OUN document",
        parents=[obs],
    )
    p_serve.add_argument(
        "file",
        type=Path,
        nargs="?",
        help="OUN document with the specs (or use --scenario)",
    )
    p_serve.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="serve a built-in workload scenario's specifications instead "
        "of an OUN document (see 'repro workload list')",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7471, help="TCP port (0 picks one)"
    )
    p_serve.add_argument(
        "--shards", type=int, default=4, help="monitor worker shards"
    )
    p_serve.add_argument(
        "--history-limit",
        type=int,
        default=4096,
        help="bounded per-monitor event window",
    )
    p_serve.add_argument(
        "--procs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (N > 1 runs the scale-out topology: "
        "SO_REUSEPORT where available, a socket-handoff router otherwise)",
    )
    p_serve.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        metavar="PATH",
        help="durable-session data directory: append-only event logs + "
        "monitor snapshots, replayed when a session key reconnects "
        "(survives worker crashes and restarts)",
    )
    p_serve.add_argument(
        "--watch",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="poll a document for edits and hot-swap the live registry "
        "(bare --watch follows the served FILE.oun)",
    )
    p_serve.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="periodically dump metrics to stderr",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve a Prometheus text scrape endpoint on PORT "
        "(0 picks one; with --procs > 1 the gateway aggregates all "
        "workers' metrics here)",
    )
    p_serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve the HTTP/JSON gateway on PORT (0 picks one); "
        "REST endpoints over the same service — see docs/http-api.md",
    )

    p_gateway = sub.add_parser(
        "gateway",
        help="HTTP/JSON gateway in front of a running monitoring service",
        parents=[obs],
    )
    p_gateway.add_argument("--host", default="127.0.0.1", help="HTTP bind host")
    p_gateway.add_argument(
        "--http-port",
        type=int,
        default=8080,
        metavar="PORT",
        help="HTTP port (0 picks one)",
    )
    p_gateway.add_argument(
        "--backend-host", default="127.0.0.1", help="monitoring service host"
    )
    p_gateway.add_argument(
        "--backend-port",
        type=int,
        default=7471,
        help="monitoring service TCP port",
    )
    p_gateway.add_argument(
        "--metrics-backend",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="aggregate GET /v1/metrics over these endpoints instead of "
        "the backend (repeat once per worker direct port)",
    )
    p_gateway.add_argument(
        "--retries",
        type=int,
        default=5,
        help="backend connect retries (with backoff)",
    )

    p_send = sub.add_parser(
        "send",
        help="stream a trace to a running monitoring service",
        parents=[obs],
    )
    p_send.add_argument("trace", help="trace file, or '-' to read stdin")
    p_send.add_argument("--spec", required=True, help="specification name")
    p_send.add_argument("--host", default="127.0.0.1")
    p_send.add_argument("--port", type=int, default=7471)
    p_send.add_argument(
        "--retries", type=int, default=5, help="connect retries (with backoff)"
    )
    p_send.add_argument(
        "--binary",
        action="store_true",
        help="request the proto=2 binary framing (falls back to text "
        "against an older server)",
    )
    p_send.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="EVENTS ids per binary batch (default: the client's)",
    )

    p_reload = sub.add_parser(
        "reload",
        help="hot-swap the compiled specs of a running monitoring service",
        parents=[obs],
    )
    p_reload.add_argument(
        "file",
        type=Path,
        nargs="?",
        help="OUN document with the new specs (or use --scenario)",
    )
    p_reload.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="rebuild a built-in workload scenario's specs instead of "
        "sending an OUN document",
    )
    p_reload.add_argument("--host", default="127.0.0.1")
    p_reload.add_argument("--port", type=int, default=7471)
    p_reload.add_argument(
        "--retries", type=int, default=5, help="connect retries (with backoff)"
    )
    p_reload.add_argument(
        "--binary",
        action="store_true",
        help="send the update over the proto=2 binary framing",
    )
    p_reload.add_argument(
        "--force",
        action="store_true",
        help="swap in freshly compiled machines even for unchanged specs",
    )

    p_check = sub.add_parser(
        "check",
        help="check a query over an OUN document",
        parents=[obs, engine],
    )
    p_check.add_argument("file", type=Path)
    group = p_check.add_mutually_exclusive_group(required=True)
    group.add_argument("--refines", nargs=2, metavar=("CONCRETE", "ABSTRACT"))
    group.add_argument("--equal", nargs=2, metavar=("A", "B"))
    group.add_argument("--compose", nargs=2, metavar=("A", "B"))
    p_check.add_argument("--env-objects", type=int, default=2)
    p_check.add_argument("--data-values", type=int, default=1)
    p_check.add_argument(
        "--strategy", choices=("auto", "automata", "bounded"), default="auto"
    )
    p_check.add_argument("--depth", type=int, default=8)

    p_matrix = sub.add_parser(
        "matrix",
        help="pairwise refinement matrix of a document's specs",
        parents=[obs],
    )
    p_matrix.add_argument("file", type=Path)
    p_matrix.add_argument("spec", nargs="*", help="subset of specs (default all)")
    p_matrix.add_argument("--env-objects", type=int, default=2)

    p_verify = sub.add_parser(
        "verify",
        help="discharge the assertions of an OUN document",
        parents=[obs, engine],
    )
    p_verify.add_argument("file", type=Path)
    p_verify.add_argument("--env-objects", type=int, default=2)
    p_verify.add_argument("--data-values", type=int, default=1)
    p_verify.add_argument(
        "--strategy", choices=("auto", "automata", "bounded"), default="auto"
    )

    p_dead = sub.add_parser(
        "deadlock", help="quiescence analysis of a spec", parents=[obs]
    )
    p_dead.add_argument("file", type=Path)
    p_dead.add_argument("spec", nargs="+")
    p_dead.add_argument("--env-objects", type=int, default=2)

    p_explain = sub.add_parser(
        "explain",
        help="show what normalization does to a specification "
        "(before/after machine tree, per-pass rewrite counts), or diff "
        "two documents post-normalization with --diff",
        parents=[obs],
    )
    p_explain.add_argument(
        "file", type=Path, nargs="?", help="OUN document (omit with --diff)"
    )
    p_explain.add_argument(
        "spec", nargs="?", help="specification name (omit with --diff)"
    )
    p_explain.add_argument(
        "--compose",
        nargs="+",
        metavar="SPEC",
        default=(),
        help="compose the named specs onto SPEC first, then explain the "
        "composition",
    )
    p_explain.add_argument(
        "--diff",
        nargs=2,
        type=Path,
        metavar=("OLD", "NEW"),
        default=None,
        help="diff two OUN documents post-normalization: specs "
        "added/removed, machines changed by content fingerprint, "
        "alphabet deltas (exit 1 when the documents differ)",
    )

    p_workload = sub.add_parser(
        "workload",
        help="multiparty-protocol scenarios: generate fault-injected "
        "streams, drive the service, check the violation oracle",
    )
    wsub = p_workload.add_subparsers(dest="workload_command", required=True)

    wsub.add_parser(
        "list", help="list the built-in scenarios", parents=[obs]
    )

    w_run = wsub.add_parser(
        "run",
        help="drive one scenario's streams through the service and "
        "compare verdicts with the oracle",
        parents=[obs],
    )
    w_run.add_argument("scenario", help="scenario name")
    w_run.add_argument(
        "--seed", type=int, default=0, help="run seed (session i uses SEED:i)"
    )
    w_run.add_argument(
        "--faults",
        default="",
        metavar="reorder=P,dup=P,drop=P",
        help="per-event fault probabilities (default: none)",
    )
    w_run.add_argument(
        "--sessions", type=int, default=4, help="concurrent sessions"
    )
    w_run.add_argument(
        "--events",
        type=int,
        default=200,
        metavar="N",
        help="happy-path events per session (per batch with --duration)",
    )
    w_run.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep streaming batches until the deadline instead of "
        "stopping after one batch of --events",
    )
    w_run.add_argument(
        "--host", default=None, help="drive an external service (with --port)"
    )
    w_run.add_argument(
        "--port",
        type=int,
        default=None,
        help="external service port (default: a hermetic in-process server)",
    )
    w_run.add_argument(
        "--shards", type=int, default=4, help="in-process server shards"
    )
    w_run.add_argument(
        "--history-limit",
        type=int,
        default=4096,
        help="bounded per-monitor event window (in-process server)",
    )
    w_run.add_argument(
        "--binary",
        action="store_true",
        help="drive the streams over the proto=2 binary framing",
    )
    w_run.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="EVENTS ids per binary batch (default: the client's)",
    )
    w_run.add_argument(
        "--procs",
        type=int,
        default=None,
        metavar="N",
        help="drive a hermetic N-process scale-out server instead of the "
        "in-process one",
    )
    w_run.add_argument(
        "--data-dir",
        default=None,
        metavar="PATH",
        help="durable-session data directory for the hermetic server "
        "(default with --durable: a temporary directory)",
    )
    w_run.add_argument(
        "--durable",
        action="store_true",
        help="give every session an idempotency key so streams survive "
        "server crashes exactly-once",
    )
    w_run.add_argument(
        "--kill-at",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="SIGKILL a random worker once N total events have been sent "
        "(repeatable; needs --procs and --durable)",
    )
    w_run.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help="persist a BENCH_workload_<scenario>.json (fault-free "
        "baseline plus the requested run) to PATH (file or directory)",
    )

    w_verify = wsub.add_parser(
        "verify",
        help="discharge a scenario's refinement/composition claims",
        parents=[obs, engine],
    )
    w_verify.add_argument("scenario", help="scenario name")

    p_profile = sub.add_parser(
        "profile",
        help="trace one full pipeline run (elaborate → normalize → compile "
        "cold/warm → check) and print the span tree with per-phase time",
        parents=[obs],
    )
    p_profile.add_argument("file", type=Path, help="OUN document")
    p_profile.add_argument("spec", help="specification name")
    p_profile.add_argument("--env-objects", type=int, default=2)
    p_profile.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="machine cache for the cold/warm compile pair "
        "(default: a temporary directory)",
    )
    p_profile.add_argument(
        "--no-normalize",
        action="store_true",
        help="profile with the normalization pipeline off",
    )

    return parser


def _load(path: Path) -> dict[str, Specification]:
    from repro.oun import load_specifications

    try:
        text = path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    return load_specifications(text)


def _pick(specs: dict[str, Specification], name: str) -> Specification:
    spec = specs.get(name)
    if spec is None:
        known = ", ".join(sorted(specs))
        raise ReproError(f"no specification named {name!r} (have: {known})")
    return spec


def _cmd_claims(args, out) -> int:
    source = ObligationSource.of(
        "repro.paper.claims:build_obligations", env_objects=args.env_objects
    )
    run = _run_engine(source, _engine_config(args), out)
    session = run.session
    print(session.format_table(), file=out)
    if args.details:
        print(file=out)
        print(session.format_details(), file=out)
    print(file=out)
    if session.all_agree:
        print("all obligations agree with the paper", file=out)
        return 0
    print("DISAGREEMENTS:", file=out)
    for outcome in session.failures():
        print(
            f"  {outcome.obligation.ident}: "
            f"{outcome.error or outcome.result.explain()}",
            file=out,
        )
    return 1


def _cmd_parse(args, out) -> int:
    if args.format:
        from repro.oun import format_document, parse_document

        try:
            text = args.file.read_text()
        except OSError as exc:
            raise ReproError(f"cannot read {args.file}: {exc}") from exc
        print(format_document(parse_document(text)), file=out, end="")
        return 0
    specs = _load(args.file)
    for name, spec in sorted(specs.items()):
        objs = ", ".join(str(o) for o in sorted(spec.objects))
        methods = ", ".join(sorted(spec.alphabet.methods()))
        print(f"{name}: objects {{{objs}}}; methods {methods}", file=out)
    return 0


def _cmd_monitor(args, out) -> int:
    from repro.runtime import SpecMonitor, tracefile

    specs = _load(args.file)
    spec = _pick(specs, args.spec)
    monitor = SpecMonitor(spec)
    if args.trace == "-":
        # streaming mode: one event per stdin line, first violation wins —
        # this is the offline end of the service's wire format (pipes compose)
        events = 0
        for lineno, raw in enumerate(sys.stdin, start=1):
            event = tracefile.parse_line(raw, lineno)
            if event is None:
                continue
            events += 1
            if not monitor.observe(event):
                v = monitor.violations[0]
                print(f"line {lineno}: {v}", file=out)
                return 1
        print(
            f"{spec.name}: stream of {events} events satisfies the "
            f"specification",
            file=out,
        )
        return 0
    trace = tracefile.load(Path(args.trace))
    for event in trace:
        monitor.observe(event)
    if monitor.ok:
        print(
            f"{spec.name}: trace of {len(trace)} events satisfies the "
            f"specification",
            file=out,
        )
        return 0
    for v in monitor.violations:
        print(str(v), file=out)
    return 1


def _backend_host(host: str) -> str:
    """A connectable address for a service bound to ``host``."""
    return "127.0.0.1" if host in ("0.0.0.0", "::") else host


async def _start_gateway(
    args, backend_port, *, metrics_targets=None, metrics_port=None
):
    """Open an api.Gateway + HTTP front(s) next to a started server.

    Returns ``(gateway, fronts)``; fronts are the bound
    :class:`~repro.gateway.GatewayServer` objects, ``--http-port`` first
    and the aggregated ``--metrics-port`` endpoint (when asked) last.
    The gateway speaks TCP to the server this loop runs, so its blocking
    open happens off-loop.
    """
    import asyncio

    from repro.api import Gateway
    from repro.gateway import GatewayServer

    loop = asyncio.get_running_loop()
    gateway = Gateway(
        _backend_host(args.host),
        backend_port,
        metrics_targets=metrics_targets,
    )
    await loop.run_in_executor(None, gateway.open)
    fronts = []
    try:
        if args.http_port is not None:
            fronts.append(
                GatewayServer(
                    gateway, host=args.host, port=args.http_port
                ).start()
            )
        if metrics_port is not None:
            fronts.append(
                GatewayServer(
                    gateway, host=args.host, port=metrics_port
                ).start()
            )
    except BaseException:
        for front in fronts:
            front.close()
        await loop.run_in_executor(None, gateway.close)
        raise
    return gateway, fronts


async def _stop_gateway(gateway, fronts) -> None:
    import asyncio

    loop = asyncio.get_running_loop()
    for front in fronts:
        await loop.run_in_executor(None, front.close)
    if gateway is not None:
        await loop.run_in_executor(None, gateway.close)


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.service import MonitorServer, SpecRegistry

    if (args.file is None) == (args.scenario is None):
        raise ReproError(
            "serve needs exactly one of FILE.oun or --scenario NAME"
        )
    watch = args.watch
    if watch == "":
        if args.file is None:
            raise ReproError("bare --watch needs a served FILE.oun")
        watch = args.file
    if args.scenario is not None:
        from repro.workload.scenarios import get_scenario

        registry = get_scenario(args.scenario).registry(
            history_limit=args.history_limit
        )
    else:
        registry = SpecRegistry.from_file(
            args.file, history_limit=args.history_limit
        )
    if not registry.names():
        raise ReproError(f"{args.file}: no monitorable specifications")
    names = ", ".join(registry.names())

    if args.procs > 1:
        if args.metrics_interval is not None:
            raise ReproError(
                "--metrics-interval is a single-process knob; with "
                "--procs > 1 use --metrics-port (the gateway aggregates "
                "all workers) or scrape worker direct ports individually"
            )
        from repro.service.topology import ScaleOutServer

        async def run_scaleout() -> None:
            server = ScaleOutServer(
                scenario=args.scenario,
                document=(
                    args.file.read_text(encoding="utf-8")
                    if args.scenario is None
                    else None
                ),
                procs=args.procs,
                shards=args.shards,
                host=args.host,
                port=args.port,
                data_dir=args.data_dir,
                history_limit=args.history_limit,
                watch=watch,
            )
            await server.start()
            gateway, fronts = None, []
            if args.http_port is not None or args.metrics_port is not None:
                host = _backend_host(args.host)
                gateway, fronts = await _start_gateway(
                    args,
                    server.port,
                    # Re-evaluated per scrape: respawned workers come
                    # back on fresh direct ports.
                    metrics_targets=lambda: [
                        (host, port) for port in server.worker_ports if port
                    ],
                    metrics_port=args.metrics_port,
                )
            notes = ""
            if args.http_port is not None:
                notes += f"; http on :{fronts[0].port}"
            if args.metrics_port is not None:
                notes += f"; metrics on :{fronts[-1].port}"
            print(
                f"repro service on {server.host}:{server.port} "
                f"({args.procs} procs x {args.shards} shards, "
                f"{server.mode} listener; specs: {names}{notes})",
                file=out,
                flush=True,
            )
            try:
                await asyncio.Event().wait()
            finally:
                await _stop_gateway(gateway, fronts)
                await server.stop()

        try:
            asyncio.run(run_scaleout())
        except KeyboardInterrupt:
            print("service stopped", file=out)
        return 0

    async def run() -> None:
        server = MonitorServer(
            registry,
            shards=args.shards,
            host=args.host,
            port=args.port,
            metrics_interval=args.metrics_interval,
            metrics_port=args.metrics_port,
            data_dir=args.data_dir,
            watch=watch,
        )
        await server.start()
        gateway, fronts = None, []
        if args.http_port is not None:
            gateway, fronts = await _start_gateway(args, server.port)
        scrape = (
            f"; metrics on :{server.metrics_port}"
            if server.metrics_port is not None
            else ""
        )
        http_note = f"; http on :{fronts[0].port}" if fronts else ""
        print(
            f"repro service on {server.host}:{server.port} "
            f"({args.shards} shards; specs: {names}{scrape}{http_note})",
            file=out,
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await _stop_gateway(gateway, fronts)
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("service stopped", file=out)
    return 0


def _cmd_send(args, out) -> int:
    import asyncio

    from repro.service import MonitorClient

    async def run() -> int:
        extra = {}
        if args.binary:
            extra["proto"] = 2
        if args.batch is not None:
            extra["batch"] = args.batch
        client = MonitorClient(
            args.host,
            args.port,
            spec=args.spec,
            connect_retries=args.retries,
            **extra,
        )
        await client.connect()
        try:
            if args.trace == "-":
                for raw in sys.stdin:
                    if raw.strip():
                        await client.send_event(raw.strip())
            else:
                from repro.runtime import tracefile

                await client.send_trace(tracefile.load(Path(args.trace)))
            status = await client.status()
        finally:
            await client.close()
        if status.ok:
            print(
                f"{args.spec}: {status.events} events ok "
                f"({status.skipped} outside the alphabet, "
                f"{status.errors} errors)",
                file=out,
            )
            return 0
        print(
            f"{args.spec} violated at event #{status.violation_index}: "
            f"{status.violation_event}",
            file=out,
        )
        return 1

    return asyncio.run(run())


def _cmd_gateway(args, out) -> int:
    import threading

    from repro.api import Gateway
    from repro.gateway import GatewayServer

    targets = None
    if args.metrics_backend:
        targets = []
        for entry in args.metrics_backend:
            host, sep, port = entry.rpartition(":")
            if not sep or not port.isdigit():
                raise ReproError(
                    f"--metrics-backend needs HOST:PORT, got {entry!r}"
                )
            targets.append((host or "127.0.0.1", int(port)))
    gateway = Gateway(
        args.backend_host,
        args.backend_port,
        connect_retries=args.retries,
        metrics_targets=targets,
    )
    with gateway:
        front = GatewayServer(gateway, host=args.host, port=args.http_port)
        front.start()
        print(
            f"repro gateway on {front.host}:{front.port} -> "
            f"{args.backend_host}:{args.backend_port}",
            file=out,
            flush=True,
        )
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("gateway stopped", file=out)
        finally:
            front.close()
    return 0


def _cmd_reload(args, out) -> int:
    from repro.api import update_from_text

    if (args.file is None) == (args.scenario is None):
        raise ReproError(
            "reload needs exactly one of FILE.oun or --scenario NAME"
        )
    report = update_from_text(
        (
            args.file.read_text(encoding="utf-8")
            if args.file is not None
            else None
        ),
        scenario=args.scenario,
        host=args.host,
        port=args.port,
        force=args.force,
        proto=2 if args.binary else 1,
        retries=args.retries,
    )
    print(
        f"swapped {report['changed']} changed, "
        f"{report['unchanged']} unchanged, "
        f"{report['added']} added (specs: {','.join(report['specs']) or '-'})",
        file=out,
    )
    return 0


def _cmd_workload(args, out) -> int:
    from repro import workload

    if args.workload_command == "list":
        for sc in workload.all_scenarios():
            print(f"{sc.name}: {sc.title}", file=out)
            print(f"  monitored spec: {sc.monitored}", file=out)
            print(f"  {sc.description}", file=out)
        return 0

    if args.workload_command == "verify":
        source = ObligationSource.of(
            "repro.workload.scenarios:scenario_obligations",
            scenario=args.scenario,
        )
        run = _run_engine(source, _engine_config(args), out)
        session = run.session
        print(session.format_table(), file=out)
        print(file=out)
        if session.all_agree:
            print(
                f"all {args.scenario} claims agree with the corpus", file=out
            )
            return 0
        print("DISAGREEMENTS:", file=out)
        for outcome in session.failures():
            print(
                f"  {outcome.obligation.ident}: "
                f"{outcome.error or outcome.result.explain()}",
                file=out,
            )
        return 1

    faults = (
        workload.FaultSpec.parse(args.faults)
        if args.faults
        else workload.FaultSpec()
    )
    if (args.host is not None) and (args.port is None):
        raise ReproError("--host needs --port (an external service address)")
    kill_at = tuple(args.kill_at or ())
    if kill_at and not (args.procs and args.durable):
        raise ReproError("--kill-at needs --procs and --durable")
    knobs = dict(
        sessions=args.sessions,
        events=args.events,
        duration=args.duration,
        host=args.host,
        port=args.port,
        shards=args.shards,
        history_limit=args.history_limit,
        binary=args.binary,
        batch=args.batch,
        procs=args.procs,
        data_dir=args.data_dir,
        durable=args.durable,
        kill_at=kill_at,
    )
    report = workload.run_workload(
        args.scenario, seed=args.seed, faults=faults, **knobs
    )
    print(report.describe(), file=out)
    ok = report.all_agree
    if args.bench_out:
        runs = []
        if faults.active or kill_at:
            baseline = workload.run_workload(
                args.scenario,
                seed=args.seed,
                **{**knobs, "kill_at": ()},
            )
            ok = ok and baseline.all_agree
            runs.append(baseline.run_record("fault-free"))
        runs.append(
            report.run_record(
                "faulted" if (faults.active or kill_at) else "fault-free"
            )
        )
        path = workload.write_bench_json(
            args.bench_out,
            f"workload_{args.scenario}",
            {
                "scenario": args.scenario,
                "seed": args.seed,
                "faults": faults.as_dict(),
                "sessions": args.sessions,
                "events": args.events,
                "duration": args.duration,
                "mode": "external" if args.port is not None else "in-process",
                "wire": "binary" if args.binary else "text",
                "batch": args.batch,
                "shards": args.shards,
                "procs": args.procs,
                "durable": args.durable,
                "kill_at": list(kill_at),
            },
            runs,
        )
        print(f"bench results written to {path}", file=out)
    if not ok:
        print("ORACLE DISAGREEMENT (see sessions above)", file=out)
    return 0 if ok else 1


def _cmd_check(args, out) -> int:
    if args.refines or args.equal:
        # Both single-query forms run through the obligation engine so
        # --jobs/--cache-dir apply; jobs=1 without a cache is the plain
        # inline check it always was.
        kind, (left, right) = (
            ("refines", args.refines) if args.refines else ("equal", args.equal)
        )
        try:
            text = args.file.read_text()
        except OSError as exc:
            raise ReproError(f"cannot read {args.file}: {exc}") from exc
        source = ObligationSource.of(
            "repro.oun.verify:query_obligations",
            text=text,
            queries=((kind, left, right),),
            env_objects=args.env_objects,
            data_values=args.data_values,
            strategy=args.strategy,
            depth=args.depth,
        )
        run = _run_engine(source, _engine_config(args), out)
        outcome = run.session.outcomes[0]
        if outcome.error is not None:
            raise ReproError(outcome.error)
        result = outcome.result
        symbol = "⊑" if kind == "refines" else "≡"
        print(f"{left} {symbol} {right}: {result.explain()}", file=out)
        return 0 if result.holds else 1
    specs = _load(args.file)
    a = _pick(specs, args.compose[0])
    b = _pick(specs, args.compose[1])
    report = check_composable(a, b)
    print(f"composability: {report.explain()}", file=out)
    if not report.composable:
        return 1
    comp = compose(a, b)
    print(f"{comp.name}: objects {{{', '.join(map(str, sorted(comp.objects)))}}}", file=out)
    print(f"observable alphabet: {comp.alphabet}", file=out)
    return 0


def _cmd_matrix(args, out) -> int:
    from repro.checker.report import refinement_matrix
    from repro.checker.universe import FiniteUniverse

    specs = _load(args.file)
    if args.spec:
        chosen = [_pick(specs, name) for name in args.spec]
    else:
        chosen = [specs[name] for name in sorted(specs)]
    if len(chosen) < 2:
        raise ReproError("matrix needs at least two specifications")
    universe = FiniteUniverse.for_specs(*chosen, env_objects=args.env_objects)
    matrix = refinement_matrix(chosen, universe)
    print(matrix.format_table(), file=out)
    print(f"\nHasse edges (concrete → abstract): {matrix.hasse_edges()}", file=out)
    return 0


def _cmd_verify(args, out) -> int:
    from repro.oun.parser import parse_document
    from repro.oun.verify import AssertionOutcome

    try:
        text = args.file.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {args.file}: {exc}") from exc
    assertions = parse_document(text).assertions
    if not assertions:
        print("document declares no assertions", file=out)
        return 0
    source = ObligationSource.of(
        "repro.oun.verify:assertion_obligations",
        text=text,
        env_objects=args.env_objects,
        data_values=args.data_values,
        strategy=args.strategy,
    )
    run = _run_engine(source, _engine_config(args), out)
    # assertion_obligations yields obligations in document order, so the
    # engine's outcomes zip positionally with the parsed assertions.
    failed = 0
    for a, outcome in zip(assertions, run.session.outcomes):
        if outcome.error is not None:
            failed += 1
            neg = "not " if a.negated else ""
            print(
                f"assert {neg}{a.left} {a.kind} {a.right} "
                f"(line {a.line}): ERROR — {outcome.error}",
                file=out,
            )
            continue
        passed = outcome.result.holds != a.negated
        failed += 0 if passed else 1
        print(
            AssertionOutcome(a, outcome.result, passed).describe(), file=out
        )
    n = len(run.session.outcomes)
    print(f"\n{n - failed}/{n} assertions hold", file=out)
    return 0 if failed == 0 else 1


def _cmd_explain(args, out) -> int:
    from repro.passes import explain_spec, use_normalization

    if args.diff is not None:
        from repro.passes import diff_specifications, format_spec_diff

        if args.file is not None or args.spec is not None or args.compose:
            raise ReproError(
                "explain --diff takes no FILE/SPEC/--compose arguments"
            )
        old_path, new_path = args.diff
        diff = diff_specifications(_load(old_path), _load(new_path))
        print(format_spec_diff(diff), file=out)
        return 1 if diff.differs else 0
    if args.file is None or args.spec is None:
        raise ReproError("explain needs FILE and SPEC (or --diff OLD NEW)")
    # Elaborate with normalization off so the "before" tree is the raw
    # shape the document spelled, not what oun.elaborate already fused.
    with use_normalization(False):
        specs = _load(args.file)
        spec = _pick(specs, args.spec)
        for name in args.compose:
            spec = compose(spec, _pick(specs, name))
    print(explain_spec(spec), file=out)
    return 0


def _phase_rows(records) -> list[tuple[str, str]]:
    """Aggregate span records into per-phase wall-time rows.

    A record's phase is the first dotted segment of its span name
    (``compile.traceset_dfa`` → ``compile``); nested spans of the same
    phase are not double-counted because their enclosing span already
    covers their time.
    """
    by_id = {r.span_id: r for r in records}
    totals: dict[str, float] = {}
    first_start: dict[str, float] = {}
    for r in records:
        phase = r.name.split(".", 1)[0]
        first_start[phase] = min(first_start.get(phase, r.start), r.start)
        parent = by_id.get(r.parent_id)
        if parent is not None and parent.name.split(".", 1)[0] == phase:
            continue
        totals[phase] = totals.get(phase, 0.0) + r.seconds
    return [
        (phase, f"{totals[phase] * 1e3:9.2f} ms")
        for phase in sorted(totals, key=first_start.__getitem__)
    ]


def _cmd_profile(args, out) -> int:
    import tempfile

    from repro.checker.cache import MachineCache, use_cache
    from repro.checker.compile import traceset_dfa
    from repro.checker.refinement import check_refinement
    from repro.obs.export import InMemoryCollector, format_columns
    from repro.obs.trace import span, use_sink
    from repro.passes import use_normalization

    collector = InMemoryCollector()
    with contextlib.ExitStack() as stack:
        stack.enter_context(use_sink(collector))
        stack.enter_context(use_normalization(not args.no_normalize))
        cache_dir = args.cache_dir
        if cache_dir is None:
            cache_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-profile-")
            )
        profile_span = stack.enter_context(
            span("profile", spec=args.spec, file=str(args.file))
        )
        specs = _load(args.file)  # the elaborate span nests here
        spec = _pick(specs, args.spec)
        universe = FiniteUniverse.for_specs(
            spec, env_objects=args.env_objects
        )
        # Compile twice through one cache: the first populates it (the
        # span is annotated cache=miss), the second returns the stored
        # DFA (cache=hit) — both shapes show up in the printed tree.
        stack.enter_context(use_cache(MachineCache(cache_dir)))
        traceset_dfa(spec.traces, universe)
        traceset_dfa(spec.traces, universe)
        with span("check", query=f"{spec.name} refines {spec.name}") as sp:
            conclusion = check_refinement(spec, spec, universe)
            sp.set(holds=conclusion.holds)
        profile_span.set(universe=len(universe.values))
    print(f"profile of {args.spec} ({args.file}):", file=out)
    print(file=out)
    print(collector.format_tree(), file=out)
    print(file=out)
    print("per-phase wall time:", file=out)
    rows = [
        r for r in _phase_rows(collector.records) if r[0] != "profile"
    ]
    print(format_columns(rows, indent="  "), file=out)
    return 0


def _cmd_deadlock(args, out) -> int:
    from repro.liveness import quiescence_analysis

    specs = _load(args.file)
    targets = [_pick(specs, n) for n in args.spec]
    spec = targets[0]
    for other in targets[1:]:
        spec = compose(spec, other)
    universe = FiniteUniverse.for_specs(
        *targets, env_objects=args.env_objects
    )
    report = quiescence_analysis(spec, universe)
    print(f"{spec.name}: {report.explain()}", file=out)
    return 0 if report.deadlock_free else 1


_COMMANDS = {
    "claims": _cmd_claims,
    "parse": _cmd_parse,
    "monitor": _cmd_monitor,
    "serve": _cmd_serve,
    "gateway": _cmd_gateway,
    "send": _cmd_send,
    "reload": _cmd_reload,
    "workload": _cmd_workload,
    "check": _cmd_check,
    "matrix": _cmd_matrix,
    "verify": _cmd_verify,
    "deadlock": _cmd_deadlock,
    "explain": _cmd_explain,
    "profile": _cmd_profile,
}


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS.get(args.command)
    if command is None:  # pragma: no cover - argparse rejects unknown verbs
        raise AssertionError(f"unhandled command {args.command!r}")
    exporter = None
    try:
        if getattr(args, "obs_spans", None):
            from repro.obs.export import JsonLinesExporter
            from repro.obs.trace import add_sink, remove_sink

            exporter = JsonLinesExporter(args.obs_spans)
            add_sink(exporter)
        try:
            return command(args, out)
        finally:
            if exporter is not None:
                remove_sink(exporter)
                exporter.close()
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
