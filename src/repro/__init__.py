"""repro — composition and refinement for partial object specifications.

A reproduction of Johnsen & Owe, *Composition and Refinement for Partial
Object Specifications* (Univ. of Oslo research report 301 / FMPPTA 2002):
a trace-based specification formalism for objects with identity, a
refinement relation with alphabet expansion, composition with hiding, an
exact symbolic/automata-based checker, an OUN-style notation, and a
runtime simulator with online monitors.

The stable public surface lives in :mod:`repro.api` and is re-exported
here lazily (PEP 562), so ``import repro.some.submodule`` never pays for
the full checker stack::

    from repro import load, verify_refinement

    specs = load(Path("spec.oun").read_text())
    print(verify_refinement(specs["Read2"], specs["Read"]).holds)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim index.
"""

__version__ = "1.2.0"

#: Names resolved lazily from :mod:`repro.api` on first attribute access.
#: Kept equal to ``api.__all__`` — tests/test_api.py enforces the sync.
_API_NAMES = frozenset(
    {
        "API_VERSION",
        "Gateway",
        "Monitor",
        "check",
        "compile_spec",
        "elaborate",
        "load",
        "metrics_text",
        "parse",
        "serve",
        "serve_http",
        "update_from_text",
        "verify_refinement",
    }
)

__all__ = sorted(_API_NAMES | {"__version__"})


def __getattr__(name: str):
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | _API_NAMES)
