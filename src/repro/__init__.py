"""repro — composition and refinement for partial object specifications.

A reproduction of Johnsen & Owe, *Composition and Refinement for Partial
Object Specifications* (Univ. of Oslo research report 301 / FMPPTA 2002):
a trace-based specification formalism for objects with identity, a
refinement relation with alphabet expansion, composition with hiding, an
exact symbolic/automata-based checker, an OUN-style notation, and a
runtime simulator with online monitors.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim index.
"""

__version__ = "1.0.0"
