"""Case study: a pub/sub fan-out broker as a partial object specification.

A broker ``bk`` fans every published message out to a fixed set of
subscribers ``s1``/``s2`` and collects their acknowledgements before
accepting the next publication (a serial, at-most-one-in-flight broker —
the simplest shape that already exhibits the fan-out safety core).  The
publisher pool is a small concrete sort so every instantiated event is
expressible in the service wire format; the ``DATA`` payload on ``PUB``
and ``DELIVER`` keeps each alphabet infinite, as Definition 1 demands.

The classic fan-out facts become refinement/composition results:

* **fan-out as refinement** — the broker's full protocol
  (:meth:`broker_spec`) refines the partial *delivery view*
  (:meth:`delivery_view`): deliveries only ever occur in complete
  ``s1``/``s2`` pairs (``FanOutBroker ⊑ DeliveryFanOut``);
* **subscriber conformance** — the broker's projection onto each
  subscriber's alphabet satisfies that subscriber's own view
  (:meth:`subscriber_view`): deliver, then await the ack;
* **Theorem 7 at work** — ``ReliableSubscriber ⊑ LossySubscriber``
  lifts through composition with the broker (:meth:`lossy_subscriber`
  is the unconstrained abstraction);
* **encapsulation** — composing broker and subscriber views hides the
  delivery/ack machinery: observably the cell just accepts
  publications (:meth:`publish_oracle`).

Methods: ``PUB(d)`` (publisher→bk), ``DELIVER(d)`` (bk→subscriber),
``ACK`` (subscriber→bk).
"""

from __future__ import annotations

from repro.core.alphabet import Alphabet
from repro.core.patterns import pattern
from repro.core.sorts import DATA, Sort
from repro.core.specification import Specification, interface_spec
from repro.core.tracesets import FullTraceSet
from repro.core.values import ObjectId, obj
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex

__all__ = ["PubSubCast", "PUBSUB"]


class PubSubCast:
    """Objects, sorts, and specifications of the pub/sub cell."""

    def __init__(self) -> None:
        self.bk: ObjectId = obj("bk")
        self.s1: ObjectId = obj("s1")
        self.s2: ObjectId = obj("s2")
        self.pb1: ObjectId = obj("pb1")
        self.pb2: ObjectId = obj("pb2")

    # -- sorts -------------------------------------------------------------

    @property
    def publishers(self) -> Sort:
        return Sort.values(self.pb1, self.pb2)

    @property
    def subscribers(self) -> tuple[ObjectId, ObjectId]:
        return (self.s1, self.s2)

    def symbols(self) -> dict:
        return {
            "bk": self.bk,
            "s1": self.s1,
            "s2": self.s2,
            "pb1": self.pb1,
            "pb2": self.pb2,
            "Publishers": self.publishers,
        }

    @property
    def methods(self) -> dict[str, tuple[Sort, ...]]:
        return {"PUB": (DATA,), "DELIVER": (DATA,), "ACK": ()}

    # -- alphabets ---------------------------------------------------------

    def broker_alphabet(self) -> Alphabet:
        bk = Sort.values(self.bk)
        subs = Sort.values(self.s1, self.s2)
        return Alphabet.of(
            pattern(self.publishers, bk, "PUB", DATA),
            pattern(bk, subs, "DELIVER", DATA),
            pattern(subs, bk, "ACK"),
        )

    def delivery_alphabet(self) -> Alphabet:
        bk = Sort.values(self.bk)
        subs = Sort.values(self.s1, self.s2)
        return Alphabet.of(pattern(bk, subs, "DELIVER", DATA))

    def subscriber_alphabet(self, s: ObjectId) -> Alphabet:
        bk = Sort.values(self.bk)
        me = Sort.values(s)
        return Alphabet.of(
            pattern(bk, me, "DELIVER", DATA),
            pattern(me, bk, "ACK"),
        )

    # -- specifications ----------------------------------------------------

    def broker_spec(self) -> Specification:
        """``FanOutBroker``: publish, deliver to both, collect both acks.

        Per round: one publisher publishes; the broker delivers to both
        subscribers (in either order); both acknowledgements arrive (in
        either order); only then is the next publication accepted.
        """
        deliveries = (
            "[<bk,s1,DELIVER(_)> <bk,s2,DELIVER(_)> "
            "| <bk,s2,DELIVER(_)> <bk,s1,DELIVER(_)>]"
        )
        acks = "[<s1,bk,ACK> <s2,bk,ACK> | <s2,bk,ACK> <s1,bk,ACK>]"
        rounds = " | ".join(
            f"<{pb},bk,PUB(_)> {deliveries} {acks}" for pb in ("pb1", "pb2")
        )
        regex = parse_regex(
            f"[{rounds}]*", symbols=self.symbols(), methods=self.methods
        )
        return interface_spec(
            "FanOutBroker", self.bk, self.broker_alphabet(), PrsMachine(regex)
        )

    def delivery_view(self) -> Specification:
        """``DeliveryFanOut``: the partial view stating the fan-out core.

        Constrains the *delivery projection* only: deliveries occur in
        complete ``s1``/``s2`` pairs, one message's pair never
        interleaving with another's — "if any subscriber receives a
        message, every subscriber receives it".
        """
        regex = parse_regex(
            "[<bk,s1,DELIVER(_)> <bk,s2,DELIVER(_)> "
            "| <bk,s2,DELIVER(_)> <bk,s1,DELIVER(_)>]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return interface_spec(
            "DeliveryFanOut", self.bk, self.delivery_alphabet(), PrsMachine(regex)
        )

    def subscriber_view(self, s: ObjectId, name: str | None = None) -> Specification:
        """``ReliableSubscriber``: deliver, then the ack — repeatedly."""
        symbols = dict(self.symbols())
        symbols["s"] = s
        regex = parse_regex(
            "[<bk,s,DELIVER(_)> <s,bk,ACK>]*",
            symbols=symbols,
            methods=self.methods,
        )
        return interface_spec(
            name or f"ReliableSubscriber({s})",
            s,
            self.subscriber_alphabet(s),
            PrsMachine(regex),
        )

    def lossy_subscriber(self, s: ObjectId) -> Specification:
        """``LossySubscriber``: the unconstrained abstraction of a subscriber.

        Admits every trace over the subscriber's alphabet; the reliable
        view refines it, and Theorem 7 lifts that refinement through
        composition with the broker.
        """
        alphabet = self.subscriber_alphabet(s)
        return Specification(
            f"LossySubscriber({s})",
            frozenset((s,)),
            alphabet,
            FullTraceSet(alphabet),
        )

    def cell_spec(self) -> Specification:
        """The composed cell: broker ‖ subscriber views.

        Everything between {bk, s1, s2} is hidden; only PUB remains
        observable.
        """
        from repro.core.composition import compose

        return compose(
            compose(self.broker_spec(), self.subscriber_view(self.s1)),
            self.subscriber_view(self.s2),
            name="PubSubCell",
        )

    def publish_oracle(self) -> Specification:
        """What the cell should look like from outside: publications only."""
        from repro.core.tracesets import MachineTraceSet

        cell = self.cell_spec()
        rounds = " | ".join(f"<{pb},bk,PUB(_)>" for pb in ("pb1", "pb2"))
        regex = parse_regex(
            f"[{rounds}]*", symbols=self.symbols(), methods=self.methods
        )
        return Specification(
            "PublishService",
            cell.objects,
            cell.alphabet,
            MachineTraceSet(cell.alphabet, PrsMachine(regex)),
        )


#: Shared instance for tests, scenarios, and benchmarks.
PUBSUB = PubSubCast()
