"""Case study: two-phase commit, specified and verified with the library.

The paper's formalism targets open distributed systems; the worked
examples stay with a single readers/writers controller.  This case study
applies the formalism to a richer system — a serial two-phase-commit cell
(one coordinator ``co``, two participants ``p1``/``p2``, an open
population of clients) — and establishes the classic results as
refinement/composition facts, all checkable with the library:

* **atomicity as refinement** — the coordinator's full protocol
  (:meth:`coordinator_spec`) refines the partial *decision view*
  (:meth:`atomic_decision_spec`): commits only ever happen at both
  participants (``SerialCoordinator ⊑ AtomicDecision``);
* **participant conformance** — the coordinator's projection onto each
  participant's alphabet satisfies the participant's own view
  (:meth:`participant_spec`);
* **encapsulation** — composing the coordinator with both participant
  views hides the entire vote/decision machinery: the observable trace
  set equals the trivial request/response *service* oracle
  (:meth:`service_oracle`), the Example 4 phenomenon at component scale;
* **liveness** — the composed cell is deadlock-free and every BEGIN can
  still be answered by a DONE (checked by the liveness extension);
* **runtime** — behaviours for coordinator/participants/clients run the
  protocol under the simulator, with the specifications as online
  monitors (and a byzantine participant for fault injection).

Methods: ``BEGIN`` (client→co), ``PREPARE(t)`` (co→p, carrying the
transaction id — which also keeps every alphabet infinite, as
Definition 1 demands of open-system views), ``YES``/``NO`` (p→co),
``COMMIT``/``ABORT`` (co→p), ``DONE`` (co→client).
"""

from __future__ import annotations

from repro.core.alphabet import Alphabet
from repro.core.patterns import pattern
from repro.core.sorts import DATA, OBJ, Sort
from repro.core.specification import Specification, interface_spec
from repro.core.values import ObjectId, obj
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex

__all__ = ["TwoPhaseCast", "TWO_PHASE"]


class TwoPhaseCast:
    """Objects, sorts, and specifications of the 2PC cell."""

    def __init__(self) -> None:
        self.co: ObjectId = obj("co")
        self.p1: ObjectId = obj("p1")
        self.p2: ObjectId = obj("p2")
        #: the recovery log — a *fresh* identity reserved for the upgrade
        #: (Section 3: objects added by a refinement cannot be in the
        #: abstract specification's communication environment)
        self.lg: ObjectId = obj("lg")
        #: a concrete client used by the Theorem 16 instance
        self.cli: ObjectId = obj("cli")

    # -- sorts -------------------------------------------------------------

    @property
    def clients(self) -> Sort:
        """The open client population: everyone but the cell's members
        (and the reserved fresh log identity)."""
        return OBJ.without(self.co, self.p1, self.p2, self.lg)

    def symbols(self) -> dict:
        return {
            "co": self.co,
            "p1": self.p1,
            "p2": self.p2,
            "Clients": self.clients,
        }

    @property
    def methods(self) -> dict[str, tuple[Sort, ...]]:
        return {
            "BEGIN": (),
            "PREPARE": (DATA,),
            "YES": (),
            "NO": (),
            "COMMIT": (),
            "ABORT": (),
            "DONE": (),
            "STATUS": (),
            "PING": (),
        }

    # -- alphabets ------------------------------------------------------------

    def coordinator_alphabet(self) -> Alphabet:
        co = Sort.values(self.co)
        parts = Sort.values(self.p1, self.p2)
        cl = self.clients
        return Alphabet.of(
            pattern(cl, co, "BEGIN"),
            pattern(co, cl, "DONE"),
            pattern(co, parts, "PREPARE", DATA),
            pattern(parts, co, "YES"),
            pattern(parts, co, "NO"),
            pattern(co, parts, "COMMIT"),
            pattern(co, parts, "ABORT"),
        )

    def decision_alphabet(self) -> Alphabet:
        co = Sort.values(self.co)
        parts = Sort.values(self.p1, self.p2)
        return Alphabet.of(
            pattern(co, parts, "COMMIT"),
            pattern(co, parts, "ABORT"),
        )

    def participant_alphabet(self, p: ObjectId) -> Alphabet:
        co = Sort.values(self.co)
        me = Sort.values(p)
        return Alphabet.of(
            pattern(co, me, "PREPARE", DATA),
            pattern(me, co, "YES"),
            pattern(me, co, "NO"),
            pattern(co, me, "COMMIT"),
            pattern(co, me, "ABORT"),
        )

    # -- specifications ----------------------------------------------------------

    def coordinator_spec(self) -> Specification:
        """``SerialCoordinator``: one transaction at a time, full protocol.

        Per round: a client begins; both participants are prepared (in
        order — the coordinator issues calls sequentially); votes arrive
        in either order; unanimous YES commits both, otherwise both are
        aborted; the initiating client is notified.
        """
        commits = "<co,p1,COMMIT> <co,p2,COMMIT>"
        aborts = "<co,p1,ABORT> <co,p2,ABORT>"
        # After both prepares, votes arrive in either order; p1's vote may
        # also arrive *before* p2 is even prepared (the coordinator issues
        # calls sequentially, but vote delivery is asynchronous).
        both_prepared = (
            f"<co,p2,PREPARE(_)> "
            f"[[<p1,co,YES> <p2,co,YES> | <p2,co,YES> <p1,co,YES>] {commits} "
            f"| [<p1,co,NO> [<p2,co,YES> | <p2,co,NO>] "
            f"| <p2,co,NO> [<p1,co,YES> | <p1,co,NO>] "
            f"| <p1,co,YES> <p2,co,NO> "
            f"| <p2,co,YES> <p1,co,NO>] {aborts}]"
        )
        early_vote = (
            f"<p1,co,YES> <co,p2,PREPARE(_)> "
            f"[<p2,co,YES> {commits} | <p2,co,NO> {aborts}] "
            f"| <p1,co,NO> <co,p2,PREPARE(_)> [<p2,co,YES> | <p2,co,NO>] {aborts}"
        )
        round_ = (
            f"<cl,co,BEGIN> <co,p1,PREPARE(_)> "
            f"[{both_prepared} | {early_vote}] <co,cl,DONE>"
        )
        regex = parse_regex(
            f"[[{round_}] . cl : Clients]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return interface_spec(
            "SerialCoordinator",
            self.co,
            self.coordinator_alphabet(),
            PrsMachine(regex),
        )

    def atomic_decision_spec(self) -> Specification:
        """``AtomicDecision``: the partial view stating 2PC's safety core.

        Constrains the *decision projection* only: commits only ever occur
        in complete pairs, and decisions of one round never interleave
        with another round's — "if any participant commits, every
        participant commits".  The client-facing DONE events are in the
        alphabet but unconstrained (they keep the alphabet infinite, as
        Definition 1 requires of views of an open system, and make the
        view composable with client-side specifications).
        """
        regex = parse_regex(
            "[<co,p1,COMMIT> <co,p2,COMMIT> | <co,p2,COMMIT> <co,p1,COMMIT> "
            "| <co,p1,ABORT> <co,p2,ABORT> | <co,p2,ABORT> <co,p1,ABORT>]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        from repro.machines.projection import FilterMachine

        alphabet = self.decision_alphabet().union(
            Alphabet.of(pattern(Sort.values(self.co), self.clients, "DONE"))
        )
        machine = FilterMachine(self.decision_alphabet(), PrsMachine(regex))
        return interface_spec("AtomicDecision", self.co, alphabet, machine)

    def participant_spec(self, p: ObjectId, name: str | None = None) -> Specification:
        """``VoteProtocol``: a participant's own view of its life.

        Prepared, then votes, then learns the decision — repeatedly.  (A
        NO voter still receives the ABORT in this serial variant: the
        coordinator always closes the round explicitly.)
        """
        symbols = dict(self.symbols())
        symbols["p"] = p
        regex = parse_regex(
            "[<co,p,PREPARE(_)> [<p,co,YES> | <p,co,NO>] "
            "[<co,p,COMMIT> | <co,p,ABORT>]]*",
            symbols=symbols,
            methods=self.methods,
        )
        return interface_spec(
            name or f"VoteProtocol({p})",
            p,
            self.participant_alphabet(p),
            PrsMachine(regex),
        )

    def cell_spec(self) -> Specification:
        """The composed cell: coordinator ‖ participant views.

        Everything between {co, p1, p2} is hidden; only BEGIN/DONE remain
        observable.
        """
        from repro.core.composition import compose

        return compose(
            compose(self.coordinator_spec(), self.participant_spec(self.p1)),
            self.participant_spec(self.p2),
            name="TwoPhaseCell",
        )

    def recovery_spec(self) -> Specification:
        """``RecoveryCoordinator``: the Theorem 16 upgrade of the coordinator.

        A two-object component ``{co, lg}`` — the coordinator plus an
        internal recovery log — with a new client-facing ``STATUS`` method
        (unconstrained) on top of the unchanged protocol.  Refines
        :meth:`coordinator_spec` by alphabet *and* object expansion; the
        log traffic ``co↔lg`` is internal and never observable.
        """
        from repro.core.tracesets import MachineTraceSet
        from repro.machines.projection import FilterMachine

        base = self.coordinator_spec()
        alphabet = base.alphabet.union(
            Alphabet.of(pattern(self.clients, Sort.values(self.co), "STATUS"))
        )
        machine = FilterMachine(base.alphabet, base.traces.machine())
        return Specification(
            "RecoveryCoordinator",
            frozenset((self.co, self.lg)),
            alphabet,
            MachineTraceSet(alphabet, machine),
        )

    def client_view(self) -> Specification:
        """A concrete client's own view: begin, await done, repeat.

        Its alphabet names only the coordinator (plus an infinite PING
        tail towards the wider environment), so the recovery upgrade is
        *proper* with respect to it (Definition 14) and Theorem 16
        applies.
        """
        cli, co = Sort.values(self.cli), Sort.values(self.co)
        alphabet = Alphabet.of(
            pattern(cli, co, "BEGIN"),
            pattern(co, cli, "DONE"),
            pattern(
                cli,
                OBJ.without(self.cli, self.co, self.p1, self.p2, self.lg),
                "PING",
            ),
        )
        symbols = dict(self.symbols())
        symbols["cli"] = self.cli
        regex = parse_regex(
            "[<cli,co,BEGIN> <co,cli,DONE>]*",
            symbols=symbols,
            methods=self.methods,
        )
        return interface_spec("TxClient", self.cli, alphabet, PrsMachine(regex))

    def service_oracle(self) -> Specification:
        """What the cell should look like from outside: begin, then done."""
        cell = self.cell_spec()
        regex = parse_regex(
            "[[<cl,co,BEGIN> <co,cl,DONE>] . cl : Clients]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        from repro.core.tracesets import MachineTraceSet

        return Specification(
            "TransactionService",
            cell.objects,
            cell.alphabet,
            MachineTraceSet(cell.alphabet, PrsMachine(regex)),
        )


#: Shared instance for tests, examples, and benchmarks.
TWO_PHASE = TwoPhaseCast()
