"""Case study: two-phase commit with *dynamic* participant enlistment.

Extends :mod:`repro.casestudies.twophase`: instead of a fixed pair of
participants, the coordinator ``co`` enlists a per-round *prefix* of the
participant pool ``p1..p3`` — round ``k`` prepares exactly ``p1..pk``
(``k`` chosen dynamically per transaction), collects all ``k`` votes in
enlistment order, and decides uniformly.  The client pool is a small
concrete sort so every instantiated event is expressible in the service
wire format; ``PREPARE``'s transaction-id payload keeps every alphabet
infinite, as Definition 1 demands.

The dynamic-enlistment facts become refinement/composition results:

* **prefix atomicity as refinement** — the coordinator
  (:meth:`coordinator_spec`) refines the partial *decision view*
  (:meth:`decision_view`): decisions occur in uniform enlistment-prefix
  blocks — whatever subset was enlisted, all of it commits or all of it
  aborts (``DynamicCoordinator ⊑ PrefixAtomicDecision``);
* **fixed-set atomicity fails (a non-example)** — the coordinator does
  *not* refine :meth:`full_decision_view`, the static-membership view
  that expects every decision block to cover all three participants;
* **participant conformance** — each enlisted participant's own view
  (:meth:`participant_view`) is satisfied by the coordinator's
  projection, enlisted or not;
* **Theorem 7 at work** — ``DynamicVote ⊑ LossyParticipant`` lifts
  through composition with the coordinator (:meth:`lossy_participant`
  is the unconstrained abstraction).

Methods are those of the static study: ``BEGIN``, ``PREPARE(t)``,
``YES``/``NO``, ``COMMIT``/``ABORT``, ``DONE``.
"""

from __future__ import annotations

from itertools import product

from repro.core.alphabet import Alphabet
from repro.core.patterns import pattern
from repro.core.sorts import DATA, Sort
from repro.core.specification import Specification, interface_spec
from repro.core.values import ObjectId, obj
from repro.machines.projection import FilterMachine
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex

__all__ = ["DynamicTwoPhaseCast", "DYNAMIC_TWO_PHASE"]

_PARTS = ("p1", "p2", "p3")
_CLIENTS = ("cl1", "cl2")


class DynamicTwoPhaseCast:
    """Objects, sorts, and specifications of the dynamic 2PC cell."""

    def __init__(self) -> None:
        self.co: ObjectId = obj("co")
        self.p1: ObjectId = obj("p1")
        self.p2: ObjectId = obj("p2")
        self.p3: ObjectId = obj("p3")
        self.cl1: ObjectId = obj("cl1")
        self.cl2: ObjectId = obj("cl2")

    # -- sorts -------------------------------------------------------------

    @property
    def participants(self) -> tuple[ObjectId, ObjectId, ObjectId]:
        return (self.p1, self.p2, self.p3)

    @property
    def participant_sort(self) -> Sort:
        return Sort.values(*self.participants)

    @property
    def client_sort(self) -> Sort:
        return Sort.values(self.cl1, self.cl2)

    def symbols(self) -> dict:
        return {
            "co": self.co,
            "p1": self.p1,
            "p2": self.p2,
            "p3": self.p3,
            "cl1": self.cl1,
            "cl2": self.cl2,
            "Parts": self.participant_sort,
            "Clients": self.client_sort,
        }

    @property
    def methods(self) -> dict[str, tuple[Sort, ...]]:
        return {
            "BEGIN": (),
            "PREPARE": (DATA,),
            "YES": (),
            "NO": (),
            "COMMIT": (),
            "ABORT": (),
            "DONE": (),
        }

    # -- alphabets ---------------------------------------------------------

    def coordinator_alphabet(self) -> Alphabet:
        co = Sort.values(self.co)
        parts = self.participant_sort
        cl = self.client_sort
        return Alphabet.of(
            pattern(cl, co, "BEGIN"),
            pattern(co, cl, "DONE"),
            pattern(co, parts, "PREPARE", DATA),
            pattern(parts, co, "YES"),
            pattern(parts, co, "NO"),
            pattern(co, parts, "COMMIT"),
            pattern(co, parts, "ABORT"),
        )

    def decision_alphabet(self) -> Alphabet:
        co = Sort.values(self.co)
        parts = self.participant_sort
        return Alphabet.of(
            pattern(co, parts, "COMMIT"),
            pattern(co, parts, "ABORT"),
        )

    def participant_alphabet(self, p: ObjectId) -> Alphabet:
        co = Sort.values(self.co)
        me = Sort.values(p)
        return Alphabet.of(
            pattern(co, me, "PREPARE", DATA),
            pattern(me, co, "YES"),
            pattern(me, co, "NO"),
            pattern(co, me, "COMMIT"),
            pattern(co, me, "ABORT"),
        )

    # -- specifications ----------------------------------------------------

    def coordinator_spec(self) -> Specification:
        """``DynamicCoordinator``: per-round prefix enlistment, full protocol.

        Per round: a client begins; the coordinator enlists the prefix
        ``p1..pk`` for some ``k ∈ {1,2,3}`` (prepares issued in order);
        all ``k`` votes arrive in enlistment order; unanimous YES commits
        the whole prefix, any NO aborts it (decisions in order); the
        initiating client is notified.
        """
        rounds = []
        for k in range(1, len(_PARTS) + 1):
            enlisted = _PARTS[:k]
            preps = " ".join(f"<co,{p},PREPARE(_)>" for p in enlisted)
            outcomes = []
            for votes in product(("YES", "NO"), repeat=k):
                vote_str = " ".join(
                    f"<{p},co,{v}>" for p, v in zip(enlisted, votes)
                )
                kind = "COMMIT" if all(v == "YES" for v in votes) else "ABORT"
                decisions = " ".join(f"<co,{p},{kind}>" for p in enlisted)
                outcomes.append(f"{vote_str} {decisions}")
            rounds.append(f"{preps} [{' | '.join(outcomes)}]")
        per_client = " | ".join(
            f"<{cl},co,BEGIN> [{' | '.join(rounds)}] <co,{cl},DONE>"
            for cl in _CLIENTS
        )
        regex = parse_regex(
            f"[{per_client}]*", symbols=self.symbols(), methods=self.methods
        )
        return interface_spec(
            "DynamicCoordinator",
            self.co,
            self.coordinator_alphabet(),
            PrsMachine(regex),
        )

    def _decision_view(self, name: str, sizes: tuple[int, ...]) -> Specification:
        blocks = []
        for k in sizes:
            for kind in ("COMMIT", "ABORT"):
                blocks.append(
                    " ".join(f"<co,{p},{kind}>" for p in _PARTS[:k])
                )
        regex = parse_regex(
            f"[{' | '.join(blocks)}]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        alphabet = self.decision_alphabet().union(
            Alphabet.of(
                pattern(
                    Sort.values(self.co), self.participant_sort, "PREPARE", DATA
                )
            )
        )
        machine = FilterMachine(self.decision_alphabet(), PrsMachine(regex))
        return interface_spec(name, self.co, alphabet, machine)

    def decision_view(self) -> Specification:
        """``PrefixAtomicDecision``: the partial view of prefix atomicity.

        Constrains the *decision projection* only: decisions arrive in
        uniform blocks covering some enlistment prefix ``p1..pk`` — one
        round's block never interleaves with another's, and a block never
        mixes COMMIT with ABORT.  PREPARE is in the alphabet but
        unconstrained (keeping it infinite, as Definition 1 requires).
        """
        return self._decision_view(
            "PrefixAtomicDecision", tuple(range(1, len(_PARTS) + 1))
        )

    def full_decision_view(self) -> Specification:
        """``FullSetDecision``: the static-membership non-example.

        Expects every decision block to cover all three participants;
        any round that enlists a shorter prefix refutes the refinement.
        """
        return self._decision_view("FullSetDecision", (len(_PARTS),))

    def participant_view(self, p: ObjectId, name: str | None = None) -> Specification:
        """``DynamicVote``: a participant's own view — identical in shape
        to the static study's, because enlistment is invisible to the
        participant (it either takes part in a round or hears nothing)."""
        symbols = dict(self.symbols())
        symbols["p"] = p
        regex = parse_regex(
            "[<co,p,PREPARE(_)> [<p,co,YES> | <p,co,NO>] "
            "[<co,p,COMMIT> | <co,p,ABORT>]]*",
            symbols=symbols,
            methods=self.methods,
        )
        return interface_spec(
            name or f"DynamicVote({p})",
            p,
            self.participant_alphabet(p),
            PrsMachine(regex),
        )

    def lossy_participant(self, p: ObjectId) -> Specification:
        """``LossyParticipant``: the unconstrained abstraction of a
        participant; :meth:`participant_view` refines it, and Theorem 7
        lifts that refinement through composition with the coordinator."""
        from repro.core.tracesets import FullTraceSet

        alphabet = self.participant_alphabet(p)
        return Specification(
            f"LossyParticipant({p})",
            frozenset((p,)),
            alphabet,
            FullTraceSet(alphabet),
        )


#: Shared instance for tests, scenarios, and benchmarks.
DYNAMIC_TWO_PHASE = DynamicTwoPhaseCast()
