"""Runtime behaviours for the two-phase-commit case study.

Implementations of the 2PC roles for the simulator; the specifications of
:mod:`repro.casestudies.twophase` run as online monitors over their
executions.  A :class:`ByzantineParticipant` (votes twice / volunteers
votes without being prepared) exercises the monitors' fault detection.
"""

from __future__ import annotations

import random
import zlib
from typing import Hashable

from repro.core.events import Event
from repro.core.values import DataVal, ObjectId
from repro.runtime.behaviors import Behavior, Call

__all__ = [
    "CoordinatorBehavior",
    "ParticipantBehavior",
    "TxClientBehavior",
    "ByzantineParticipant",
]


class CoordinatorBehavior(Behavior):
    """The serial 2PC coordinator.

    One outgoing call in flight at a time (so the global delivery order
    matches the protocol order); one transaction at a time.  State is
    ``(mode, client, votes, queue, outstanding, pending, round_number)``
    where ``queue`` holds the calls still to issue for the current round
    and ``pending`` a client whose BEGIN arrived mid-round (served as
    soon as the current round's deliveries finish — dropping it would
    stall the whole system, since the client waits for DONE).
    """

    def __init__(self, me: ObjectId, participants: tuple[ObjectId, ...]) -> None:
        self.me = me
        self.participants = tuple(participants)

    def init_state(self) -> Hashable:
        # (mode, client, votes, queue, outstanding, pending, round_number)
        return ("idle", None, (), (), None, None, 0)

    # -- helpers -----------------------------------------------------------

    def _decide(self, votes) -> tuple[Call, ...]:
        verdict = "COMMIT" if all(v == "YES" for _, v in votes) else "ABORT"
        return tuple(Call(p, verdict) for p in self.participants)

    def _start_round(self, client, rnd):
        txn = DataVal("Data", f"t{rnd}")
        queue = tuple(Call(p, "PREPARE", (txn,)) for p in self.participants)
        return ("preparing", client, (), queue)

    # -- Behavior interface --------------------------------------------------

    def on_event(self, state, event: Event, me: ObjectId):
        mode, client, votes, queue, outstanding, pending, rnd = state
        # acknowledge delivery of our own call
        if (
            outstanding is not None
            and event.caller == me
            and event.callee == outstanding.callee
            and event.method == outstanding.method
        ):
            outstanding = None
        if event.callee == me and event.method == "BEGIN":
            if mode == "idle":
                rnd += 1
                mode, client, votes, queue = self._start_round(
                    event.caller, rnd
                )
            else:
                pending = event.caller
        elif (
            event.callee == me
            and event.method in ("YES", "NO")
            and mode in ("preparing", "voting")
        ):
            votes = votes + ((event.caller, event.method),)
            if len(votes) == len(self.participants):
                mode = "deciding"
                queue = queue + self._decide(votes) + (Call(client, "DONE"),)
        return (mode, client, votes, queue, outstanding, pending, rnd), ()

    def on_tick(self, state, rng, me):
        mode, client, votes, queue, outstanding, pending, rnd = state
        if outstanding is not None or not queue:
            # a finished round returns to idle once everything is delivered
            # (or straight into the next round if a BEGIN arrived mid-round)
            if mode == "deciding" and outstanding is None and not queue:
                if pending is not None:
                    rnd += 1
                    mode, client, votes, queue = self._start_round(
                        pending, rnd
                    )
                    return (mode, client, votes, queue, None, None, rnd), ()
                return ("idle", None, (), (), None, None, rnd), ()
            return state, ()
        call, rest = queue[0], queue[1:]
        if mode == "preparing" and not rest:
            mode = "voting"
        return (mode, client, votes, rest, call, pending, rnd), (call,)


class ParticipantBehavior(Behavior):
    """A well-behaved participant: votes when (and only when) prepared."""

    def __init__(self, me: ObjectId, coordinator: ObjectId,
                 vote_yes_probability: float = 1.0) -> None:
        self.me = me
        self.coordinator = coordinator
        self.p_yes = vote_yes_probability
        # str hash is salted per process (PYTHONHASHSEED); CRC-32 keeps the
        # per-participant vote stream reproducible across runs.
        self._rng = random.Random(zlib.crc32(me.name.encode()) & 0xFFFF)

    def on_event(self, state, event: Event, me: ObjectId):
        if event.callee == me and event.method == "PREPARE":
            vote = "YES" if self._rng.random() < self.p_yes else "NO"
            return state, (Call(self.coordinator, vote),)
        return state, ()


class TxClientBehavior(Behavior):
    """Begins a transaction, waits for DONE, repeats."""

    def __init__(self, coordinator: ObjectId) -> None:
        self.coordinator = coordinator

    def init_state(self) -> Hashable:
        return "ready"

    def on_event(self, state, event: Event, me: ObjectId):
        if event.callee == me and event.method == "DONE":
            return "ready", ()
        if event.caller == me and event.method == "BEGIN":
            return "waiting", ()
        return state, ()

    def on_tick(self, state, rng, me):
        if state == "ready":
            return "begun", (Call(self.coordinator, "BEGIN"),)
        return state, ()


class ByzantineParticipant(Behavior):
    """A faulty participant: volunteers votes it was never asked for."""

    def __init__(self, coordinator: ObjectId) -> None:
        self.coordinator = coordinator

    def on_tick(self, state, rng, me):
        return state, (Call(self.coordinator, "YES"),)
