"""Case study: a leader-election handshake as a partial object specification.

Candidates ``c1``/``c2``/``c3`` campaign at a ballot box ``bx`` (an
arbiter object — all traffic is star-shaped through it, so the spec's
alphabet satisfies Definition 1's no-internal-events condition).  The
first campaigner of a term is elected; later campaigners are defeated
until the leader concedes, which opens the next term.  ``CAMPAIGN``
carries a ballot payload, keeping every alphabet infinite.

The election safety facts become refinement/composition results:

* **mutual exclusion as refinement** — the full handshake
  (:meth:`election_spec`) refines the partial *grant view*
  (:meth:`single_leader_view`): at most one leader at a time, and only
  the current leader concedes (``LeaderElection ⊑ SingleLeader``);
* **no monopoly (a non-example)** — the election does *not* refine
  :meth:`c1_monopoly`, the view in which only ``c1`` is ever elected;
  the checker refutes it with a witness trace, the paper's
  deliberate-non-example pattern;
* **candidate conformance** — the election's projection onto each
  candidate's alphabet satisfies that candidate's own view
  (:meth:`candidate_view`): campaign, then either lead-and-concede or
  lose — repeatedly;
* **Property 5** — each candidate view is idempotent under
  self-composition (``Γ‖Γ = Γ``).

Methods: ``CAMPAIGN(b)`` (candidate→bx), ``ELECTED``/``DEFEATED``
(bx→candidate), ``CONCEDE`` (candidate→bx).
"""

from __future__ import annotations

from repro.core.alphabet import Alphabet
from repro.core.patterns import pattern
from repro.core.sorts import DATA, Sort
from repro.core.specification import Specification, interface_spec
from repro.core.values import ObjectId, obj
from repro.machines.projection import FilterMachine
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex

__all__ = ["ElectionCast", "ELECTION"]

_CANDIDATES = ("c1", "c2", "c3")


class ElectionCast:
    """Objects, sorts, and specifications of the election cell."""

    def __init__(self) -> None:
        self.bx: ObjectId = obj("bx")
        self.c1: ObjectId = obj("c1")
        self.c2: ObjectId = obj("c2")
        self.c3: ObjectId = obj("c3")

    # -- sorts -------------------------------------------------------------

    @property
    def candidates(self) -> tuple[ObjectId, ObjectId, ObjectId]:
        return (self.c1, self.c2, self.c3)

    @property
    def candidate_sort(self) -> Sort:
        return Sort.values(*self.candidates)

    def symbols(self) -> dict:
        return {
            "bx": self.bx,
            "c1": self.c1,
            "c2": self.c2,
            "c3": self.c3,
            "Candidates": self.candidate_sort,
        }

    @property
    def methods(self) -> dict[str, tuple[Sort, ...]]:
        return {
            "CAMPAIGN": (DATA,),
            "ELECTED": (),
            "DEFEATED": (),
            "CONCEDE": (),
        }

    # -- alphabets ---------------------------------------------------------

    def election_alphabet(self) -> Alphabet:
        bx = Sort.values(self.bx)
        cands = self.candidate_sort
        return Alphabet.of(
            pattern(cands, bx, "CAMPAIGN", DATA),
            pattern(bx, cands, "ELECTED"),
            pattern(bx, cands, "DEFEATED"),
            pattern(cands, bx, "CONCEDE"),
        )

    def grant_alphabet(self) -> Alphabet:
        bx = Sort.values(self.bx)
        cands = self.candidate_sort
        return Alphabet.of(
            pattern(bx, cands, "ELECTED"),
            pattern(cands, bx, "CONCEDE"),
        )

    def candidate_alphabet(self, c: ObjectId) -> Alphabet:
        bx = Sort.values(self.bx)
        me = Sort.values(c)
        return Alphabet.of(
            pattern(me, bx, "CAMPAIGN", DATA),
            pattern(bx, me, "ELECTED"),
            pattern(bx, me, "DEFEATED"),
            pattern(me, bx, "CONCEDE"),
        )

    # -- specifications ----------------------------------------------------

    def election_spec(self) -> Specification:
        """``LeaderElection``: the full handshake, one term at a time.

        Per term: some candidate campaigns and is elected; while it
        leads, any *other* candidate may campaign and is defeated; the
        leader concedes, closing the term.
        """
        terms = []
        for i in _CANDIDATES:
            losers = " | ".join(
                f"<{j},bx,CAMPAIGN(_)> <bx,{j},DEFEATED>"
                for j in _CANDIDATES
                if j != i
            )
            terms.append(
                f"<{i},bx,CAMPAIGN(_)> <bx,{i},ELECTED> "
                f"[{losers}]* <{i},bx,CONCEDE>"
            )
        regex = parse_regex(
            f"[{' | '.join(terms)}]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return interface_spec(
            "LeaderElection", self.bx, self.election_alphabet(), PrsMachine(regex)
        )

    def single_leader_view(self) -> Specification:
        """``SingleLeader``: the partial view stating mutual exclusion.

        Constrains the *grant projection* only: ELECTED/CONCEDE strictly
        alternate, and the conceder is the current leader.  CAMPAIGN is
        in the alphabet but unconstrained (it keeps the alphabet
        infinite, as Definition 1 requires).
        """
        grants = " | ".join(
            f"<bx,{i},ELECTED> <{i},bx,CONCEDE>" for i in _CANDIDATES
        )
        regex = parse_regex(
            f"[{grants}]*", symbols=self.symbols(), methods=self.methods
        )
        alphabet = self.grant_alphabet().union(
            Alphabet.of(
                pattern(self.candidate_sort, Sort.values(self.bx), "CAMPAIGN", DATA)
            )
        )
        machine = FilterMachine(self.grant_alphabet(), PrsMachine(regex))
        return interface_spec("SingleLeader", self.bx, alphabet, machine)

    def c1_monopoly(self) -> Specification:
        """``C1Monopoly``: the deliberate non-example — only ``c1`` leads.

        The election does *not* refine this view: any term led by ``c2``
        or ``c3`` is a witness.
        """
        regex = parse_regex(
            "[<bx,c1,ELECTED> <c1,bx,CONCEDE>]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        alphabet = self.grant_alphabet().union(
            Alphabet.of(
                pattern(self.candidate_sort, Sort.values(self.bx), "CAMPAIGN", DATA)
            )
        )
        machine = FilterMachine(self.grant_alphabet(), PrsMachine(regex))
        return interface_spec("C1Monopoly", self.bx, alphabet, machine)

    def candidate_view(self, c: ObjectId, name: str | None = None) -> Specification:
        """``Candidate``: one candidate's own view of its campaigns."""
        symbols = dict(self.symbols())
        symbols["c"] = c
        regex = parse_regex(
            "[<c,bx,CAMPAIGN(_)> "
            "[<bx,c,ELECTED> <c,bx,CONCEDE> | <bx,c,DEFEATED>]]*",
            symbols=symbols,
            methods=self.methods,
        )
        return interface_spec(
            name or f"Candidate({c})",
            c,
            self.candidate_alphabet(c),
            PrsMachine(regex),
        )


#: Shared instance for tests, scenarios, and benchmarks.
ELECTION = ElectionCast()
