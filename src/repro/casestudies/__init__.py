"""Case studies: the library applied beyond the paper's worked examples."""

from repro.casestudies.election import ELECTION, ElectionCast
from repro.casestudies.pubsub import PUBSUB, PubSubCast
from repro.casestudies.twophase import TWO_PHASE, TwoPhaseCast
from repro.casestudies.twophase_dynamic import (
    DYNAMIC_TWO_PHASE,
    DynamicTwoPhaseCast,
)
from repro.casestudies.twophase_runtime import (
    ByzantineParticipant,
    CoordinatorBehavior,
    ParticipantBehavior,
    TxClientBehavior,
)

__all__ = [
    "DYNAMIC_TWO_PHASE",
    "DynamicTwoPhaseCast",
    "ELECTION",
    "ElectionCast",
    "PUBSUB",
    "PubSubCast",
    "TWO_PHASE",
    "TwoPhaseCast",
    "ByzantineParticipant",
    "CoordinatorBehavior",
    "ParticipantBehavior",
    "TxClientBehavior",
]
