"""Case studies: the library applied beyond the paper's worked examples."""

from repro.casestudies.twophase import TWO_PHASE, TwoPhaseCast
from repro.casestudies.twophase_runtime import (
    ByzantineParticipant,
    CoordinatorBehavior,
    ParticipantBehavior,
    TxClientBehavior,
)

__all__ = [
    "TWO_PHASE",
    "TwoPhaseCast",
    "ByzantineParticipant",
    "CoordinatorBehavior",
    "ParticipantBehavior",
    "TxClientBehavior",
]
