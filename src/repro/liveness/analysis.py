"""Liveness analysis: the extension sketched in the paper's Section 9.

The paper restricts itself to safety ("for simplicity, liveness is not
considered") but points out, via Examples 4–5, that its projection-based
composition both *avoids* some deadlocks and lets refinement *introduce*
new ones, and names liveness reasoning as the interesting extension.
This module provides that extension over the finite-universe layer:

* **quiescence** — a trace of ``T`` is *quiescent* (maximal) if no event
  extends it within ``T``;
* **deadlock freedom** — ``T`` is deadlock-free iff it has no quiescent
  trace, i.e. every admitted behaviour can always continue.  Example 4's
  ``Client‖WriteAcc`` is deadlock-free (the OK stream never ends);
  Example 5's ``Client2‖WriteAcc`` deadlocks at ``ε``;
* **responsiveness** — given a *goal* predicate on traces (e.g. "no
  unanswered request", a counting machine), ``T`` is responsive iff from
  every admitted trace some admitted extension satisfies the goal (the
  finite-trace analogue of ``AG EF goal``).

All three are decided exactly over a finite universe by graph analyses on
the compiled DFA; reports carry shortest witness traces.

The headline negative result — **refinement does not preserve liveness**
(``Client2 ⊑ Client`` yet the composition deadlocks) — is checked in the
test suite, completing the paper's own observation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.dfa import DFA
from repro.checker.compile import spec_dfa
from repro.checker.universe import FiniteUniverse
from repro.core.specification import Specification
from repro.core.traces import Trace
from repro.machines.base import TraceMachine

__all__ = [
    "QuiescenceReport",
    "ResponsivenessReport",
    "quiescence_analysis",
    "is_deadlock_free",
    "responsiveness_analysis",
]


def _accepting_successors(dfa: DFA, q: int) -> list[int]:
    k = dfa.n_letters
    return [
        t for t in dfa.dense[q * k : (q + 1) * k] if t in dfa.accepting
    ]


def _shortest_word_to(dfa: DFA, targets: frozenset[int]) -> tuple | None:
    """Shortest word from the start to any target through accepting states."""
    if dfa.start not in dfa.accepting:
        return None
    if dfa.start in targets:
        return ()
    k = dfa.n_letters
    dense = dfa.dense
    accepting = dfa.accepting
    parent: dict[int, tuple] = {dfa.start: None}  # type: ignore[dict-item]
    queue = deque([dfa.start])
    while queue:
        q = queue.popleft()
        base = q * k
        for c in range(k):
            t = dense[base + c]
            if t not in accepting or t in parent:
                continue
            parent[t] = (q, c)
            if t in targets:
                ids = []
                node = t
                while parent[node] is not None:
                    prev, cid = parent[node]
                    ids.append(cid)
                    node = prev
                ids.reverse()
                return dfa.table.decode(ids)
            queue.append(t)
    return None


@dataclass(frozen=True, slots=True)
class QuiescenceReport:
    """Result of the quiescence/deadlock analysis.

    ``quiescent_witness`` is a shortest maximal trace (``None`` when the
    trace set is deadlock-free); ``empty_language`` flags the degenerate
    case where even ``ε`` is not admitted.
    """

    deadlock_free: bool
    quiescent_witness: Trace | None
    empty_language: bool
    states: int

    def explain(self) -> str:
        if self.empty_language:
            return "trace set is empty (not even ε admitted)"
        if self.deadlock_free:
            return "deadlock-free: every admitted trace has an extension"
        return f"quiescent trace found: {self.quiescent_witness}"


def quiescence_analysis(
    spec: Specification,
    universe: FiniteUniverse | None = None,
    state_limit: int = 100_000,
) -> QuiescenceReport:
    """Find maximal (quiescent) traces of ``T(Γ)`` over a universe."""
    if universe is None:
        universe = FiniteUniverse.for_specs(spec)
    dfa = spec_dfa(spec, universe, state_limit=state_limit).trim()
    if dfa.start not in dfa.accepting:
        return QuiescenceReport(False, None, True, dfa.n_states)
    quiescent = frozenset(
        q for q in dfa.accepting if not _accepting_successors(dfa, q)
    )
    if not quiescent:
        return QuiescenceReport(True, None, False, dfa.n_states)
    word = _shortest_word_to(dfa, quiescent)
    witness = Trace(tuple(word)) if word is not None else None
    return QuiescenceReport(False, witness, False, dfa.n_states)


def is_deadlock_free(
    spec: Specification,
    universe: FiniteUniverse | None = None,
    state_limit: int = 100_000,
) -> bool:
    """Convenience wrapper for :func:`quiescence_analysis`."""
    return quiescence_analysis(spec, universe, state_limit).deadlock_free


@dataclass(frozen=True, slots=True)
class ResponsivenessReport:
    """Result of the goal-reachability analysis (finite-trace AG EF goal).

    ``stuck_witness`` is a shortest admitted trace from which no admitted
    extension reaches the goal.
    """

    responsive: bool
    stuck_witness: Trace | None
    states: int

    def explain(self) -> str:
        if self.responsive:
            return "responsive: the goal stays reachable from every trace"
        return f"goal unreachable after: {self.stuck_witness}"


def responsiveness_analysis(
    spec: Specification,
    goal: TraceMachine,
    universe: FiniteUniverse | None = None,
    state_limit: int = 100_000,
) -> ResponsivenessReport:
    """Check that ``goal`` remains reachable along every admitted trace.

    ``goal.ok`` marks the good configurations (e.g. a balanced
    request/acknowledge counter); the spec's trace set is intersected with
    the goal machine by a product construction, then good states are
    back-propagated over accepting edges.
    """
    if universe is None:
        universe = FiniteUniverse.for_specs(spec)
    spec_d = spec_dfa(spec, universe, state_limit=state_limit)
    # The goal machine is tracked directly (NOT via machine_to_dfa, whose
    # prefix-closed sink would make a temporarily-unsatisfied goal
    # permanently unreachable): product states pair a spec-DFA state with
    # a raw goal-machine state.
    index: dict[tuple[int, object], int] = {}
    order: list[tuple[int, object]] = []
    start = (spec_d.start, goal.initial())
    if spec_d.start not in spec_d.accepting:
        return ResponsivenessReport(True, None, 0)  # vacuous: empty T
    index[start] = 0
    order.append(start)
    edges: list[list[int]] = []
    k = spec_d.n_letters
    dense = spec_d.dense
    i = 0
    while i < len(order):
        qs, qg = order[i]
        row = []
        base = qs * k
        for c, letter in enumerate(spec_d.letters):
            ts = dense[base + c]
            if ts not in spec_d.accepting:
                continue
            tg = goal.step(qg, letter)
            key = (ts, tg)
            j = index.get(key)
            if j is None:
                j = len(order)
                index[key] = j
                order.append(key)
                if len(order) > state_limit:
                    raise RuntimeError("responsiveness product too large")
            row.append(j)
        edges.append(row)
        i += 1
    good = {
        i for i, (qs, qg) in enumerate(order) if goal.ok(qg)
    }
    # Backward reachability to `good` over the product graph.
    can_reach = set(good)
    changed = True
    while changed:
        changed = False
        for i, row in enumerate(edges):
            if i in can_reach:
                continue
            if any(j in can_reach for j in row):
                can_reach.add(i)
                changed = True
    stuck = frozenset(i for i in range(len(order)) if i not in can_reach)
    if not stuck:
        return ResponsivenessReport(True, None, len(order))
    # Shortest admitted trace into a stuck product state.
    parent: dict[int, tuple] = {0: None}  # type: ignore[dict-item]
    queue = deque([0])
    witness = None
    if 0 in stuck:
        witness = Trace.empty()
    while queue and witness is None:
        i = queue.popleft()
        qs, qg = order[i]
        base = qs * k
        for c, letter in enumerate(spec_d.letters):
            ts = dense[base + c]
            if ts not in spec_d.accepting:
                continue
            tg = goal.step(qg, letter)
            j = index[(ts, tg)]
            if j in parent:
                continue
            parent[j] = (i, letter)
            if j in stuck:
                word = []
                node = j
                while parent[node] is not None:
                    prev, a = parent[node]
                    word.append(a)
                    node = prev
                witness = Trace(tuple(reversed(word)))
                break
            queue.append(j)
    return ResponsivenessReport(False, witness, len(order))
