"""Liveness extension (the paper's Section 9 future work): quiescence,
deadlock freedom, and goal responsiveness over finite universes."""

from repro.liveness.analysis import (
    QuiescenceReport,
    ResponsivenessReport,
    is_deadlock_free,
    quiescence_analysis,
    responsiveness_analysis,
)

__all__ = [
    "QuiescenceReport",
    "ResponsivenessReport",
    "is_deadlock_free",
    "quiescence_analysis",
    "responsiveness_analysis",
]
