"""Finite communication traces and the paper's filtering operators.

The life of an object up to a point in time is its *trace*: a finite
sequence of communication events.  Section 2 introduces the filtering
notation used throughout the paper:

* ``h/S``  — keep only the events of ``h`` that are in the set ``S``
  (:meth:`Trace.filter`),
* ``h\\S`` — delete the events of ``h`` that are in ``S``
  (:meth:`Trace.remove`),
* ``h/o``  — keep the events *involving* the object ``o``
  (:meth:`Trace.proj_obj`),
* ``h/M``  — keep the events whose method is ``M``
  (:meth:`Trace.proj_method`), with ``#(h/M)`` the corresponding count.

The proofs of Theorems 7 and 16 rely on algebraic identities between these
operators (e.g. ``h/S₁\\S₂ = h\\S₂/(S₁−S₂)``); the property-based test
suite checks those identities on random traces.

An *event set* argument is anything with a ``contains(event)`` method
(alphabets, internal-event sets) or a plain Python set/frozenset of events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

from repro.core.events import Event
from repro.core.values import ObjectId, Value

__all__ = ["Trace", "EventSet", "as_predicate"]


@runtime_checkable
class EventSet(Protocol):
    """Anything usable as a set of events for filtering."""

    def contains(self, e: Event) -> bool: ...


def as_predicate(s: "EventSet | set | frozenset | Callable[[Event], bool]") -> Callable[[Event], bool]:
    """Coerce an event-set-like argument to a membership predicate."""
    if callable(s) and not isinstance(s, (set, frozenset)):
        contains = getattr(s, "contains", None)
        if contains is not None:
            return contains
        return s  # a bare predicate
    if isinstance(s, (set, frozenset)):
        return s.__contains__
    contains = getattr(s, "contains", None)
    if contains is None:
        raise TypeError(f"not an event set: {s!r}")
    return contains


@dataclass(frozen=True, slots=True)
class Trace:
    """An immutable finite sequence of communication events."""

    events: tuple[Event, ...] = ()

    @staticmethod
    def of(*events: Event) -> "Trace":
        return Trace(tuple(events))

    @staticmethod
    def empty() -> "Trace":
        return Trace(())

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return Trace(self.events[i])
        return self.events[i]

    def __bool__(self) -> bool:
        return bool(self.events)

    def append(self, e: Event) -> "Trace":
        return Trace(self.events + (e,))

    def concat(self, other: "Trace") -> "Trace":
        return Trace(self.events + other.events)

    __add__ = concat

    # ------------------------------------------------------------------
    # the paper's filtering operators
    # ------------------------------------------------------------------

    def filter(self, s) -> "Trace":
        """``h/S``: the subtrace of events belonging to ``s``."""
        p = as_predicate(s)
        return Trace(tuple(e for e in self.events if p(e)))

    def remove(self, s) -> "Trace":
        """``h\\S``: the subtrace of events *not* belonging to ``s``."""
        p = as_predicate(s)
        return Trace(tuple(e for e in self.events if not p(e)))

    def __truediv__(self, s) -> "Trace":
        """Operator form of ``h/S`` (also accepts an object or method name)."""
        if isinstance(s, ObjectId):
            return self.proj_obj(s)
        if isinstance(s, str):
            return self.proj_method(s)
        return self.filter(s)

    def proj_obj(self, o: ObjectId) -> "Trace":
        """``h/o``: events involving ``o`` as caller or callee."""
        return Trace(tuple(e for e in self.events if e.involves(o)))

    def proj_method(self, method: str) -> "Trace":
        """``h/M``: events whose method name is ``method``."""
        return Trace(tuple(e for e in self.events if e.method == method))

    def count(self, method: str) -> int:
        """``#(h/M)``: the number of calls to ``method``."""
        return sum(1 for e in self.events if e.method == method)

    # ------------------------------------------------------------------
    # prefixes
    # ------------------------------------------------------------------

    def prefixes(self) -> Iterator["Trace"]:
        """All prefixes of the trace, from empty to the trace itself."""
        for i in range(len(self.events) + 1):
            yield Trace(self.events[:i])

    def proper_prefixes(self) -> Iterator["Trace"]:
        for i in range(len(self.events)):
            yield Trace(self.events[:i])

    def is_prefix_of(self, other: "Trace") -> bool:
        n = len(self.events)
        return n <= len(other.events) and other.events[:n] == self.events

    # ------------------------------------------------------------------
    # contents
    # ------------------------------------------------------------------

    def objects(self) -> frozenset[ObjectId]:
        """All object identities occurring as endpoints of events."""
        out: set[ObjectId] = set()
        for e in self.events:
            out.add(e.caller)
            out.add(e.callee)
        return frozenset(out)

    def values(self) -> frozenset[Value]:
        """All values occurring in the trace (endpoints and parameters)."""
        out: set[Value] = set()
        for e in self.events:
            out |= e.values()
        return frozenset(out)

    def methods(self) -> frozenset[str]:
        return frozenset(e.method for e in self.events)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        if not self.events:
            return "ε"
        return " ".join(str(e) for e in self.events)

    def __repr__(self) -> str:
        return f"Trace({self})"
