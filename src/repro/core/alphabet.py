"""Alphabets: finite unions of symbolic event patterns.

A specification's alphabet ``α`` (Definition 1) is an infinite set of
communication events, written in the paper as a union of comprehensions.
An :class:`Alphabet` is a finite union of :class:`~repro.core.patterns.EventPattern`
values, and supports — exactly and symbolically — all the alphabet-level
operations of the paper:

* ``α(Γ) ∪ α(Δ)`` (composition, Definitions 4/11),
* ``α − I(O)`` (hiding),
* ``α(Γ) ⊆ α(Γ')`` (refinement condition 2, Definition 2),
* ``α(Γ) ∩ I(O(Δ)) = ∅`` (composability, Definition 10),
* ``α₀ ∩ α(Δ) = ∅`` (properness, Definition 14),
* the infinity requirement of Definition 1,
* the derived communication environment of Section 2.

All yes/no queries that can fail also produce a concrete witness event,
which the checker surfaces as a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.errors import AlphabetError
from repro.core.events import Event
from repro.core.internal import InternalEvents
from repro.core.patterns import EventPattern
from repro.core.sorts import Sort
from repro.core.values import ObjectId, Value

__all__ = ["Alphabet"]


@dataclass(frozen=True, slots=True)
class Alphabet:
    """A finite union of event patterns (empty patterns are dropped)."""

    patterns: tuple[EventPattern, ...]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def of(*patterns: EventPattern) -> "Alphabet":
        # Order-preserving dedup keyed by pattern: hiding and renaming
        # funnel every derived alphabet through here, so the O(n²)
        # membership scan over a list was quadratic in pattern count.
        seen: dict[EventPattern, None] = {}
        for p in patterns:
            if not p.is_empty():
                seen.setdefault(p, None)
        return Alphabet(tuple(seen))

    @staticmethod
    def empty() -> "Alphabet":
        return Alphabet(())

    def union(self, other: "Alphabet") -> "Alphabet":
        return Alphabet.of(*self.patterns, *other.patterns)

    # ------------------------------------------------------------------
    # membership and size
    # ------------------------------------------------------------------

    def contains(self, e: Event) -> bool:
        return any(p.contains(e) for p in self.patterns)

    __contains__ = contains

    def is_empty(self) -> bool:
        return not self.patterns

    def is_infinite(self) -> bool:
        return any(p.is_infinite() for p in self.patterns)

    def methods(self) -> frozenset[str]:
        return frozenset(p.method for p in self.patterns)

    def mentioned_values(self) -> frozenset[Value]:
        out: set[Value] = set()
        for p in self.patterns:
            out |= p.mentioned_values()
        return frozenset(out)

    def mentioned_objects(self) -> frozenset[ObjectId]:
        return frozenset(
            v for v in self.mentioned_values() if isinstance(v, ObjectId)
        )

    def base_names(self) -> frozenset[str]:
        out: set[str] = {"Obj"} if self.patterns else set()
        for p in self.patterns:
            out |= p.base_names()
        return frozenset(out)

    # ------------------------------------------------------------------
    # hiding
    # ------------------------------------------------------------------

    def hide(self, objects: Iterable[ObjectId]) -> "Alphabet":
        """``α − I(O)``: remove every event with both endpoints in ``objects``."""
        objs = tuple(sorted(set(objects)))
        out: list[EventPattern] = []
        for p in self.patterns:
            out.extend(p.subtract_endpoint_square(objs))
        return Alphabet.of(*out)

    def subtract_internal(self, internal: InternalEvents) -> "Alphabet":
        """``α − I`` for an arbitrary internal-event set (pairwise)."""
        pieces: list[EventPattern] = list(self.patterns)
        for a, b in internal.ordered_pairs():
            nxt: list[EventPattern] = []
            a_sort = Sort.values(a)
            b_sort = Sort.values(b)
            for p in pieces:
                q1 = p.restrict_endpoints(caller=p.caller.difference(a_sort))
                if q1 is not None:
                    nxt.append(q1)
                q2 = EventPattern(
                    p.caller.intersection(a_sort),
                    p.callee.difference(b_sort),
                    p.method,
                    p.args,
                )
                if not q2.is_empty():
                    nxt.append(q2)
            pieces = nxt
        return Alphabet.of(*pieces)

    def rename(self, mapping: dict) -> "Alphabet":
        """Apply a value renaming to every pattern."""
        return Alphabet.of(*(p.rename(mapping) for p in self.patterns))

    # ------------------------------------------------------------------
    # comparisons (exact, with witnesses)
    # ------------------------------------------------------------------

    def subset_witness(self, other: "Alphabet") -> Event | None:
        """``None`` iff ``self ⊆ other``; otherwise an event in the difference."""
        for p in self.patterns:
            w = p.covered_by(other.patterns)
            if w is not None:
                return w
        return None

    def is_subset(self, other: "Alphabet") -> bool:
        return self.subset_witness(other) is None

    def equivalent(self, other: "Alphabet") -> bool:
        """Extensional equality of the denoted event sets."""
        return self.is_subset(other) and other.is_subset(self)

    def intersection_witness(self, other: "Alphabet") -> Event | None:
        """A common event of the two alphabets, or ``None`` if disjoint."""
        for p in self.patterns:
            for q in other.patterns:
                r = p.intersection(q)
                if r is not None:
                    return r.witness()
        return None

    def is_disjoint(self, other: "Alphabet") -> bool:
        return self.intersection_witness(other) is None

    def internal_witness(self, internal: InternalEvents) -> Event | None:
        """An event of ``self`` lying in ``internal``, or ``None`` if none.

        Decides ``α ∩ I = ∅`` (composability, Definition 10) exactly: the
        pair set is finite and patterns constrain methods/args
        independently of endpoints.
        """
        for p in self.patterns:
            if any(s.is_empty() for s in p.args):
                continue
            for a, b in internal.ordered_pairs():
                if p.caller.contains(a) and p.callee.contains(b):
                    args = tuple(s.witness() for s in p.args)
                    return Event(a, b, p.method, args)
        return None

    def disjoint_from_internal(self, internal: InternalEvents) -> bool:
        return self.internal_witness(internal) is None

    # ------------------------------------------------------------------
    # structure relative to an object set (Definition 1)
    # ------------------------------------------------------------------

    def object_set_violation(self, objects: Iterable[ObjectId]) -> Event | None:
        """Check Definition 1's constraint on alphabets.

        Every event must involve at least one object of ``objects`` and
        must not have *both* endpoints in ``objects``.  Returns a witness
        of a violating event, or ``None`` when well-formed.
        """
        objs = frozenset(objects)
        o_sort = Sort.values(*objs)
        for p in self.patterns:
            # Both endpoints outside the object set?
            q = EventPattern(
                p.caller.difference(o_sort),
                p.callee.difference(o_sort),
                p.method,
                p.args,
            )
            if not q.is_empty():
                return q.witness()
        w = self.internal_witness(InternalEvents.square(objs))
        return w

    def endpoint_sort(self) -> Sort:
        """The sort of all objects occurring as caller or callee."""
        out = Sort.empty()
        for p in self.patterns:
            out = out.union(p.caller).union(p.callee)
        return out

    def communication_environment(self, objects: Iterable[ObjectId]) -> Sort:
        """Section 2's derived communication environment.

        The objects outside the object set that take part in some event of
        the alphabet.
        """
        return self.endpoint_sort().difference(Sort.values(*objects))

    # ------------------------------------------------------------------
    # enumeration over finite pools
    # ------------------------------------------------------------------

    def events_over(self, pool: Sequence[Value]) -> Iterator[Event]:
        """Enumerate the concrete events with all components drawn from ``pool``.

        Deduplicated and deterministic; used by the automata layer to
        instantiate the alphabet over a finite universe.
        """
        objects = [v for v in pool if isinstance(v, ObjectId)]
        seen: set[Event] = set()
        for p in self.patterns:
            pools = [list(pool) for _ in p.args]
            for e in p.instantiate(objects, objects, pools):
                if e not in seen:
                    seen.add(e)
                    yield e

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        if not self.patterns:
            return "∅"
        return " ∪ ".join(str(p) for p in self.patterns)

    def __repr__(self) -> str:
        return f"Alphabet({self})"
