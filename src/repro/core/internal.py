"""Internal events: the paper's ``I(o₁,o₂)``, ``I(S)``, and ``I(S₁,S₂)``.

Definition 3 introduces the internal events of two objects as *all* possible
communication events between them (any method, any parameters, in either
direction); Definition 8 extends this pairwise to a finite set of objects;
and the proof of Lemma 15 uses the cross form ``I(S₁,S₂)`` of events with
one endpoint in each set.

Because object sets of specifications and components are finite
(Definition 1), every internal-event set is determined by a *finite set of
ordered endpoint pairs*; the methods and parameters are unconstrained.
This makes the hiding and composability conditions of the paper decidable
by finite pair bookkeeping, even though each pair denotes infinitely many
events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.events import Event
from repro.core.values import ObjectId

__all__ = ["InternalEvents"]


@dataclass(frozen=True, slots=True)
class InternalEvents:
    """The set of all events whose (caller, callee) pair is in ``pairs``.

    ``pairs`` never contains reflexive pairs: a self-call is not an event
    at all in the formalism.
    """

    pairs: frozenset[tuple[ObjectId, ObjectId]]

    def __post_init__(self) -> None:
        for a, b in self.pairs:
            if a == b:
                raise ValueError(f"reflexive endpoint pair {a} is not an event")

    # ------------------------------------------------------------------
    # constructors mirroring the paper
    # ------------------------------------------------------------------

    @staticmethod
    def between(o1: ObjectId, o2: ObjectId) -> "InternalEvents":
        """Definition 3: ``I(o₁,o₂)``, all events between two objects."""
        if o1 == o2:
            return InternalEvents(frozenset())
        return InternalEvents(frozenset(((o1, o2), (o2, o1))))

    @staticmethod
    def square(objects: Iterable[ObjectId]) -> "InternalEvents":
        """Definition 8: ``I(S)``, the pairwise union over a set of objects."""
        objs = sorted(set(objects))
        return InternalEvents(
            frozenset((a, b) for a, b in itertools.product(objs, objs) if a != b)
        )

    @staticmethod
    def cross(s1: Iterable[ObjectId], s2: Iterable[ObjectId]) -> "InternalEvents":
        """Lemma 15's ``I(S₁,S₂)``: events with one endpoint in each set."""
        a, b = set(s1), set(s2)
        pairs = {(x, y) for x in a for y in b if x != y}
        pairs |= {(y, x) for x in a for y in b if x != y}
        return InternalEvents(frozenset(pairs))

    @staticmethod
    def none() -> "InternalEvents":
        return InternalEvents(frozenset())

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------

    def contains(self, e: Event) -> bool:
        return (e.caller, e.callee) in self.pairs

    __contains__ = contains

    def union(self, other: "InternalEvents") -> "InternalEvents":
        return InternalEvents(self.pairs | other.pairs)

    def intersection(self, other: "InternalEvents") -> "InternalEvents":
        return InternalEvents(self.pairs & other.pairs)

    def difference(self, other: "InternalEvents") -> "InternalEvents":
        return InternalEvents(self.pairs - other.pairs)

    def is_empty(self) -> bool:
        return not self.pairs

    def is_subset(self, other: "InternalEvents") -> bool:
        return self.pairs <= other.pairs

    def endpoints(self) -> frozenset[ObjectId]:
        out: set[ObjectId] = set()
        for a, b in self.pairs:
            out.add(a)
            out.add(b)
        return frozenset(out)

    def ordered_pairs(self) -> Iterator[tuple[ObjectId, ObjectId]]:
        return iter(sorted(self.pairs))

    def __str__(self) -> str:
        if not self.pairs:
            return "I(∅)"
        inner = ", ".join(f"({a},{b})" for a, b in sorted(self.pairs))
        return f"I{{{inner}}}"

    def __repr__(self) -> str:
        return f"InternalEvents({sorted(self.pairs)!r})"
