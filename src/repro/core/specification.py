"""Specifications: Definition 1 of the paper.

A specification is a triple ``Γ = ⟨O, α, T⟩`` where

* ``O`` is a finite set of object identities,
* ``α`` is an infinite set of events, each involving at least one object
  of ``O`` but never two (events between objects of ``O`` are internal
  and never observable), and
* ``T`` is a prefix-closed subset of ``Seq[α]``.

A specification with a singleton object set is an *interface
specification*.  Several specifications of the same object may coexist
(viewpoints/aspects); the library never assumes alphabets of two
specifications of one object are related.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.alphabet import Alphabet
from repro.core.errors import SpecificationError
from repro.core.events import Event
from repro.core.internal import InternalEvents
from repro.core.sorts import Sort
from repro.core.tracesets import FullTraceSet, MachineTraceSet, TraceSet
from repro.core.traces import Trace
from repro.core.values import ObjectId
from repro.machines.base import TraceMachine

__all__ = ["Specification", "interface_spec", "component_spec"]


@dataclass(frozen=True, slots=True, eq=False)
class Specification:
    """A (partial) specification ``⟨O, α, T⟩`` with a display name.

    Identity is by object identity (``eq=False``): two structurally equal
    specifications are still distinct Python objects, while extensional
    comparisons go through refinement/equivalence checks.
    """

    name: str
    objects: frozenset[ObjectId]
    alphabet: Alphabet
    traces: TraceSet

    def __post_init__(self) -> None:
        # Structural well-formedness always holds; the infinite-alphabet
        # clause of Definition 1 is checked strictly by the spec builders
        # (compositions may hide their way down to smaller alphabets).
        self.validate(require_infinite=False)

    # ------------------------------------------------------------------
    # Definition 1 well-formedness
    # ------------------------------------------------------------------

    def validate(self, require_infinite: bool = True) -> None:
        """Check Definition 1; raises :class:`SpecificationError`.

        ``require_infinite`` enforces the paper's "α is an infinite set"
        clause — the natural state of affairs with cofinite environment
        sorts; pass ``False`` only for deliberately degenerate test
        fixtures.
        """
        if not self.name:
            raise SpecificationError("specification needs a non-empty name")
        if not self.objects:
            raise SpecificationError(
                f"{self.name}: object set must be non-empty"
            )
        w = self.alphabet.object_set_violation(self.objects)
        if w is not None:
            raise SpecificationError(
                f"{self.name}: alphabet violates Definition 1 — event {w} "
                f"does not have exactly one endpoint in the object set "
                f"{{{', '.join(map(str, sorted(self.objects)))}}}"
            )
        if require_infinite and not self.alphabet.is_infinite():
            raise SpecificationError(
                f"{self.name}: Definition 1 requires an infinite alphabet "
                f"(open environments); got {self.alphabet}"
            )
        if not isinstance(self.traces, TraceSet):
            raise SpecificationError(
                f"{self.name}: traces must be a TraceSet, got {self.traces!r}"
            )
        if self.traces.alphabet != self.alphabet:
            raise SpecificationError(
                f"{self.name}: trace set alphabet differs from the "
                f"specification alphabet"
            )

    # ------------------------------------------------------------------
    # derived notions
    # ------------------------------------------------------------------

    def is_interface(self) -> bool:
        """Singleton object set (Section 2)."""
        return len(self.objects) == 1

    def the_object(self) -> ObjectId:
        if not self.is_interface():
            raise SpecificationError(
                f"{self.name} is not an interface specification"
            )
        return next(iter(self.objects))

    def internal_events(self) -> InternalEvents:
        """``I(O(Γ))`` — the maximal internal-event set (Definition 8)."""
        return InternalEvents.square(self.objects)

    def communication_environment(self) -> Sort:
        """The derived communication environment (Section 2)."""
        return self.alphabet.communication_environment(self.objects)

    def admits(self, trace: Trace) -> bool:
        """Trace-set membership ``h ∈ T(Γ)``."""
        return self.traces.contains(trace)

    def admits_projection(self, trace: Trace) -> bool:
        """``h/α(Γ) ∈ T(Γ)`` for a trace over a larger alphabet."""
        return self.traces.contains(trace.filter(self.alphabet))

    def __str__(self) -> str:
        objs = ", ".join(str(o) for o in sorted(self.objects))
        return f"{self.name}⟨{{{objs}}}⟩"

    def __repr__(self) -> str:
        return f"Specification({self.name!r}, objects={sorted(self.objects)})"


def interface_spec(
    name: str,
    obj: ObjectId,
    alphabet: Alphabet,
    machine: TraceMachine | None = None,
) -> Specification:
    """Build an interface specification of a single object.

    With ``machine=None`` the trace set is the full ``Seq[α]``
    (Example 1's ``Read``).
    """
    traces: TraceSet
    if machine is None:
        traces = FullTraceSet(alphabet)
    else:
        traces = MachineTraceSet(alphabet, machine)
    spec = Specification(name, frozenset((obj,)), alphabet, traces)
    spec.validate(require_infinite=True)
    return spec


def component_spec(
    name: str,
    objects: Iterable[ObjectId],
    alphabet: Alphabet,
    machine: TraceMachine | None = None,
) -> Specification:
    """Build a (multi-object) component specification."""
    traces: TraceSet
    if machine is None:
        traces = FullTraceSet(alphabet)
    else:
        traces = MachineTraceSet(alphabet, machine)
    spec = Specification(name, frozenset(objects), alphabet, traces)
    spec.validate(require_infinite=True)
    return spec
