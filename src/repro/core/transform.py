"""Specification transformers: the development idioms of the paper as API.

The paper builds new specifications from old ones throughout:

* ``WriteAcc`` "modifies Write, so that only the object c makes calls"
  — :func:`restrict_communication`;
* ``RW2`` is RW with the predicate strengthened by ``h/c = h``
  — :func:`strengthen` / :func:`restrict_communication`;
* ``Read2`` extends Read's alphabet and adds constraints
  — :func:`expand_alphabet` + :func:`strengthen`;
* object identities are first-class, so reusing a protocol for different
  objects is a *renaming* — :func:`rename_objects`.

Each transformer comes with a refinement guarantee, verified by the
tests:

* ``strengthen(Γ, P) ⊑ Γ``   (condition 3 by construction),
* ``expand_alphabet(Γ, β) ⊑ Γ``   (projected behaviour unchanged, since
  the new machine evaluates the old predicate on ``h/α(Γ)``),
* renaming is an *equivariance*: ``Γ' ⊑ Γ ⟺ σΓ' ⊑ σΓ`` for injective σ.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.alphabet import Alphabet
from repro.core.errors import SpecificationError
from repro.core.events import Event
from repro.core.patterns import EventPattern
from repro.core.specification import Specification
from repro.core.tracesets import ComposedTraceSet, FullTraceSet, MachineTraceSet, Part
from repro.core.values import ObjectId, Value
from repro.machines.base import TraceMachine
from repro.machines.boolean import AndMachine, TrueMachine
from repro.machines.projection import FilterMachine, OnlyMachine
from repro.machines.rename import RenameMachine

__all__ = [
    "strengthen",
    "expand_alphabet",
    "restrict_communication",
    "rename_objects",
    "InvolvesAny",
]


class InvolvesAny:
    """Event filter: events involving at least one of the given objects."""

    def __init__(self, objects: Iterable[ObjectId]) -> None:
        self.objects = frozenset(objects)

    def contains(self, e: Event) -> bool:
        return bool(self.objects & e.endpoints())

    def mentioned_values(self) -> frozenset[Value]:
        return frozenset(self.objects)

    def __repr__(self) -> str:
        return f"InvolvesAny({sorted(self.objects)})"


def _machine_of(spec: Specification) -> TraceMachine:
    ts = spec.traces
    if isinstance(ts, (FullTraceSet, MachineTraceSet)):
        return ts.machine()
    raise SpecificationError(
        f"{spec.name}: transformer requires a machine-defined trace set "
        f"(compose after transforming, not before)"
    )


def strengthen(
    spec: Specification, extra: TraceMachine, name: str | None = None
) -> Specification:
    """Add a conjunct to the trace predicate: the result refines ``spec``."""
    machine = _machine_of(spec)
    if isinstance(machine, TrueMachine):
        combined: TraceMachine = extra
    else:
        combined = AndMachine((machine, extra))
    return Specification(
        name or f"{spec.name}+",
        spec.objects,
        spec.alphabet,
        MachineTraceSet(spec.alphabet, combined),
    )


def expand_alphabet(
    spec: Specification,
    extra: Iterable[EventPattern],
    name: str | None = None,
) -> Specification:
    """Add events to the alphabet, leaving the old ones unconstrained.

    The old predicate is evaluated on the projection to the old alphabet
    (``FilterMachine``), so the result refines ``spec`` by construction —
    this is exactly the "new methods are not interpreted at the abstract
    level" style of extension the paper borrows from behavioural
    subtyping.
    """
    alphabet = spec.alphabet.union(Alphabet.of(*extra))
    machine = FilterMachine(spec.alphabet, _machine_of(spec))
    out = Specification(
        name or f"{spec.name}*",
        spec.objects,
        alphabet,
        MachineTraceSet(alphabet, machine),
    )
    return out


def restrict_communication(
    spec: Specification,
    partners: Iterable[ObjectId],
    name: str | None = None,
) -> Specification:
    """Add the paper's ``h/c = h`` restriction: every event must involve
    one of the given partner objects (the RW2 construction of Example 6).
    """
    only = OnlyMachine(InvolvesAny(partners))
    return strengthen(spec, only, name=name or f"{spec.name}@")


def _complete_permutation(
    mapping: Mapping[ObjectId, ObjectId],
) -> dict[Value, Value]:
    """Close an injective partial renaming into a finite permutation.

    ``{o ↦ q}`` alone is ambiguous when ``q`` already exists: is the old
    ``q`` erased, untouched, or moved?  Identities are pure names, so the
    only substitution that is everywhere well-defined and invertible is a
    *permutation* — each chain ``a ↦ b ↦ … ↦ z`` is closed with ``z ↦ a``
    (so ``{o ↦ q}`` becomes the swap ``{o ↦ q, q ↦ o}``).  Identities not
    reached stay fixed.
    """
    perm: dict[Value, Value] = dict(mapping)
    heads = [k for k in mapping if k not in set(mapping.values())]
    for head in heads:
        cur: Value = head
        seen = {head}
        while cur in perm:
            cur = perm[cur]
            if cur in seen:  # already a cycle
                break
            seen.add(cur)
        if cur != head and cur not in perm:
            perm[cur] = head
    return perm


def rename_objects(
    spec: Specification,
    mapping: Mapping[ObjectId, ObjectId],
    name: str | None = None,
) -> Specification:
    """Consistently substitute object identities throughout a specification.

    ``mapping`` must be injective; it is closed into a permutation (each
    renaming chain is cycle-completed, so ``{o ↦ q}`` acts as the swap of
    ``o`` and ``q`` — see :func:`_complete_permutation`); identities not
    reached are unchanged.  Renaming commutes with every judgement of the
    formalism (the equivariance tests check refinement and composition).
    """
    values = list(mapping.values())
    if len(set(values)) != len(values):
        raise SpecificationError("object renaming must be injective")
    forward: dict[Value, Value] = _complete_permutation(mapping)
    inverse: dict[Value, Value] = {v: k for k, v in forward.items()}

    objects = frozenset(forward.get(o, o) for o in spec.objects)  # type: ignore[misc]
    alphabet = spec.alphabet.rename(forward)

    ts = spec.traces
    if isinstance(ts, FullTraceSet):
        traces = FullTraceSet(alphabet)
    elif isinstance(ts, MachineTraceSet):
        traces = MachineTraceSet(alphabet, RenameMachine(inverse, ts.machine()))
    elif isinstance(ts, ComposedTraceSet):
        from repro.core.internal import InternalEvents

        parts = tuple(
            Part(p.alphabet.rename(forward), RenameMachine(inverse, p.machine))
            for p in ts.parts
        )
        pairs = frozenset(
            (forward.get(a, a), forward.get(b, b))
            for a, b in ts.internal.pairs
        )
        traces = ComposedTraceSet(
            alphabet=alphabet,
            combined=ts.combined.rename(forward),
            internal=InternalEvents(pairs),  # type: ignore[arg-type]
            parts=parts,
        )
    else:
        raise SpecificationError(f"cannot rename trace set {ts!r}")

    return Specification(
        name or spec.name, objects, alphabet, traces
    )
