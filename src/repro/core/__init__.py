"""Core formalism: values, sorts, events, alphabets, traces, specifications,
composition, and refinement (Definitions 1–14 of the paper)."""

from repro.core.alphabet import Alphabet
from repro.core.component import Component, SemanticObject
from repro.core.composition import (
    ComposabilityReport,
    check_composable,
    compose,
    parts_of,
    properness_witness,
)
from repro.core.events import Event, MethodSig, call
from repro.core.internal import InternalEvents
from repro.core.patterns import EventPattern, pattern, representative_values
from repro.core.refinement import (
    StaticRefinementReport,
    check_static,
    trace_condition_holds_for,
)
from repro.core.sorts import DATA, OBJ, Sort
from repro.core.specification import Specification, component_spec, interface_spec
from repro.core.traces import Trace
from repro.core.tracesets import (
    ComposedTraceSet,
    FullTraceSet,
    MachineTraceSet,
    Part,
    TraceSet,
)
from repro.core.values import DataVal, ObjectId, Value, data, obj, objs

__all__ = [
    "Alphabet",
    "Component",
    "SemanticObject",
    "ComposabilityReport",
    "check_composable",
    "compose",
    "parts_of",
    "properness_witness",
    "Event",
    "MethodSig",
    "call",
    "InternalEvents",
    "EventPattern",
    "pattern",
    "representative_values",
    "StaticRefinementReport",
    "check_static",
    "trace_condition_holds_for",
    "DATA",
    "OBJ",
    "Sort",
    "Specification",
    "component_spec",
    "interface_spec",
    "Trace",
    "ComposedTraceSet",
    "FullTraceSet",
    "MachineTraceSet",
    "Part",
    "TraceSet",
    "DataVal",
    "ObjectId",
    "Value",
    "data",
    "obj",
    "objs",
]
