"""Exception hierarchy for the ``repro`` library.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch library failures without intercepting programming errors
such as ``TypeError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SortError",
    "AlphabetError",
    "SpecificationError",
    "CompositionError",
    "RefinementError",
    "MachineError",
    "RegexError",
    "AutomatonError",
    "UniverseError",
    "StateSpaceLimitExceeded",
    "OUNSyntaxError",
    "OUNElaborationError",
    "RuntimeModelError",
    "MonitorViolation",
    "UnknownSpecificationError",
    "UnknownSessionError",
    "SessionStateError",
    "FingerprintError",
    "CacheError",
    "EngineError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SortError(ReproError):
    """Raised for ill-formed sort expressions or mixed-base operations."""


class AlphabetError(ReproError):
    """Raised for ill-formed alphabets or unsupported alphabet operations."""


class SpecificationError(ReproError):
    """Raised when a specification violates Definition 1 well-formedness."""


class CompositionError(ReproError):
    """Raised when specifications cannot be composed (e.g. not composable)."""


class RefinementError(ReproError):
    """Raised for ill-posed refinement queries."""


class MachineError(ReproError):
    """Raised for ill-formed trace machines."""


class RegexError(ReproError):
    """Raised for ill-formed trace regular expressions."""


class AutomatonError(ReproError):
    """Raised for ill-formed automata or operations on mismatched alphabets."""


class UniverseError(ReproError):
    """Raised for ill-formed finite universes."""


class StateSpaceLimitExceeded(ReproError):
    """Raised when an exact compilation would exceed the state budget.

    Carries the number of states explored so far in :attr:`explored`.
    """

    def __init__(self, message: str, explored: int) -> None:
        super().__init__(message)
        self.explored = explored


class OUNSyntaxError(ReproError):
    """Raised by the OUN notation parser, with position information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class OUNElaborationError(ReproError):
    """Raised when a parsed OUN document cannot be elaborated to core objects."""


class RuntimeModelError(ReproError):
    """Raised for ill-formed runtime system models."""


class MonitorViolation(ReproError):
    """Raised (optionally) by online monitors when a safety spec is violated."""

    def __init__(self, message: str, trace, event) -> None:
        super().__init__(message)
        self.trace = trace
        self.event = event


class UnknownSpecificationError(ReproError):
    """Raised when a request names a specification the service doesn't have.

    The management surface (:class:`repro.api.Gateway`, HTTP gateway)
    maps this to a 404 — the caller asked for a resource, not an
    operation, and the resource doesn't exist.
    """


class UnknownSessionError(ReproError):
    """Raised when a request names a monitoring session that isn't open."""


class SessionStateError(ReproError):
    """Raised when a request conflicts with a session's current binding.

    E.g. posting events for spec B to a session already bound to spec A:
    honouring it would silently reset the session's counters, so the
    management surface refuses (HTTP 409) instead.
    """


class FingerprintError(ReproError):
    """Raised when a value has no stable content fingerprint.

    Compiled-machine caching treats this as "uncacheable": the artifact is
    compiled directly and never stored, so an unfingerprintable object can
    degrade performance but never correctness.
    """


class CacheError(ReproError):
    """Raised for ill-formed cache configurations (not for cache misses)."""


class EngineError(ReproError):
    """Raised for ill-formed obligation-engine configurations or sources."""


class ObservabilityError(ReproError):
    """Raised for ill-formed metrics registrations or span exporters."""
