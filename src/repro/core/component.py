"""Semantic objects and components: Definitions 8–9.

The paper distinguishes *specifications* (partial descriptions) from the
*semantic* objects and components they describe.  Semantically, each
object ``o`` has a unique, given trace set ``T^o ⊆ Seq[α^o]`` describing
all its possible executions; a component ``C`` encapsulates a finite set
of objects, with

* ``α^C = ⋃ α^o − I(C)`` — observable events of the members, minus all
  events between members, and
* ``T^C = {h/α^C | ⋀ h/α^o ∈ T^o}`` — projections of the global traces
  whose per-object projections are possible for every member
  (Definition 9).

A :class:`SemanticObject` models ``T^o`` by a trace machine over the
events involving the object.  Because ``α^o`` ranges over *all* methods,
a :class:`Component` additionally carries an :class:`Alphabet` *hint*
declaring which events its objects can actually engage in — a finite
pattern description of the (still infinite) relevant event space, needed
to instantiate hidden internal events during membership search.  The hint
plays the role of the globally-given method universe of the paper.

Component composition is set union (and is commutative/associative by
construction, matching the remark after Definition 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.alphabet import Alphabet
from repro.core.errors import SpecificationError
from repro.core.events import Event
from repro.core.internal import InternalEvents
from repro.core.patterns import EventPattern
from repro.core.sorts import Sort
from repro.core.tracesets import ComposedTraceSet, Part
from repro.core.traces import Trace
from repro.core.values import ObjectId
from repro.machines.base import TraceMachine
from repro.machines.projection import FilterMachine

__all__ = ["SemanticObject", "Component"]


@dataclass(frozen=True, slots=True, eq=False)
class SemanticObject:
    """An object with its semantically given trace set ``T^o``.

    ``machine`` accepts exactly the traces of ``T^o``; every event of such
    a trace involves ``identity`` (the object's own alphabet ``α^o``).
    """

    identity: ObjectId
    machine: TraceMachine

    def admits(self, trace: Trace) -> bool:
        """``h ∈ T^o`` (also enforces ``h ∈ Seq[α^o]``)."""
        if not all(e.involves(self.identity) for e in trace):
            return False
        return self.machine.accepts(trace)

    def admits_projection(self, trace: Trace) -> bool:
        """``h/α^o ∈ T^o`` for a trace of a larger system."""
        return self.machine.accepts(trace.proj_obj(self.identity))

    def __repr__(self) -> str:
        return f"SemanticObject({self.identity})"


def _object_alphabet(hint: Alphabet, o: ObjectId) -> Alphabet:
    """The events of the hint involving ``o`` (``α^o`` within the hint)."""
    o_sort = Sort.values(o)
    out: list[EventPattern] = []
    for p in hint.patterns:
        q = p.restrict_endpoints(caller=o_sort)
        if q is not None:
            out.append(q)
        q = p.restrict_endpoints(callee=o_sort)
        if q is not None:
            out.append(q)
    return Alphabet.of(*out)


@dataclass(frozen=True, slots=True, eq=False)
class Component:
    """A semantic component: a finite set of semantic objects.

    ``alphabet_hint`` declares the event space the members may engage in;
    it must cover at least the events the member machines constrain.
    """

    members: tuple[SemanticObject, ...]
    alphabet_hint: Alphabet

    def __post_init__(self) -> None:
        if not self.members:
            raise SpecificationError("component must encapsulate ≥ 1 object")
        ids = [m.identity for m in self.members]
        if len(set(ids)) != len(ids):
            raise SpecificationError(
                "object identities in a component must be unique"
            )

    # ------------------------------------------------------------------
    # Definition 8/9 notions
    # ------------------------------------------------------------------

    def object_set(self) -> frozenset[ObjectId]:
        return frozenset(m.identity for m in self.members)

    def internal_events(self) -> InternalEvents:
        """``I(C)`` (Definition 8)."""
        return InternalEvents.square(self.object_set())

    def observable_alphabet(self) -> Alphabet:
        """``α^C = ⋃ α^o − I(C)`` within the declared hint."""
        return self.alphabet_hint.hide(self.object_set())

    def trace_set(self) -> ComposedTraceSet:
        """``T^C`` as a composed trace set (Definition 9)."""
        objects = self.object_set()
        parts = tuple(
            Part(_object_alphabet(self.alphabet_hint, m.identity), m.machine)
            for m in self.members
        )
        return ComposedTraceSet(
            alphabet=self.observable_alphabet(),
            combined=self.alphabet_hint,
            internal=InternalEvents.square(objects),
            parts=parts,
        )

    def admits(self, trace: Trace) -> bool:
        """``h ∈ T^C`` — observable-trace membership with hidden search."""
        return self.trace_set().contains(trace)

    def admits_global(self, trace: Trace) -> bool:
        """Membership for a *global* trace (internal events included)."""
        return all(m.admits_projection(trace) for m in self.members)

    # ------------------------------------------------------------------
    # composition (set union)
    # ------------------------------------------------------------------

    def compose(self, other: "Component") -> "Component":
        """Component composition is union on the encapsulated sets."""
        merged: dict[ObjectId, SemanticObject] = {}
        for m in self.members + other.members:
            existing = merged.get(m.identity)
            if existing is not None and existing is not m:
                raise SpecificationError(
                    f"components disagree on object {m.identity}: the same "
                    f"identity must denote the same semantic object"
                )
            merged[m.identity] = m
        return Component(
            tuple(merged[k] for k in sorted(merged)),
            self.alphabet_hint.union(other.alphabet_hint),
        )

    def __repr__(self) -> str:
        ids = ", ".join(str(m.identity) for m in self.members)
        return f"Component({{{ids}}})"
