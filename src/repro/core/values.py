"""Values: object identities and data values.

The paper's formalism has two kinds of first-class values:

* *object identities* (``Obj`` in the paper) — the names of the objects that
  exchange remote method calls, and
* *data values* (``Data`` in Example 1) — the values carried as method
  parameters.

Both are immutable and hashable so they can appear in events, traces, sort
expressions, and machine states.  Values are *tagged* with the name of the
base sort they inhabit; the sort algebra in :mod:`repro.core.sorts` treats
base sorts as pairwise-disjoint universes, which matches the paper (object
identities and data are never confused).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["ObjectId", "DataVal", "Value", "base_sort_of", "obj", "objs", "data"]


@dataclass(frozen=True, slots=True, order=True)
class ObjectId:
    """An object identity, e.g. the ``o`` of Example 1.

    Object identities are pure names; the same name always denotes the same
    object.  They inhabit the base sort ``"Obj"``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ObjectId name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"ObjectId({self.name!r})"


@dataclass(frozen=True, slots=True, order=True)
class DataVal:
    """A data value inhabiting a named data sort (default ``"Data"``).

    The label distinguishes values within the sort; ``DataVal("Data", "d1")``
    and ``DataVal("Data", "d2")`` are distinct members of ``Data``.
    """

    sort: str
    label: str

    def __post_init__(self) -> None:
        if not self.sort or not self.label:
            raise ValueError("DataVal sort and label must be non-empty")
        if self.sort == "Obj":
            raise ValueError("DataVal may not inhabit the object sort 'Obj'")

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"DataVal({self.sort!r}, {self.label!r})"


#: Union type of first-class values.
Value = ObjectId | DataVal


def base_sort_of(value: Value) -> str:
    """Return the name of the base sort a value inhabits.

    ``ObjectId`` values inhabit ``"Obj"``; ``DataVal`` values inhabit their
    declared data sort.
    """
    if isinstance(value, ObjectId):
        return "Obj"
    if isinstance(value, DataVal):
        return value.sort
    raise TypeError(f"not a repro value: {value!r}")


def obj(name: str) -> ObjectId:
    """Convenience constructor for an object identity."""
    return ObjectId(name)


def objs(*names: str) -> tuple[ObjectId, ...]:
    """Convenience constructor for several object identities at once."""
    return tuple(ObjectId(n) for n in names)


def data(*labels: str, sort: str = "Data") -> tuple[DataVal, ...]:
    """Convenience constructor for data values of a (default) data sort."""
    return tuple(DataVal(sort, label) for label in labels)
