"""Symbolic sort algebra: finite and cofinite sets of values.

The paper works with *infinite* alphabets: the environment of an open
distributed system contains a potentially infinite supply of object
identities, and data sorts such as ``Data`` are unbounded.  Alphabet-level
reasoning (Definition 1 well-formedness, refinement condition 2,
composability, properness) therefore needs a *symbolic* representation of
infinite value sets with decidable boolean operations.

This module provides exactly that: a :class:`Sort` is a finite union of

* a finite set of explicit values, and
* at most one *cofinite atom* per base sort — "all members of base sort
  ``b`` except a finite exclusion set".

Base sorts (``Obj`` for object identities, plus named data sorts) are
pairwise disjoint and countably infinite.  This class of sets is closed
under union, intersection, and difference, and membership, emptiness,
subset, disjointness, and infinity are all decidable — which is what makes
the paper's side conditions checkable without enumerating the universe.

Example::

    >>> from repro.core.values import obj
    >>> o = obj("o")
    >>> Objects = Sort.base("Obj").without(o)   # the paper's ``Objects``
    >>> Objects.contains(obj("x"))
    True
    >>> Objects.contains(o)
    False
    >>> Objects.is_infinite()
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import SortError
from repro.core.values import DataVal, ObjectId, Value, base_sort_of

__all__ = ["Sort", "OBJ", "DATA", "fresh_value"]


def fresh_value(base: str, index: int) -> Value:
    """Return the ``index``-th canonical fresh value of a base sort.

    Fresh values are drawn from a reserved namespace (names starting with
    ``"#"``) so they never collide with user-declared values.  The sequence
    is deterministic, which keeps witness extraction and small-model
    constructions reproducible.
    """
    name = f"#{base}{index}"
    if base == "Obj":
        return ObjectId(name)
    return DataVal(base, name)


def _check_excluded(base: str, excluded: Iterable[Value]) -> frozenset[Value]:
    out = frozenset(excluded)
    for v in out:
        if base_sort_of(v) != base:
            raise SortError(
                f"exclusion {v!r} does not inhabit base sort {base!r}"
            )
    return out


@dataclass(frozen=True, slots=True)
class Sort:
    """A symbolic set of values in finite/cofinite normal form.

    ``finite`` holds explicitly enumerated members.  ``cofinite`` maps a
    base-sort name to the finite set of values of that base which are
    *excluded*; a base appearing as a key contributes "all of the base
    except the exclusions".

    Invariants (maintained by :meth:`_make`):

    * exclusion sets only contain values of their own base;
    * no value in ``finite`` is already covered by a cofinite atom;
    * no value excluded by a cofinite atom also appears in ``finite``
      (such values are instead removed from the exclusion set).
    """

    finite: frozenset[Value]
    cofinite: tuple[tuple[str, frozenset[Value]], ...]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def _make(
        finite: Iterable[Value],
        cofinite: dict[str, frozenset[Value]],
    ) -> "Sort":
        fin = set(finite)
        cof: dict[str, set[Value]] = {
            b: set(_check_excluded(b, ex)) for b, ex in cofinite.items()
        }
        # A value both excluded and explicitly present is simply present:
        # un-exclude it.
        for b, ex in cof.items():
            ex -= fin
        # A finite value covered by a cofinite atom is redundant.
        covered = set()
        for v in fin:
            b = base_sort_of(v)
            if b in cof and v not in cof[b]:
                covered.add(v)
        fin -= covered
        return Sort(
            frozenset(fin),
            tuple(sorted((b, frozenset(ex)) for b, ex in cof.items())),
        )

    @staticmethod
    def empty() -> "Sort":
        """The empty sort."""
        return Sort._make((), {})

    @staticmethod
    def values(*vs: Value) -> "Sort":
        """The finite sort containing exactly the given values."""
        return Sort._make(vs, {})

    @staticmethod
    def base(name: str, exclude: Iterable[Value] = ()) -> "Sort":
        """All members of base sort ``name``, minus ``exclude``.

        ``Sort.base("Obj", [o])`` is the paper's ``Objects`` subtype of
        ``Obj`` "not containing o".
        """
        return Sort._make((), {name: frozenset(exclude)})

    def without(self, *vs: Value) -> "Sort":
        """This sort minus the given values."""
        return self.difference(Sort.values(*vs))

    def with_values(self, *vs: Value) -> "Sort":
        """This sort plus the given values."""
        return self.union(Sort.values(*vs))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _cof(self) -> dict[str, frozenset[Value]]:
        return dict(self.cofinite)

    def contains(self, v: Value) -> bool:
        """Membership test."""
        if v in self.finite:
            return True
        ex = self._cof().get(base_sort_of(v))
        return ex is not None and v not in ex

    __contains__ = contains

    def is_empty(self) -> bool:
        """Emptiness test (cofinite atoms are never empty: bases are infinite)."""
        return not self.finite and not self.cofinite

    def is_infinite(self) -> bool:
        """True iff the sort has a cofinite atom (bases are infinite)."""
        return bool(self.cofinite)

    def is_finite(self) -> bool:
        return not self.cofinite

    def is_singleton(self) -> bool:
        return not self.cofinite and len(self.finite) == 1

    def the_value(self) -> Value:
        """The unique member of a singleton sort."""
        if not self.is_singleton():
            raise SortError(f"{self} is not a singleton")
        return next(iter(self.finite))

    def base_names(self) -> frozenset[str]:
        """Base sorts over which this sort has a cofinite atom."""
        return frozenset(b for b, _ in self.cofinite)

    def mentioned_values(self) -> frozenset[Value]:
        """All values named explicitly: finite members plus exclusions.

        This is the boundary set used by small-model constructions — the
        sort's membership predicate is uniform on values outside it.
        """
        out = set(self.finite)
        for _, ex in self.cofinite:
            out |= ex
        return frozenset(out)

    # ------------------------------------------------------------------
    # boolean algebra
    # ------------------------------------------------------------------

    def union(self, other: "Sort") -> "Sort":
        fin = set(self.finite) | set(other.finite)
        a, b = self._cof(), other._cof()
        cof: dict[str, frozenset[Value]] = {}
        for name in set(a) | set(b):
            if name in a and name in b:
                cof[name] = a[name] & b[name]
            else:
                cof[name] = a.get(name, b.get(name))  # type: ignore[arg-type]
        return Sort._make(fin, cof)

    def intersection(self, other: "Sort") -> "Sort":
        a, b = self._cof(), other._cof()
        fin: set[Value] = set()
        for v in self.finite:
            if other.contains(v):
                fin.add(v)
        for v in other.finite:
            if self.contains(v):
                fin.add(v)
        cof: dict[str, frozenset[Value]] = {}
        for name in set(a) & set(b):
            cof[name] = a[name] | b[name]
        return Sort._make(fin, cof)

    def difference(self, other: "Sort") -> "Sort":
        a, b = self._cof(), other._cof()
        fin = {v for v in self.finite if not other.contains(v)}
        cof: dict[str, frozenset[Value]] = {}
        for name, ex in a.items():
            if name in b:
                # (base \ ex) \ (base \ b_ex) = b_ex \ ex  (finite)
                fin |= {v for v in b[name] if v not in ex}
            else:
                new_ex = set(ex) | {
                    v for v in other.finite if base_sort_of(v) == name
                }
                cof[name] = frozenset(new_ex)
        return Sort._make(fin, cof)

    def is_subset(self, other: "Sort") -> bool:
        """Decide ``self ⊆ other`` exactly."""
        for v in self.finite:
            if not other.contains(v):
                return False
        b = other._cof()
        for name, ex in self.cofinite:
            if name not in b:
                return False  # base sorts are infinite
            # base \ ex ⊆ (base \ b_ex) ∪ finite(other)
            # ⟺ every v in b_ex \ ex is in finite(other)
            for v in b[name]:
                if v not in ex and v not in other.finite:
                    return False
        return True

    def is_disjoint(self, other: "Sort") -> bool:
        return self.intersection(other).is_empty()

    def equals(self, other: "Sort") -> bool:
        """Extensional equality (normal forms are canonical, so ``==`` works too)."""
        return self == other

    def rename(self, mapping: dict) -> "Sort":
        """Apply a value renaming to all named members and exclusions.

        The renaming must preserve base sorts (an object cannot become a
        data value) and must be injective on the values it actually moves
        within this sort; both are checked.
        """
        def f(v: Value) -> Value:
            w = mapping.get(v, v)
            if base_sort_of(w) != base_sort_of(v):
                raise SortError(
                    f"renaming {v!r} ↦ {w!r} crosses base sorts"
                )
            return w

        fin = [f(v) for v in self.finite]
        if len(set(fin)) != len(fin):
            raise SortError("renaming collapses distinct members of a sort")
        cof = {}
        for name, ex in self.cofinite:
            new_ex = [f(v) for v in ex]
            if len(set(new_ex)) != len(new_ex):
                raise SortError(
                    "renaming collapses distinct exclusions of a sort"
                )
            cof[name] = frozenset(new_ex)
        return Sort._make(fin, cof)

    # ------------------------------------------------------------------
    # witnesses and enumeration
    # ------------------------------------------------------------------

    def witnesses(self, n: int, avoid: Iterable[Value] = ()) -> tuple[Value, ...]:
        """Return up to ``n`` distinct members, avoiding ``avoid``.

        Finite members come first (in sorted order for determinism), then
        canonical fresh values of each cofinite base.  Raises
        :class:`SortError` if the sort cannot supply ``n`` members.
        """
        avoid_set = set(avoid)
        out: list[Value] = []
        for v in sorted(self.finite, key=repr):
            if v not in avoid_set:
                out.append(v)
                avoid_set.add(v)
            if len(out) == n:
                return tuple(out)
        for name, ex in self.cofinite:
            i = 0
            while len(out) < n:
                v = fresh_value(name, i)
                i += 1
                if v in ex or v in avoid_set:
                    continue
                out.append(v)
                avoid_set.add(v)
            if len(out) == n:
                return tuple(out)
        if len(out) < n:
            raise SortError(
                f"sort {self} has fewer than {n} members outside the avoid set"
            )
        return tuple(out)

    def witness(self, avoid: Iterable[Value] = ()) -> Value:
        """Return one member avoiding ``avoid`` (raises if impossible)."""
        return self.witnesses(1, avoid)[0]

    def enumerate_finite(self) -> Iterator[Value]:
        """Iterate the members of a finite sort (raises if infinite)."""
        if self.is_infinite():
            raise SortError(f"cannot enumerate infinite sort {self}")
        return iter(sorted(self.finite, key=repr))

    def size(self) -> int:
        """Cardinality of a finite sort (raises if infinite)."""
        if self.is_infinite():
            raise SortError(f"infinite sort {self} has no finite size")
        return len(self.finite)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        parts: list[str] = []
        if self.finite:
            inner = ", ".join(str(v) for v in sorted(self.finite, key=repr))
            parts.append("{" + inner + "}")
        for name, ex in self.cofinite:
            if ex:
                inner = ", ".join(str(v) for v in sorted(ex, key=repr))
                parts.append(f"{name}\\{{{inner}}}")
            else:
                parts.append(name)
        return " ∪ ".join(parts) if parts else "∅"

    def __repr__(self) -> str:
        return f"Sort({self})"


#: All object identities — the paper's ``Obj``.
OBJ = Sort.base("Obj")

#: All data values of the default data sort — the paper's ``Data``.
DATA = Sort.base("Data")
