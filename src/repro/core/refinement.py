"""The refinement relation ``Γ' ⊑ Γ`` (Definition 2).

Three conditions:

1. ``O(Γ) ⊆ O(Γ')``   — the refinement may *add* objects,
2. ``α(Γ) ⊆ α(Γ')``   — the refinement may *expand* the alphabet
   (new methods, new communication partners),
3. ``∀h ∈ T(Γ') : h/α(Γ) ∈ T(Γ)`` — projected behaviour is preserved.

Conditions 1–2 are decided here, exactly and symbolically.  Condition 3
quantifies over an infinite trace set; :mod:`repro.checker.refinement`
provides the decision strategies (exact automata-based language inclusion
over a finite universe, bounded exploration, random sampling).  This module
exposes the per-trace form of condition 3 that all strategies share.

The relation is a partial order (reflexive, transitive, antisymmetric up
to trace-set equality); the property-based tests exercise this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.traces import Trace
from repro.core.values import ObjectId

__all__ = ["StaticRefinementReport", "check_static", "trace_condition_holds_for"]


@dataclass(frozen=True, slots=True)
class StaticRefinementReport:
    """Outcome of refinement conditions 1 and 2.

    ``missing_objects`` — objects of the abstract specification absent from
    the concrete one (condition 1 fails if non-empty).
    ``alphabet_witness`` — an event of ``α(Γ) − α(Γ')`` (condition 2 fails
    if not ``None``).
    """

    missing_objects: frozenset[ObjectId]
    alphabet_witness: Event | None

    @property
    def objects_ok(self) -> bool:
        return not self.missing_objects

    @property
    def alphabet_ok(self) -> bool:
        return self.alphabet_witness is None

    @property
    def ok(self) -> bool:
        return self.objects_ok and self.alphabet_ok

    def explain(self) -> str:
        if self.ok:
            return "static refinement conditions hold"
        parts = []
        if self.missing_objects:
            objs = ", ".join(str(o) for o in sorted(self.missing_objects))
            parts.append(f"objects {{{objs}}} of the abstract spec are missing")
        if self.alphabet_witness is not None:
            parts.append(
                f"abstract alphabet event {self.alphabet_witness} is not in "
                f"the concrete alphabet"
            )
        return "; ".join(parts)


def check_static(
    concrete: Specification, abstract: Specification
) -> StaticRefinementReport:
    """Decide conditions 1 and 2 of ``concrete ⊑ abstract`` exactly."""
    missing = frozenset(abstract.objects) - frozenset(concrete.objects)
    witness = abstract.alphabet.subset_witness(concrete.alphabet)
    return StaticRefinementReport(missing, witness)


def trace_condition_holds_for(
    trace: Trace, concrete: Specification, abstract: Specification
) -> bool:
    """Condition 3 for one trace: ``h ∈ T(Γ') ⇒ h/α(Γ) ∈ T(Γ)``.

    The caller guarantees ``trace ∈ T(concrete)``; this checks the
    consequent.
    """
    return abstract.admits(trace.filter(abstract.alphabet))
