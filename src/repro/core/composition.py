"""Composition of specifications: Definitions 3–4 and 10–11.

``compose(Γ, Δ)`` builds ``Γ‖Δ``:

* object set ``O(Γ) ∪ O(Δ)``,
* alphabet ``(α(Γ) ∪ α(Δ)) − I(O)`` — all events between objects of the
  composition are hidden, *including* events in neither alphabet
  ("we hide more than we can see", Fig. 1),
* trace set ``{h/α | h/α(Γ) ∈ T(Γ) ∧ h/α(Δ) ∈ T(Δ)}`` with ``h`` ranging
  over ``Seq[α(Γ) ∪ α(Δ)]`` (existential hiding, see
  :class:`~repro.core.tracesets.ComposedTraceSet`).

For interface specifications this is Definition 4 (two specifications of
the *same* object compose without hiding — ``I({o}) = ∅`` — giving the
weakest common refinement of Lemma 6).  For component specifications,
Definition 11 additionally requires *composability* (Definition 10), which
:func:`check_composable` decides exactly and :func:`compose` enforces.

Nested compositions are flattened into their leaf parts; this relies on
the associativity of ‖ (Property 12), which the law harness verifies
independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.errors import CompositionError
from repro.core.events import Event
from repro.core.internal import InternalEvents
from repro.core.patterns import EventPattern
from repro.core.sorts import Sort
from repro.core.specification import Specification
from repro.core.tracesets import ComposedTraceSet, Part
from repro.core.values import ObjectId

__all__ = [
    "ComposabilityReport",
    "check_composable",
    "properness_witness",
    "compose",
    "parts_of",
]


@dataclass(frozen=True, slots=True)
class ComposabilityReport:
    """Outcome of the Definition 10 check.

    ``left_witness`` is an event of ``α(Γ) ∩ I(O(Δ))`` (``None`` if empty);
    ``right_witness`` of ``I(O(Γ)) ∩ α(Δ)``.
    """

    left_witness: Event | None
    right_witness: Event | None

    @property
    def composable(self) -> bool:
        return self.left_witness is None and self.right_witness is None

    def explain(self) -> str:
        if self.composable:
            return "composable"
        parts = []
        if self.left_witness is not None:
            parts.append(
                f"α(Γ) contains the Δ-internal event {self.left_witness}"
            )
        if self.right_witness is not None:
            parts.append(
                f"α(Δ) contains the Γ-internal event {self.right_witness}"
            )
        return "not composable: " + "; ".join(parts)


def check_composable(gamma: Specification, delta: Specification) -> ComposabilityReport:
    """Definition 10: ``α(Γ) ∩ I(O(Δ)) = ∅ ∧ I(O(Γ)) ∩ α(Δ) = ∅``."""
    return ComposabilityReport(
        left_witness=gamma.alphabet.internal_witness(
            InternalEvents.square(delta.objects)
        ),
        right_witness=delta.alphabet.internal_witness(
            InternalEvents.square(gamma.objects)
        ),
    )


def properness_witness(
    abstract: Specification,
    concrete: Specification,
    delta: Specification,
) -> Event | None:
    """Definition 14: is ``concrete`` a *proper* refinement w.r.t. ``delta``?

    ``α₀`` is the set of events involving a *new* object of the refinement
    (in ``O(Γ') − O(Γ)``) with neither endpoint in ``O(Γ)``.  The refinement
    is proper iff ``α₀ ∩ α(Δ) = ∅``; returns a witness of the intersection
    or ``None`` when proper.
    """
    new = frozenset(concrete.objects) - frozenset(abstract.objects)
    if not new:
        return None
    n_sort = Sort.values(*new)
    g_sort = Sort.values(*abstract.objects)
    for p in delta.alphabet.patterns:
        # caller ∈ new, callee ∉ O(Γ)
        q = EventPattern(
            p.caller.intersection(n_sort),
            p.callee.difference(g_sort),
            p.method,
            p.args,
        )
        if not q.is_empty():
            return q.witness()
        # callee ∈ new, caller ∉ O(Γ)
        q = EventPattern(
            p.caller.difference(g_sort),
            p.callee.intersection(n_sort),
            p.method,
            p.args,
        )
        if not q.is_empty():
            return q.witness()
    return None


def parts_of(spec: Specification) -> tuple[Part, ...]:
    """The leaf parts of a specification's trace set (flattening ‖)."""
    ts = spec.traces
    if isinstance(ts, ComposedTraceSet):
        return ts.parts
    machine = ts.machine()  # type: ignore[attr-defined]
    return (Part(spec.alphabet, machine),)


def compose(
    gamma: Specification,
    delta: Specification,
    name: str | None = None,
    require_composable: bool = True,
) -> Specification:
    """Build ``Γ‖Δ`` (Definitions 4 and 11).

    Composability (Definition 10) is checked unless the two specifications
    are interface specifications (where it holds trivially —
    ``I(singleton) = ∅``) or ``require_composable=False`` is forced.
    """
    if require_composable:
        report = check_composable(gamma, delta)
        if not report.composable:
            raise CompositionError(
                f"cannot compose {gamma.name} ‖ {delta.name}: {report.explain()}"
            )
    objects: frozenset[ObjectId] = frozenset(gamma.objects) | frozenset(
        delta.objects
    )
    internal = InternalEvents.square(objects)

    parts: list[Part] = []
    for part in parts_of(gamma) + parts_of(delta):
        if part not in parts:
            parts.append(part)

    # The insertion space for hidden events is the union of the *leaf*
    # alphabets: for nested compositions, the inner composition's traces
    # are themselves projections of traces over its leaves, so the
    # flattened search must range over the leaf alphabets (this is what
    # makes flattening agree with Definition 11 — Property 12's
    # associativity, which the law harness checks).  The observable
    # alphabet is the same either way: hiding I(O) absorbs the inner
    # hiding, and composability keeps the partner alphabets untouched.
    combined = Alphabet.empty()
    for part in parts:
        combined = combined.union(part.alphabet)
    observable = combined.hide(objects)

    traces = ComposedTraceSet(
        alphabet=observable,
        combined=combined,
        internal=internal,
        parts=tuple(parts),
    )
    return Specification(
        name or f"({gamma.name}‖{delta.name})",
        objects,
        observable,
        traces,
    )
