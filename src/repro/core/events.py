"""Communication events: ``⟨caller, callee, m(args)⟩``.

A communication event represents a remote method call: the *caller* invokes
method *m* (with parameter values *args*) on the *callee*.  Following the
paper, an observable event always has ``caller != callee`` — calls from an
object to itself are internal activity and never appear in alphabets or
traces.

Events are immutable and hashable: they are the letters of trace alphabets
and the transition labels of automata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.values import ObjectId, Value

__all__ = ["Event", "MethodSig", "call"]


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """A communication event ``⟨caller, callee, method(args)⟩``.

    The paper writes events as triples ``⟨o₂, o₁, m⟩`` where ``o₂`` calls
    method ``m`` of ``o₁``; parameters, when present, are carried in
    ``args`` (Example 1's ``R(d)`` and ``W(d)``).
    """

    caller: ObjectId
    callee: ObjectId
    method: str
    args: tuple[Value, ...] = field(default=())

    def __post_init__(self) -> None:
        if not isinstance(self.caller, ObjectId):
            raise TypeError(f"caller must be an ObjectId, got {self.caller!r}")
        if not isinstance(self.callee, ObjectId):
            raise TypeError(f"callee must be an ObjectId, got {self.callee!r}")
        if self.caller == self.callee:
            raise ValueError(
                f"self-calls are internal and not observable: {self.caller}"
            )
        if not self.method:
            raise ValueError("method name must be non-empty")

    def involves(self, o: ObjectId) -> bool:
        """True iff ``o`` is the caller or the callee (the paper's ``h/o``)."""
        return o == self.caller or o == self.callee

    def endpoints(self) -> frozenset[ObjectId]:
        """The two objects taking part in the event."""
        return frozenset((self.caller, self.callee))

    def values(self) -> frozenset[Value]:
        """All values occurring in the event (endpoints and parameters)."""
        return frozenset((self.caller, self.callee, *self.args))

    def __str__(self) -> str:
        if self.args:
            inner = ", ".join(str(a) for a in self.args)
            return f"⟨{self.caller},{self.callee},{self.method}({inner})⟩"
        return f"⟨{self.caller},{self.callee},{self.method}⟩"

    def __repr__(self) -> str:
        return f"Event({self.caller!r}, {self.callee!r}, {self.method!r}, {self.args!r})"


@dataclass(frozen=True, slots=True, order=True)
class MethodSig:
    """A method signature: a name and the sorts of its parameters.

    Signatures are declarative metadata used by the OUN notation and by
    universe enumeration; the sorts themselves live in event patterns.
    """

    name: str
    arity: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("method name must be non-empty")
        if self.arity < 0:
            raise ValueError("arity must be non-negative")

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


def call(caller: ObjectId, callee: ObjectId, method: str, *args: Value) -> Event:
    """Convenience constructor: ``call(x, o, "W", d)`` is ``⟨x,o,W(d)⟩``."""
    return Event(caller, callee, method, tuple(args))
