"""Symbolic event patterns: sort-products describing infinite event sets.

An alphabet in the paper is an infinite set of events such as::

    {⟨x, o, R(d)⟩ | x ∈ Objects ∧ d ∈ Data}

This module represents one such comprehension as an :class:`EventPattern`:
a product of a caller sort, a callee sort, a method name, and per-parameter
argument sorts, restricted by the implicit diagonal constraint
``caller ≠ callee`` (observable events are never self-calls).

The pattern class supports the exact symbolic operations needed by the
paper's alphabet-level side conditions:

* membership of a concrete event,
* emptiness and infinity,
* intersection (for composability, Definition 10),
* subtraction of endpoint constraints (for hiding, Definitions 4 and 11),
* coverage by a union of patterns (for refinement condition 2), decided by
  a *small-model* construction.

Small-model coverage.  Sorts are finite/cofinite: membership of a value
depends only on (a) which explicitly *mentioned* value it equals, if any,
or else (b) its base sort.  The only cross-position constraint in a pattern
is ``caller ≠ callee``.  Hence a pattern ``p`` is covered by a union ``U``
of patterns iff every *representative* event of ``p`` is covered, where
representatives are built from the mentioned values of all involved sorts
plus three fresh values per base sort (two distinct fresh values realise
every equality/inequality shape between two generic positions; the third is
margin for argument positions).  This reduces an inclusion between infinite
sets to finitely many membership tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.errors import AlphabetError
from repro.core.events import Event
from repro.core.sorts import Sort, fresh_value
from repro.core.values import ObjectId, Value, base_sort_of

__all__ = ["EventPattern", "pattern", "representative_values"]

#: Number of fresh representatives drawn per base sort in coverage checks.
FRESH_PER_BASE = 3


@dataclass(frozen=True, slots=True)
class EventPattern:
    """The event set ``{⟨c,k,m(ā)⟩ | c ∈ caller, k ∈ callee, c ≠ k, aᵢ ∈ argsᵢ}``."""

    caller: Sort
    callee: Sort
    method: str
    args: tuple[Sort, ...] = ()

    def __post_init__(self) -> None:
        if not self.method:
            raise AlphabetError("pattern method name must be non-empty")
        for s in (self.caller, self.callee):
            for name in s.base_names():
                if name != "Obj":
                    raise AlphabetError(
                        f"endpoint sort {s} ranges over non-object base {name!r}"
                    )
            for v in s.finite:
                if not isinstance(v, ObjectId):
                    raise AlphabetError(
                        f"endpoint sort {s} contains non-object value {v!r}"
                    )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def arity(self) -> int:
        return len(self.args)

    def contains(self, e: Event) -> bool:
        """Membership of a concrete event."""
        if e.method != self.method or len(e.args) != len(self.args):
            return False
        if not (self.caller.contains(e.caller) and self.callee.contains(e.callee)):
            return False
        return all(s.contains(a) for s, a in zip(self.args, e.args))

    __contains__ = contains

    def is_empty(self) -> bool:
        """True iff the pattern denotes no event at all.

        Besides empty component sorts, the diagonal constraint makes the
        pattern empty when caller and callee sorts are the *same singleton*.
        """
        if self.caller.is_empty() or self.callee.is_empty():
            return True
        if any(s.is_empty() for s in self.args):
            return True
        if (
            self.caller.is_singleton()
            and self.callee.is_singleton()
            and self.caller.the_value() == self.callee.the_value()
        ):
            return True
        return False

    def is_infinite(self) -> bool:
        """True iff the pattern denotes infinitely many events."""
        if self.is_empty():
            return False
        return (
            self.caller.is_infinite()
            or self.callee.is_infinite()
            or any(s.is_infinite() for s in self.args)
        )

    def mentioned_values(self) -> frozenset[Value]:
        out: set[Value] = set()
        out |= self.caller.mentioned_values()
        out |= self.callee.mentioned_values()
        for s in self.args:
            out |= s.mentioned_values()
        return frozenset(out)

    def base_names(self) -> frozenset[str]:
        out: set[str] = set()
        out |= self.caller.base_names()
        out |= self.callee.base_names()
        for s in self.args:
            out |= s.base_names()
        return frozenset(out)

    # ------------------------------------------------------------------
    # symbolic operations
    # ------------------------------------------------------------------

    def intersection(self, other: "EventPattern") -> "EventPattern | None":
        """Componentwise intersection; ``None`` when methods/arities differ."""
        if self.method != other.method or len(self.args) != len(other.args):
            return None
        p = EventPattern(
            self.caller.intersection(other.caller),
            self.callee.intersection(other.callee),
            self.method,
            tuple(a.intersection(b) for a, b in zip(self.args, other.args)),
        )
        return None if p.is_empty() else p

    def restrict_endpoints(
        self, caller: Sort | None = None, callee: Sort | None = None
    ) -> "EventPattern | None":
        """The sub-pattern whose endpoints additionally lie in given sorts."""
        c = self.caller if caller is None else self.caller.intersection(caller)
        k = self.callee if callee is None else self.callee.intersection(callee)
        p = EventPattern(c, k, self.method, self.args)
        return None if p.is_empty() else p

    def subtract_endpoint_square(
        self, objects: Iterable[ObjectId]
    ) -> tuple["EventPattern", ...]:
        """Remove all events with *both* endpoints in ``objects``.

        This is the pattern-level core of hiding: ``α − I(O)`` in
        Definitions 4 and 11.  The remainder splits into two disjoint
        patterns: caller outside ``O``, or caller inside ``O`` with callee
        outside ``O``.
        """
        o_sort = Sort.values(*objects)
        out: list[EventPattern] = []
        p1 = self.restrict_endpoints(caller=self.caller.difference(o_sort))
        if p1 is not None:
            out.append(p1)
        p2 = EventPattern(
            self.caller.intersection(o_sort),
            self.callee.difference(o_sort),
            self.method,
            self.args,
        )
        if not p2.is_empty():
            out.append(p2)
        return tuple(out)

    def rename(self, mapping: dict) -> "EventPattern":
        """Apply a value renaming to every component sort."""
        return EventPattern(
            self.caller.rename(mapping),
            self.callee.rename(mapping),
            self.method,
            tuple(s.rename(mapping) for s in self.args),
        )

    # ------------------------------------------------------------------
    # witnesses, enumeration, coverage
    # ------------------------------------------------------------------

    def witness(self) -> Event:
        """Produce one concrete event matching the pattern."""
        if self.is_empty():
            raise AlphabetError(f"empty pattern {self} has no witness")
        c = self.caller.witness()
        try:
            k = self.callee.witness(avoid=(c,))
        except Exception:
            # callee sort is the singleton {c}: pick a different caller.
            k = self.callee.witness()
            c = self.caller.witness(avoid=(k,))
        args = tuple(s.witness() for s in self.args)
        return Event(c, k, self.method, args)  # type: ignore[arg-type]

    def instantiate(
        self, callers: Iterable[Value], callees: Iterable[Value],
        arg_values: Sequence[Iterable[Value]] | None = None,
    ) -> Iterator[Event]:
        """Enumerate concrete events with components drawn from given pools."""
        pools = arg_values if arg_values is not None else [[] for _ in self.args]
        if len(pools) != len(self.args):
            raise AlphabetError("argument pool arity mismatch")
        callers = [c for c in callers if self.caller.contains(c)]
        callees = [k for k in callees if self.callee.contains(k)]
        arg_pools = [
            [a for a in pool if s.contains(a)]
            for s, pool in zip(self.args, pools)
        ]
        for c in callers:
            for k in callees:
                if c == k:
                    continue
                for combo in itertools.product(*arg_pools) if arg_pools else [()]:
                    yield Event(c, k, self.method, tuple(combo))  # type: ignore[arg-type]

    def covered_by(self, others: Sequence["EventPattern"]) -> Event | None:
        """Decide whether this pattern is a subset of the union of ``others``.

        Returns ``None`` when covered, or a concrete *witness event* that is
        in this pattern but in none of the others.  Exact by the small-model
        argument in the module docstring.
        """
        if self.is_empty():
            return None
        candidates = [p for p in others if p.method == self.method
                      and len(p.args) == len(self.args)]
        reps = representative_values([self, *candidates])
        obj_reps = [v for v in reps if isinstance(v, ObjectId)]
        arg_rep_pools = [list(reps) for _ in self.args]
        for e in self.instantiate(obj_reps, obj_reps, arg_rep_pools):
            if not any(p.contains(e) for p in candidates):
                return e
        return None

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        if self.args:
            inner = ", ".join(str(s) for s in self.args)
            return f"⟨{self.caller}, {self.callee}, {self.method}({inner})⟩"
        return f"⟨{self.caller}, {self.callee}, {self.method}⟩"

    def __repr__(self) -> str:
        return f"EventPattern({self})"


def representative_values(
    patterns: Iterable[EventPattern],
    extra: Iterable[Value] = (),
    fresh_per_base: int = FRESH_PER_BASE,
) -> tuple[Value, ...]:
    """Representative value set for small-model reasoning over ``patterns``.

    Contains every mentioned value of every involved sort, every value in
    ``extra``, and ``fresh_per_base`` canonical fresh values for each base
    sort occurring in any cofinite atom (always including ``Obj``).
    """
    mentioned: set[Value] = set(extra)
    bases: set[str] = {"Obj"}
    for p in patterns:
        mentioned |= p.mentioned_values()
        bases |= p.base_names()
    out = set(mentioned)
    for b in sorted(bases):
        i = 0
        added = 0
        while added < fresh_per_base:
            v = fresh_value(b, i)
            i += 1
            if v in out:
                continue
            out.add(v)
            added += 1
    return tuple(sorted(out, key=repr))


def pattern(
    caller: Sort, callee: Sort, method: str, *args: Sort
) -> EventPattern:
    """Convenience constructor mirroring the paper's comprehension syntax."""
    return EventPattern(caller, callee, method, tuple(args))
