"""Prefix-closed trace sets over alphabets.

A trace set ``T`` (Definition 1) is a prefix-closed subset of ``Seq[α]``.
Three representations cover the paper:

* :class:`FullTraceSet` — ``Seq[α]`` itself (Example 1's ``Read``);
* :class:`MachineTraceSet` — the largest prefix-closed subset of
  ``{h : Seq[α] | P(h)}`` for an executable predicate ``P`` (a
  :class:`~repro.machines.base.TraceMachine`);
* :class:`ComposedTraceSet` — the trace set of a composition
  ``Γ‖Δ`` (Definitions 4 and 11): the *projections to the observable
  alphabet* of the traces over ``α(Γ) ∪ α(Δ)`` whose projections to each
  component alphabet lie in the component trace sets.

Membership in a composed trace set is existential — a witness trace with
hidden internal events must be found.  :meth:`ComposedTraceSet.witness`
implements a complete memoised search: from each (observable position,
product machine state) pair it either consumes the next observable event
or inserts a candidate internal event, deduplicating on the pair.  When the
reachable machine-state space is finite (always, for the paper's regex +
bounded-counter predicates over a finite set of relevant objects) the
search terminates and is exact *for the candidate internal-event pool*.
The pool contains every instantiation of the hidden patterns over the
mentioned values, the values of the queried trace, and fresh
representatives per base sort — complete for predicates that are uniform
in unmentioned identities, which all predicates expressible in the
formalism's notation are (they quantify over sorts).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.alphabet import Alphabet
from repro.core.errors import StateSpaceLimitExceeded
from repro.core.events import Event
from repro.core.internal import InternalEvents
from repro.core.patterns import representative_values
from repro.core.traces import Trace
from repro.core.values import Value
from repro.machines.base import TraceMachine
from repro.machines.boolean import TrueMachine
from repro.machines.projection import FilterMachine

__all__ = [
    "TraceSet",
    "FullTraceSet",
    "MachineTraceSet",
    "ComposedTraceSet",
    "Part",
]


class TraceSet:
    """Base class: a prefix-closed set of traces over ``alphabet``."""

    alphabet: Alphabet

    def contains(self, trace: Trace) -> bool:
        raise NotImplementedError

    __contains__ = contains

    def over_alphabet(self, trace: Trace) -> bool:
        """Is every event of the trace in the alphabet?"""
        return all(self.alphabet.contains(e) for e in trace)

    def mentioned_values(self) -> frozenset[Value]:
        """Values named by the alphabet or the trace predicate."""
        return self.alphabet.mentioned_values()

    def base_names(self) -> frozenset[str]:
        """Base sorts the trace set ranges over.

        For composed trace sets this includes the *hidden* alphabet's
        bases — universes must be able to instantiate internal events
        (e.g. a datum-carrying call that never appears observably).
        """
        return self.alphabet.base_names()


@dataclass(frozen=True, slots=True)
class FullTraceSet(TraceSet):
    """``Seq[α]``: the unconstrained trace set."""

    alphabet: Alphabet

    def contains(self, trace: Trace) -> bool:
        return self.over_alphabet(trace)

    __contains__ = contains

    def machine(self) -> TraceMachine:
        return TrueMachine()

    def __str__(self) -> str:
        return "Seq[α]"


@dataclass(frozen=True, slots=True, eq=False)
class MachineTraceSet(TraceSet):
    """Largest prefix-closed subset of ``{h : Seq[α] | P(h)}``."""

    alphabet: Alphabet
    predicate: TraceMachine

    def contains(self, trace: Trace) -> bool:
        return self.over_alphabet(trace) and self.predicate.accepts(trace)

    __contains__ = contains

    def machine(self) -> TraceMachine:
        return self.predicate

    def mentioned_values(self) -> frozenset[Value]:
        return self.alphabet.mentioned_values() | self.predicate.mentioned_values()

    def __str__(self) -> str:
        return f"{{h : Seq[α] | {self.predicate!r}}}"


@dataclass(frozen=True, slots=True)
class Part:
    """One component of a composition: its alphabet and trace predicate."""

    alphabet: Alphabet
    machine: TraceMachine


class _ProductState:
    __slots__ = ("states",)

    def __init__(self, states: tuple) -> None:
        self.states = states

    def __hash__(self) -> int:
        return hash(self.states)

    def __eq__(self, other) -> bool:
        return isinstance(other, _ProductState) and self.states == other.states


@dataclass(frozen=True, slots=True, eq=False)
class ComposedTraceSet(TraceSet):
    """The trace set of a composition, with existential hiding.

    ``parts`` are the *leaf* component specifications (compositions are
    flattened, justified by Property 12's associativity, which the law
    harness verifies); ``internal`` is ``I(O)`` for the union object set;
    ``combined`` is ``α(Γ) ∪ α(Δ)`` before hiding and ``alphabet`` the
    observable alphabet after hiding.

    ``hidden_pool`` optionally narrows the patterns from which hidden
    candidate events are instantiated (witness search and DFA
    compilation); ``None`` means "use ``combined``".  The normalization
    pipeline's hidden-pool pruning sets it to the combined patterns that
    intersect at least one part alphabet — an event matching *no* part
    alphabet passes no part filter, so inserting it steps every product
    component identically and can never enable a witness.  ``combined``
    itself stays untouched: it defines the alphabet algebra of future
    compositions and the base sorts universes must cover.
    """

    alphabet: Alphabet
    combined: Alphabet
    internal: InternalEvents
    parts: tuple[Part, ...]
    hidden_pool: Alphabet | None = None

    def hidden_source(self) -> Alphabet:
        """The patterns hidden candidate events are instantiated from."""
        return self.combined if self.hidden_pool is None else self.hidden_pool

    def mentioned_values(self) -> frozenset[Value]:
        out = set(self.combined.mentioned_values())
        for part in self.parts:
            out |= part.alphabet.mentioned_values()
            out |= part.machine.mentioned_values()
        return frozenset(out)

    def base_names(self) -> frozenset[str]:
        out = set(self.combined.base_names())
        for part in self.parts:
            out |= part.alphabet.base_names()
        return frozenset(out)

    # -- machine plumbing -------------------------------------------------

    def _machines(self) -> tuple[TraceMachine, ...]:
        return tuple(FilterMachine(p.alphabet, p.machine) for p in self.parts)

    def _initial(self, machines) -> tuple:
        return tuple(m.initial() for m in machines)

    def _step(self, machines, states: tuple, e: Event) -> tuple:
        return tuple(m.step(s, e) for m, s in zip(machines, states))

    def _ok(self, machines, states: tuple) -> bool:
        return all(m.ok(s) for m, s in zip(machines, states))

    # -- candidate internal events ----------------------------------------

    def hidden_candidates(
        self, trace: Trace, extra: Iterable[Value] = ()
    ) -> tuple[Event, ...]:
        """Concrete internal events that could occur in a witness trace.

        Instantiates each pattern of the combined alphabet at each internal
        endpoint pair, with parameters drawn from the representative pool
        (mentioned values + trace values + fresh values per base).
        """
        pool = representative_values(
            self.combined.patterns,
            extra=tuple(trace.values())
            + tuple(sorted(self.mentioned_values(), key=repr))
            + tuple(extra),
        )
        out: list[Event] = []
        seen: set[Event] = set()
        for p in self.hidden_source().patterns:
            for a, b in self.internal.ordered_pairs():
                if not (p.caller.contains(a) and p.callee.contains(b)):
                    continue
                arg_pools: Sequence[Iterable[Value]] = [pool] * len(p.args)
                for e in p.instantiate([a], [b], arg_pools):
                    if e not in seen:
                        seen.add(e)
                        out.append(e)
        return tuple(sorted(out))

    # -- membership ---------------------------------------------------------

    def witness(
        self,
        trace: Trace,
        extra_values: Iterable[Value] = (),
        state_limit: int = 200_000,
    ) -> Trace | None:
        """Find a full trace ``h`` with ``h \\ I = trace`` and valid projections.

        Returns the witness (including hidden events) or ``None`` when no
        witness exists over the candidate pool.  Raises
        :class:`StateSpaceLimitExceeded` if the memoised search would
        exceed ``state_limit`` distinct (position, state) pairs.
        """
        if not self.over_alphabet(trace):
            return None
        machines = self._machines()
        candidates = self.hidden_candidates(trace, extra_values)
        init = self._initial(machines)
        if not self._ok(machines, init):
            return None
        start = (0, _ProductState(init))
        parent: dict[tuple[int, _ProductState], tuple] = {start: None}
        queue: deque[tuple[int, _ProductState]] = deque([start])
        n = len(trace)
        while queue:
            i, ps = queue.popleft()
            if i == n:
                # reconstruct the witness
                events: list[Event] = []
                node = (i, ps)
                while parent[node] is not None:
                    prev, e = parent[node]
                    events.append(e)
                    node = prev
                return Trace(tuple(reversed(events)))
            moves: list[tuple[int, Event]] = [(i + 1, trace[i])]
            moves.extend((i, e) for e in candidates)
            for j, e in moves:
                nxt_states = self._step(machines, ps.states, e)
                if not self._ok(machines, nxt_states):
                    continue
                key = (j, _ProductState(nxt_states))
                if key in parent:
                    continue
                if len(parent) >= state_limit:
                    raise StateSpaceLimitExceeded(
                        f"composition membership search exceeded "
                        f"{state_limit} states",
                        explored=len(parent),
                    )
                parent[key] = ((i, ps), e)
                queue.append(key)
        return None

    def contains(self, trace: Trace) -> bool:
        return self.witness(trace) is not None

    __contains__ = contains

    def __str__(self) -> str:
        return f"T(‖ of {len(self.parts)} parts)"
