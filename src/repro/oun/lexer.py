"""Lexer for the OUN-style specification notation.

The paper defers concrete syntax to the OUN language ("the notation
proposed here can be augmented with further syntactic coating", Section 9);
this package provides that coating.  The lexer produces a flat token
stream with line/column positions for error reporting.

Token kinds: ``ident``, ``int``, ``string`` (double-quoted, used for
embedded trace regexes), punctuation (single characters plus the
multi-character comparators ``<=``, ``>=``, ``!=``), and ``eof``.
Comments run from ``//`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import OUNSyntaxError

__all__ = ["Token", "tokenize"]

_PUNCT2 = ("<=", ">=", "!=")
_PUNCT1 = "{}()<>,.:;=\\|*+?#-_/"


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "ident" | "int" | "string" | punctuation | "eof"
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return self.text or "<eof>"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        start_line, start_col = line, col
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise OUNSyntaxError(
                        "unterminated string literal", start_line, start_col
                    )
                j += 1
            if j >= n:
                raise OUNSyntaxError(
                    "unterminated string literal", start_line, start_col
                )
            text = source[i + 1 : j]
            advance(j + 1 - i)
            tokens.append(Token("string", text, start_line, start_col))
            continue
        if ch.isalpha():
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_'"):
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("ident", text, start_line, start_col))
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("int", text, start_line, start_col))
            continue
        two = source[i : i + 2]
        if two in _PUNCT2:
            advance(2)
            tokens.append(Token(two, two, start_line, start_col))
            continue
        if ch in _PUNCT1:
            advance(1)
            tokens.append(Token(ch, ch, start_line, start_col))
            continue
        raise OUNSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
