"""Parser for the OUN-style notation: token stream → document AST.

The document AST is deliberately dumb — names, not resolved objects; the
elaborator (:mod:`repro.oun.elaborate`) resolves names against declared
sorts/objects and builds core :class:`~repro.core.specification.Specification`
values.

Concrete syntax (see also ``examples/oun_notation.py``)::

    object o
    sort Objects = Obj \\ { o }

    specification Write {
      objects o
      method OW, CW, W(Data)
      alphabet {
        <x, o, OW>   where x : Objects;
        <x, o, CW>   where x : Objects;
        <x, o, W(_)> where x : Objects;
      }
      traces prs "[[<x,o,OW> <x,o,W(_)>* <x,o,CW>] . x : Objects]*"
    }

Trace constraints::

    constraint := conj ('or' conj)*          -- 'or' binds loosest
    conj       := neg ('and' neg)*
    neg        := 'not' neg | prim
    prim       := 'true' | '(' constraint ')'
               | 'prs' STRING                -- embedded regex
               | 'forall' IDENT ':' IDENT '.' prim
               | 'only' IDENT                -- h/x = h
               | linear                      -- e.g.  #OW - #CW <= 1
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import OUNSyntaxError
from repro.oun.lexer import Token, tokenize

__all__ = [
    "parse_document",
    "Document",
    "SpecDecl",
    "SortDecl",
    "AlphabetEntry",
    "MethodDecl",
    "CompositionDecl",
    "Assertion",
    "CTrue",
    "CPrs",
    "CForall",
    "COnly",
    "CLinear",
    "CAnd",
    "COr",
    "CNot",
]


# ----------------------------------------------------------------------
# document AST
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SortDecl:
    name: str
    base: str
    removed: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class MethodDecl:
    name: str
    arg_sorts: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class AlphabetEntry:
    caller: str
    callee: str
    method: str
    args: tuple[str, ...] | None  # None: declared without parentheses
    bindings: tuple[tuple[str, str], ...]  # (var, sort name)


class Constraint:
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class CTrue(Constraint):
    pass


@dataclass(frozen=True, slots=True)
class CPrs(Constraint):
    regex_text: str


@dataclass(frozen=True, slots=True)
class CForall(Constraint):
    var: str
    sort: str
    body: Constraint


@dataclass(frozen=True, slots=True)
class COnly(Constraint):
    name: str


@dataclass(frozen=True, slots=True)
class CLinear(Constraint):
    terms: tuple[tuple[str, int], ...]  # (method, weight)
    op: str  # normalised: <=, <, >=, >, ==, !=
    rhs: int


@dataclass(frozen=True, slots=True)
class CAnd(Constraint):
    parts: tuple[Constraint, ...]


@dataclass(frozen=True, slots=True)
class COr(Constraint):
    parts: tuple[Constraint, ...]


@dataclass(frozen=True, slots=True)
class CNot(Constraint):
    part: Constraint


@dataclass(frozen=True, slots=True)
class SpecDecl:
    name: str
    objects: tuple[str, ...]
    methods: tuple[MethodDecl, ...]
    alphabet: tuple[AlphabetEntry, ...]
    traces: Constraint


@dataclass(frozen=True, slots=True)
class CompositionDecl:
    """``composition Name = A || B || …`` — a named composition."""

    name: str
    parts: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Assertion:
    """``assert A refines B`` / ``assert A equals B`` — a document claim.

    ``negated`` records ``assert not …`` (the paper's own negative claims,
    e.g. "RW does not refine Read2", are first-class this way).
    """

    kind: str  # "refines" | "equals"
    left: str
    right: str
    negated: bool
    line: int = field(compare=False, default=0)


@dataclass(frozen=True, slots=True)
class Document:
    objects: tuple[str, ...]
    sorts: tuple[SortDecl, ...]
    specifications: tuple[SpecDecl, ...]
    compositions: tuple[CompositionDecl, ...] = ()
    assertions: tuple[Assertion, ...] = ()


# ----------------------------------------------------------------------
# the parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.toks = tokenize(text)
        self.i = 0

    def peek(self) -> Token:
        return self.toks[self.i]

    def next(self) -> Token:
        t = self.toks[self.i]
        self.i += 1
        return t

    def error(self, message: str, tok: Token | None = None) -> OUNSyntaxError:
        t = tok or self.peek()
        return OUNSyntaxError(message, t.line, t.column)

    def expect(self, kind: str) -> Token:
        t = self.next()
        if t.kind != kind:
            raise self.error(f"expected {kind!r}, found {t}", t)
        return t

    def keyword(self, word: str) -> Token:
        t = self.next()
        if t.kind != "ident" or t.text != word:
            raise self.error(f"expected keyword {word!r}, found {t}", t)
        return t

    def at_keyword(self, word: str) -> bool:
        t = self.peek()
        return t.kind == "ident" and t.text == word

    # -- document --------------------------------------------------------

    def document(self) -> Document:
        objects: list[str] = []
        sorts: list[SortDecl] = []
        specs: list[SpecDecl] = []
        comps: list[CompositionDecl] = []
        asserts: list[Assertion] = []
        while self.peek().kind != "eof":
            if self.at_keyword("object"):
                self.next()
                objects.append(self.expect("ident").text)
                while self.peek().kind == ",":
                    self.next()
                    objects.append(self.expect("ident").text)
            elif self.at_keyword("sort"):
                sorts.append(self.sort_decl())
            elif self.at_keyword("specification"):
                specs.append(self.spec_decl())
            elif self.at_keyword("composition"):
                comps.append(self.composition_decl())
            elif self.at_keyword("assert"):
                asserts.append(self.assertion())
            else:
                raise self.error(
                    f"expected 'object', 'sort', 'specification', "
                    f"'composition', or 'assert', found {self.peek()}"
                )
        return Document(
            tuple(objects), tuple(sorts), tuple(specs), tuple(comps),
            tuple(asserts),
        )

    def composition_decl(self) -> CompositionDecl:
        self.keyword("composition")
        name = self.expect("ident").text
        self.expect("=")
        parts = [self.expect("ident").text]
        while self.peek().kind == "|":
            self.next()
            self.expect("|")
            parts.append(self.expect("ident").text)
        if len(parts) < 2:
            raise self.error("composition needs at least two parts (A || B)")
        return CompositionDecl(name, tuple(parts))

    def assertion(self) -> Assertion:
        tok = self.keyword("assert")
        negated = False
        if self.at_keyword("not"):
            self.next()
            negated = True
        left = self.expect("ident").text
        kw = self.expect("ident")
        if kw.text not in ("refines", "equals"):
            raise self.error(
                f"expected 'refines' or 'equals', found {kw}", kw
            )
        right = self.expect("ident").text
        return Assertion(kw.text, left, right, negated, tok.line)

    def sort_decl(self) -> SortDecl:
        self.keyword("sort")
        name = self.expect("ident").text
        self.expect("=")
        base = self.expect("ident").text
        removed: list[str] = []
        if self.peek().kind == "\\":
            self.next()
            self.expect("{")
            removed.append(self.expect("ident").text)
            while self.peek().kind == ",":
                self.next()
                removed.append(self.expect("ident").text)
            self.expect("}")
        return SortDecl(name, base, tuple(removed))

    # -- specification -----------------------------------------------------

    def spec_decl(self) -> SpecDecl:
        self.keyword("specification")
        name = self.expect("ident").text
        self.expect("{")
        objects: list[str] = []
        methods: list[MethodDecl] = []
        entries: list[AlphabetEntry] = []
        traces: Constraint = CTrue()
        saw_alphabet = False
        while self.peek().kind != "}":
            if self.at_keyword("objects"):
                self.next()
                objects.append(self.expect("ident").text)
                while self.peek().kind == ",":
                    self.next()
                    objects.append(self.expect("ident").text)
            elif self.at_keyword("method"):
                self.next()
                methods.append(self.method_sig())
                while self.peek().kind == ",":
                    self.next()
                    methods.append(self.method_sig())
            elif self.at_keyword("alphabet"):
                self.next()
                saw_alphabet = True
                self.expect("{")
                while self.peek().kind != "}":
                    entries.append(self.alphabet_entry())
                self.expect("}")
            elif self.at_keyword("traces"):
                self.next()
                traces = self.constraint()
            else:
                raise self.error(
                    f"expected 'objects', 'method', 'alphabet', or 'traces', "
                    f"found {self.peek()}"
                )
        self.expect("}")
        if not objects:
            raise self.error(f"specification {name!r} declares no objects")
        if not saw_alphabet:
            raise self.error(f"specification {name!r} declares no alphabet")
        return SpecDecl(name, tuple(objects), tuple(methods), tuple(entries), traces)

    def method_sig(self) -> MethodDecl:
        name = self.expect("ident").text
        args: list[str] = []
        if self.peek().kind == "(":
            self.next()
            if self.peek().kind != ")":
                args.append(self.expect("ident").text)
                while self.peek().kind == ",":
                    self.next()
                    args.append(self.expect("ident").text)
            self.expect(")")
        return MethodDecl(name, tuple(args))

    def alphabet_entry(self) -> AlphabetEntry:
        self.expect("<")
        caller = self.expect("ident").text
        self.expect(",")
        callee = self.expect("ident").text
        self.expect(",")
        method = self.expect("ident").text
        args: tuple[str, ...] | None = None
        if self.peek().kind == "(":
            self.next()
            got: list[str] = []
            if self.peek().kind != ")":
                got.append(self.position_name())
                while self.peek().kind == ",":
                    self.next()
                    got.append(self.position_name())
            self.expect(")")
            args = tuple(got)
        self.expect(">")
        bindings: list[tuple[str, str]] = []
        if self.at_keyword("where"):
            self.next()
            bindings.append(self.binding())
            while self.peek().kind == ",":
                self.next()
                bindings.append(self.binding())
        if self.peek().kind == ";":
            self.next()
        return AlphabetEntry(caller, callee, method, args, tuple(bindings))

    def position_name(self) -> str:
        t = self.next()
        if t.kind == "_":
            return "_"
        if t.kind == "ident":
            return t.text
        raise self.error(f"expected a position name or '_', found {t}", t)

    def binding(self) -> tuple[str, str]:
        var = self.expect("ident").text
        self.expect(":")
        sort = self.expect("ident").text
        return (var, sort)

    # -- constraints ----------------------------------------------------------

    def constraint(self) -> Constraint:
        parts = [self.conj()]
        while self.at_keyword("or"):
            self.next()
            parts.append(self.conj())
        return parts[0] if len(parts) == 1 else COr(tuple(parts))

    def conj(self) -> Constraint:
        parts = [self.neg()]
        while self.at_keyword("and"):
            self.next()
            parts.append(self.neg())
        return parts[0] if len(parts) == 1 else CAnd(tuple(parts))

    def neg(self) -> Constraint:
        if self.at_keyword("not"):
            self.next()
            return CNot(self.neg())
        return self.prim()

    def prim(self) -> Constraint:
        t = self.peek()
        if self.at_keyword("true"):
            self.next()
            return CTrue()
        if t.kind == "(":
            self.next()
            inner = self.constraint()
            self.expect(")")
            return inner
        if self.at_keyword("prs"):
            self.next()
            s = self.expect("string")
            return CPrs(s.text)
        if self.at_keyword("forall"):
            self.next()
            var = self.expect("ident").text
            self.expect(":")
            sort = self.expect("ident").text
            self.expect(".")
            return CForall(var, sort, self.prim())
        if self.at_keyword("only"):
            self.next()
            return COnly(self.expect("ident").text)
        if t.kind == "#":
            return self.linear()
        raise self.error(f"expected a trace constraint, found {t}", t)

    def linear(self) -> Constraint:
        terms: list[tuple[str, int]] = []
        sign = 1
        while True:
            self.expect("#")
            method = self.expect("ident").text
            terms.append((method, sign))
            t = self.peek()
            if t.kind == "+":
                sign = 1
                self.next()
            elif t.kind == "-":
                sign = -1
                self.next()
            else:
                break
        t = self.next()
        ops = {"<=": "<=", ">=": ">=", "<": "<", ">": ">", "=": "==", "!=": "!="}
        if t.kind not in ops:
            raise self.error(f"expected a comparison operator, found {t}", t)
        op = ops[t.kind]
        neg_rhs = False
        if self.peek().kind == "-":
            self.next()
            neg_rhs = True
        rhs_tok = self.expect("int")
        rhs = int(rhs_tok.text) * (-1 if neg_rhs else 1)
        return CLinear(tuple(terms), op, rhs)


def parse_document(text: str) -> Document:
    """Parse an OUN document into its AST."""
    p = _Parser(text)
    return p.document()
