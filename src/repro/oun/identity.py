"""Stable per-node identity for incremental elaboration.

The incremental build graph (:mod:`repro.pipeline`) re-elaborates only
the document nodes whose *inputs* changed.  Elaborated machines cannot
be fingerprinted — ``ForallMachine`` wraps instantiation closures — so
stage keys are derived from the **AST** instead: every key is the
structural fingerprint (:func:`repro.checker.fingerprint.fingerprint`)
of the declaration node plus the global scope it elaborates under.

* a ``specification`` block's key covers the block and the document's
  ``object``/``sort`` prelude (the only global state elaboration reads);
* a ``composition``'s key covers its declaration plus the keys of the
  parts it composes, so an edit anywhere below propagates upward;
* the parse key is simply the document text's SHA-256.

Two documents that spell a node identically therefore share its key
even across edits elsewhere in the file — which is exactly the reuse
the paper's local-composition story promises.
"""

from __future__ import annotations

import hashlib

from repro.checker.fingerprint import fingerprint
from repro.oun.parser import CompositionDecl, Document, SpecDecl

__all__ = [
    "scope_signature",
    "spec_node_key",
    "composition_node_key",
    "document_node_keys",
    "parse_key",
]

#: Salts versioning the key derivations; bump when the covered inputs
#: change shape so stale memo entries cannot be misattributed.
_SPEC_SALT = "oun-spec-node/1"
_COMPOSITION_SALT = "oun-composition-node/1"


def scope_signature(doc: Document) -> tuple:
    """The part of a document every elaboration reads: objects + sorts."""
    return (doc.objects, doc.sorts)


def spec_node_key(signature: tuple, decl: SpecDecl) -> str:
    """Stable identity of one ``specification`` block under a scope."""
    return fingerprint((_SPEC_SALT, signature, decl))


def composition_node_key(
    signature: tuple, comp: CompositionDecl, part_keys: tuple
) -> str:
    """Identity of a ``composition``: its declaration plus its parts' keys."""
    return fingerprint((_COMPOSITION_SALT, signature, comp.name, part_keys))


def document_node_keys(doc: Document) -> dict[str, str]:
    """Node key for every named declaration, in declaration order.

    Compositions may reference earlier compositions; their keys chain
    through ``part_keys`` so any transitive edit changes the key.  A
    part name that resolves to nothing keys as ``("unresolved", name)``
    — elaboration will reject the document, but the keys stay total.
    """
    signature = scope_signature(doc)
    keys: dict[str, str] = {}
    for decl in doc.specifications:
        keys[decl.name] = spec_node_key(signature, decl)
    for comp in doc.compositions:
        part_keys = tuple(
            keys.get(name, ("unresolved", name)) for name in comp.parts
        )
        keys[comp.name] = composition_node_key(signature, comp, part_keys)
    return keys


def parse_key(text: str) -> str:
    """Memo key of the parse stage: the raw document text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
