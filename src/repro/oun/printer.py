"""Pretty-printer for OUN documents: AST → canonical source text.

``format_document(parse_document(text))`` produces a canonically laid-out
document that parses back to the *same AST* — the round-trip property the
test suite checks.  Useful as a formatter (``python -m repro parse FILE
--format``) and for generating documents programmatically.
"""

from __future__ import annotations

from repro.oun.parser import (
    AlphabetEntry,
    Assertion,
    CAnd,
    CForall,
    CLinear,
    CNot,
    COnly,
    COr,
    CPrs,
    CTrue,
    CompositionDecl,
    Constraint,
    Document,
    MethodDecl,
    SortDecl,
    SpecDecl,
)

__all__ = ["format_document", "format_constraint"]


def _format_sort(decl: SortDecl) -> str:
    if decl.removed:
        inner = ", ".join(decl.removed)
        return f"sort {decl.name} = {decl.base} \\ {{ {inner} }}"
    return f"sort {decl.name} = {decl.base}"


def _format_method(decl: MethodDecl) -> str:
    if decl.arg_sorts:
        return f"{decl.name}({', '.join(decl.arg_sorts)})"
    return decl.name


def _format_entry(entry: AlphabetEntry) -> str:
    call = entry.method
    if entry.args is not None:
        call += f"({', '.join(entry.args)})"
    text = f"<{entry.caller}, {entry.callee}, {call}>"
    if entry.bindings:
        binds = ", ".join(f"{v} : {s}" for v, s in entry.bindings)
        text += f" where {binds}"
    return text + ";"


def format_constraint(node: Constraint, parenthesise: bool = False) -> str:
    """Render a trace constraint in parseable concrete syntax."""
    if isinstance(node, CTrue):
        return "true"
    if isinstance(node, CPrs):
        return f'prs "{node.regex_text}"'
    if isinstance(node, CForall):
        body = format_constraint(node.body, parenthesise=True)
        text = f"forall {node.var} : {node.sort} . {body}"
    elif isinstance(node, COnly):
        return f"only {node.name}"
    elif isinstance(node, CLinear):
        # The concrete syntax writes weights as +/- separators with an
        # (implicitly positive) leading term, so reorder a positive term
        # to the front; other weight shapes are not expressible.
        terms = list(node.terms)
        if any(abs(w) != 1 for _, w in terms):
            raise TypeError(f"count term weights beyond ±1 not printable: {node}")
        positives = [t for t in terms if t[1] > 0]
        if not positives:
            raise TypeError(f"all-negative count constraint not printable: {node}")
        terms.remove(positives[0])
        terms.insert(0, positives[0])
        lhs = f"#{terms[0][0]}"
        for method, weight in terms[1:]:
            lhs += f" {'+' if weight > 0 else '-'} #{method}"
        op = "=" if node.op == "==" else node.op
        text = f"{lhs} {op} {node.rhs}"
    elif isinstance(node, CAnd):
        text = " and ".join(
            format_constraint(p, parenthesise=True) for p in node.parts
        )
    elif isinstance(node, COr):
        text = " or ".join(
            format_constraint(p, parenthesise=True) for p in node.parts
        )
    elif isinstance(node, CNot):
        return f"not {format_constraint(node.part, parenthesise=True)}"
    else:
        raise TypeError(f"unknown constraint node {node!r}")
    if parenthesise and isinstance(node, (CAnd, COr, CForall, CLinear)):
        return f"({text})"
    return text


def _format_spec(spec: SpecDecl) -> str:
    lines = [f"specification {spec.name} {{"]
    lines.append(f"  objects {', '.join(spec.objects)}")
    if spec.methods:
        lines.append(
            f"  method {', '.join(_format_method(m) for m in spec.methods)}"
        )
    lines.append("  alphabet {")
    for entry in spec.alphabet:
        lines.append(f"    {_format_entry(entry)}")
    lines.append("  }")
    lines.append(f"  traces {format_constraint(spec.traces)}")
    lines.append("}")
    return "\n".join(lines)


def _format_composition(decl: CompositionDecl) -> str:
    return f"composition {decl.name} = {' || '.join(decl.parts)}"


def _format_assertion(decl: Assertion) -> str:
    neg = "not " if decl.negated else ""
    return f"assert {neg}{decl.left} {decl.kind} {decl.right}"


def format_document(doc: Document) -> str:
    """Render a whole document (see module docstring)."""
    blocks: list[str] = []
    if doc.objects:
        blocks.append(f"object {', '.join(doc.objects)}")
    for sort in doc.sorts:
        blocks.append(_format_sort(sort))
    for spec in doc.specifications:
        blocks.append("")
        blocks.append(_format_spec(spec))
    if doc.compositions:
        blocks.append("")
        for comp in doc.compositions:
            blocks.append(_format_composition(comp))
    if doc.assertions:
        blocks.append("")
        for a in doc.assertions:
            blocks.append(_format_assertion(a))
    return "\n".join(blocks).strip() + "\n"
