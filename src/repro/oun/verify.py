"""Verifying OUN document assertions.

An OUN document may state its development claims next to its
specifications::

    assert Read2 refines Read
    assert not RW refines Read2
    composition System = Client || WriteAcc
    assert System equals OKStream

``verify_document`` elaborates the document and discharges every
assertion with the checker, returning one outcome per assertion — the
same develop-and-check loop the paper envisions for OUN, in one file.

:func:`assertion_obligations` and :func:`query_obligations` expose the
same checks as :class:`~repro.checker.obligations.Obligation` lists, in
the picklable module-level-factory form the parallel obligation engine
(:mod:`repro.checker.engine`) requires: the CLI hands the engine a
``"repro.oun.verify:assertion_obligations"`` source plus the document
text, and every worker re-elaborates the document for itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.checker.equality import specs_equal, trace_sets_equal
from repro.checker.obligations import Obligation
from repro.checker.refinement import check_refinement
from repro.checker.result import CheckResult
from repro.checker.universe import FiniteUniverse
from repro.core.errors import OUNElaborationError, ReproError
from repro.core.specification import Specification
from repro.oun.parser import Assertion, Document, parse_document

__all__ = [
    "AssertionOutcome",
    "verify_document",
    "verify_text",
    "assertion_obligations",
    "query_obligations",
]


@dataclass(frozen=True, slots=True)
class AssertionOutcome:
    """One discharged assertion."""

    assertion: Assertion
    result: CheckResult
    passed: bool

    def describe(self) -> str:
        a = self.assertion
        neg = "not " if a.negated else ""
        status = "ok" if self.passed else "FAILED"
        return (
            f"assert {neg}{a.left} {a.kind} {a.right} "
            f"(line {a.line}): {status} — {self.result.explain()}"
        )


def _discharge(
    assertion: Assertion,
    specs: dict[str, Specification],
    env_objects: int,
    data_values: int,
    strategy: str,
) -> AssertionOutcome:
    left = specs.get(assertion.left)
    right = specs.get(assertion.right)
    missing = [
        name
        for name, spec in ((assertion.left, left), (assertion.right, right))
        if spec is None
    ]
    if missing:
        raise OUNElaborationError(
            f"assertion on line {assertion.line}: unknown specification(s) "
            f"{', '.join(repr(m) for m in missing)}"
        )
    universe = FiniteUniverse.for_specs(
        left, right, env_objects=env_objects, data_values=data_values
    )
    if assertion.kind == "refines":
        result = check_refinement(left, right, universe, strategy=strategy)
    else:
        result = trace_sets_equal(left, right, universe)
    passed = result.holds != assertion.negated
    return AssertionOutcome(assertion, result, passed)


def verify_document(
    doc: Document,
    specs: dict[str, Specification] | None = None,
    env_objects: int = 2,
    data_values: int = 1,
    strategy: str = "auto",
) -> list[AssertionOutcome]:
    """Discharge every assertion of an (already parsed) document."""
    if specs is None:
        from repro.oun.elaborate import elaborate

        specs = elaborate(doc)
    return [
        _discharge(a, specs, env_objects, data_values, strategy)
        for a in doc.assertions
    ]


def verify_text(
    text: str,
    env_objects: int = 2,
    data_values: int = 1,
    strategy: str = "auto",
) -> list[AssertionOutcome]:
    """Parse, elaborate, and verify an OUN document in one step."""
    return verify_document(
        parse_document(text),
        env_objects=env_objects,
        data_values=data_values,
        strategy=strategy,
    )


# ----------------------------------------------------------------------
# obligation factories (parallel-engine entry points)
# ----------------------------------------------------------------------


def _elaborate_text(text: str) -> dict[str, Specification]:
    from repro.oun.elaborate import elaborate

    return elaborate(parse_document(text))


def _pick_spec(specs: dict[str, Specification], name: str) -> Specification:
    spec = specs.get(name)
    if spec is None:
        known = ", ".join(sorted(specs))
        raise ReproError(f"no specification named {name!r} (have: {known})")
    return spec


def _query_check(
    specs: dict[str, Specification],
    kind: str,
    left_name: str,
    right_name: str,
    env_objects: int,
    data_values: int,
    strategy: str,
    depth: int,
):
    left = _pick_spec(specs, left_name)
    right = _pick_spec(specs, right_name)
    universe = FiniteUniverse.for_specs(
        left, right, env_objects=env_objects, data_values=data_values
    )
    if kind == "refines":
        return lambda: check_refinement(
            left, right, universe, strategy=strategy, depth=depth
        )
    if kind == "equal":
        return lambda: specs_equal(left, right, universe)
    raise ReproError(f"unknown query kind {kind!r}")


def query_obligations(
    text: str,
    queries: Sequence[Sequence[str]],
    env_objects: int = 2,
    data_values: int = 1,
    strategy: str = "auto",
    depth: int = 8,
) -> list[Obligation]:
    """Obligations for explicit queries over an OUN document.

    ``queries`` is a sequence of ``(kind, left, right)`` triples with
    ``kind`` one of ``"refines"`` / ``"equal"`` — the shape of the CLI's
    ``check --refines A B`` / ``--equal A B`` flags.  Unknown
    specification names raise immediately (so the engine's parent-side
    build fails before any worker is spawned).
    """
    specs = _elaborate_text(text)
    obligations = []
    for i, (kind, left, right) in enumerate(queries, start=1):
        symbol = "⊑" if kind == "refines" else "≡"
        obligations.append(
            Obligation(
                ident=f"Q{i}",
                title=f"{left} {symbol} {right}",
                check=_query_check(
                    specs, kind, left, right,
                    env_objects, data_values, strategy, depth,
                ),
                expected=True,
                source=f"query {kind} {left} {right}",
            )
        )
    return obligations


def assertion_obligations(
    text: str,
    env_objects: int = 2,
    data_values: int = 1,
    strategy: str = "auto",
) -> list[Obligation]:
    """One obligation per ``assert`` line of an OUN document.

    Obligations appear in document order, so engine outcomes zip
    positionally with ``parse_document(text).assertions``.  A negated
    assertion becomes an ``expected=False`` obligation — agreement then
    demands an explicit refutation, exactly like the claims suite's
    deliberate non-examples.
    """
    doc = parse_document(text)
    from repro.oun.elaborate import elaborate

    specs = elaborate(doc)
    obligations = []
    for i, a in enumerate(doc.assertions, start=1):
        left = _pick_spec(specs, a.left)
        right = _pick_spec(specs, a.right)
        universe = FiniteUniverse.for_specs(
            left, right, env_objects=env_objects, data_values=data_values
        )
        if a.kind == "refines":
            check = (
                lambda l=left, r=right, u=universe: check_refinement(
                    l, r, u, strategy=strategy
                )
            )
            symbol = "⊑"
        else:
            check = lambda l=left, r=right, u=universe: trace_sets_equal(l, r, u)
            symbol = "≡"
        neg = "¬ " if a.negated else ""
        obligations.append(
            Obligation(
                ident=f"A{i}",
                title=f"{neg}{a.left} {symbol} {a.right}",
                check=check,
                expected=not a.negated,
                source=f"line {a.line}",
            )
        )
    return obligations
