"""Verifying OUN document assertions.

An OUN document may state its development claims next to its
specifications::

    assert Read2 refines Read
    assert not RW refines Read2
    composition System = Client || WriteAcc
    assert System equals OKStream

``verify_document`` elaborates the document and discharges every
assertion with the checker, returning one outcome per assertion — the
same develop-and-check loop the paper envisions for OUN, in one file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checker.equality import trace_sets_equal
from repro.checker.refinement import check_refinement
from repro.checker.result import CheckResult
from repro.checker.universe import FiniteUniverse
from repro.core.errors import OUNElaborationError
from repro.core.specification import Specification
from repro.oun.parser import Assertion, Document, parse_document

__all__ = ["AssertionOutcome", "verify_document", "verify_text"]


@dataclass(frozen=True, slots=True)
class AssertionOutcome:
    """One discharged assertion."""

    assertion: Assertion
    result: CheckResult
    passed: bool

    def describe(self) -> str:
        a = self.assertion
        neg = "not " if a.negated else ""
        status = "ok" if self.passed else "FAILED"
        return (
            f"assert {neg}{a.left} {a.kind} {a.right} "
            f"(line {a.line}): {status} — {self.result.explain()}"
        )


def _discharge(
    assertion: Assertion,
    specs: dict[str, Specification],
    env_objects: int,
    data_values: int,
    strategy: str,
) -> AssertionOutcome:
    left = specs.get(assertion.left)
    right = specs.get(assertion.right)
    missing = [
        name
        for name, spec in ((assertion.left, left), (assertion.right, right))
        if spec is None
    ]
    if missing:
        raise OUNElaborationError(
            f"assertion on line {assertion.line}: unknown specification(s) "
            f"{', '.join(repr(m) for m in missing)}"
        )
    universe = FiniteUniverse.for_specs(
        left, right, env_objects=env_objects, data_values=data_values
    )
    if assertion.kind == "refines":
        result = check_refinement(left, right, universe, strategy=strategy)
    else:
        result = trace_sets_equal(left, right, universe)
    passed = result.holds != assertion.negated
    return AssertionOutcome(assertion, result, passed)


def verify_document(
    doc: Document,
    specs: dict[str, Specification] | None = None,
    env_objects: int = 2,
    data_values: int = 1,
    strategy: str = "auto",
) -> list[AssertionOutcome]:
    """Discharge every assertion of an (already parsed) document."""
    if specs is None:
        from repro.oun.elaborate import elaborate

        specs = elaborate(doc)
    return [
        _discharge(a, specs, env_objects, data_values, strategy)
        for a in doc.assertions
    ]


def verify_text(
    text: str,
    env_objects: int = 2,
    data_values: int = 1,
    strategy: str = "auto",
) -> list[AssertionOutcome]:
    """Parse, elaborate, and verify an OUN document in one step."""
    return verify_document(
        parse_document(text),
        env_objects=env_objects,
        data_values=data_values,
        strategy=strategy,
    )
