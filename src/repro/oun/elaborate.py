"""Elaboration: OUN document AST → core specifications.

Resolves declared names (objects, sorts, methods), builds symbolic
alphabets from the ``alphabet`` entries, and compiles ``traces``
constraints to trace machines:

* ``prs "…"``  → :class:`~repro.machines.regex.machine.PrsMachine`
  (the embedded regex is parsed with the specification's symbol/method
  tables and the enclosing ``forall`` variables as free variables);
* ``forall x : S . P``  → :class:`~repro.machines.quantifier.ForallMachine`;
* ``only x``  → :class:`~repro.machines.projection.OnlyMachine`
  (the paper's ``h/x = h``);
* linear count constraints → one-counter
  :class:`~repro.machines.counting.CountingMachine` (the weighted-sum
  counter keeps reachable state spaces finite, see that module);
* ``and`` / ``or`` / ``not`` / ``true``  → boolean machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.composition import compose
from repro.core.errors import CompositionError, OUNElaborationError
from repro.core.events import Event
from repro.core.patterns import EventPattern
from repro.core.sorts import DATA, OBJ, Sort
from repro.core.specification import Specification, component_spec
from repro.core.values import ObjectId, Value
from repro.machines.base import TraceMachine
from repro.machines.boolean import AndMachine, NotMachine, OrMachine, TrueMachine
from repro.machines.counting import CounterDef, CountingMachine, Linear
from repro.machines.projection import OnlyMachine
from repro.machines.quantifier import ForallMachine
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex
from repro.obs.trace import span
from repro.oun.parser import (
    AlphabetEntry,
    CAnd,
    CForall,
    CLinear,
    CNot,
    COnly,
    COr,
    CPrs,
    CTrue,
    Document,
    SpecDecl,
    parse_document,
)

__all__ = [
    "elaborate",
    "load_specifications",
    "InvolvesFilter",
    "document_scope",
    "elaborate_spec_decl",
    "elaborate_composition",
]


@dataclass(frozen=True, slots=True)
class InvolvesFilter:
    """The events involving a fixed object — the ``S`` of ``h/S = h``."""

    value: ObjectId

    def contains(self, e: Event) -> bool:
        return e.involves(self.value)

    def mentioned_values(self) -> frozenset[Value]:
        return frozenset((self.value,))

    def __repr__(self) -> str:
        return f"InvolvesFilter({self.value})"


class _Scope:
    """Resolved global declarations of a document."""

    def __init__(self, doc: Document) -> None:
        self.objects: dict[str, ObjectId] = {
            name: ObjectId(name) for name in doc.objects
        }
        self.sorts: dict[str, Sort] = {"Obj": OBJ, "Data": DATA}
        for decl in doc.sorts:
            base = self.sorts.get(decl.base)
            if base is None:
                raise OUNElaborationError(
                    f"sort {decl.name!r}: unknown base sort {decl.base!r}"
                )
            removed = []
            for name in decl.removed:
                o = self.objects.get(name)
                if o is None:
                    raise OUNElaborationError(
                        f"sort {decl.name!r}: unknown object {name!r}"
                    )
                removed.append(o)
            if decl.name in self.sorts:
                raise OUNElaborationError(f"sort {decl.name!r} redeclared")
            self.sorts[decl.name] = base.without(*removed)

    def symbols(self) -> dict:
        table: dict = dict(self.sorts)
        table.update(self.objects)
        return table


def _resolve_sort(scope: _Scope, name: str, context: str) -> Sort:
    sort = scope.sorts.get(name)
    if sort is None:
        raise OUNElaborationError(f"{context}: unknown sort {name!r}")
    return sort


def _entry_pattern(
    scope: _Scope, spec: SpecDecl, entry: AlphabetEntry, sigs: dict
) -> EventPattern:
    bindings = dict(entry.bindings)

    def resolve_endpoint(name: str) -> Sort:
        if name in bindings:
            return _resolve_sort(scope, bindings[name], f"binding {name!r}")
        if name in scope.objects:
            return Sort.values(scope.objects[name])
        if name in scope.sorts:
            return scope.sorts[name]
        raise OUNElaborationError(
            f"alphabet of {spec.name!r}: unresolved endpoint {name!r}"
        )

    caller = resolve_endpoint(entry.caller)
    callee = resolve_endpoint(entry.callee)
    sig = sigs.get(entry.method)
    if sig is None:
        raise OUNElaborationError(
            f"alphabet of {spec.name!r}: undeclared method {entry.method!r}"
        )
    declared = entry.args if entry.args is not None else ("_",) * len(sig)
    if len(declared) != len(sig):
        raise OUNElaborationError(
            f"alphabet of {spec.name!r}: method {entry.method!r} has "
            f"{len(sig)} parameter(s), entry supplies {len(declared)}"
        )
    args: list[Sort] = []
    for pos, arg_sort in zip(declared, sig):
        if pos == "_":
            args.append(arg_sort)
        elif pos in bindings:
            bound = _resolve_sort(scope, bindings[pos], f"binding {pos!r}")
            args.append(bound.intersection(arg_sort))
        elif pos in scope.objects:
            args.append(Sort.values(scope.objects[pos]))
        elif pos in scope.sorts:
            args.append(scope.sorts[pos].intersection(arg_sort))
        else:
            raise OUNElaborationError(
                f"alphabet of {spec.name!r}: unresolved argument {pos!r}"
            )
    return EventPattern(caller, callee, entry.method, tuple(args))


def _build_machine(
    scope: _Scope,
    spec: SpecDecl,
    node,
    sigs: dict,
    free_sorts: dict[str, Sort],
    free_env: dict[str, Value],
) -> TraceMachine:
    if isinstance(node, CTrue):
        return TrueMachine()
    if isinstance(node, CPrs):
        regex = parse_regex(
            node.regex_text,
            symbols=scope.symbols(),
            methods=sigs,
            free_vars=free_sorts,
        )
        return PrsMachine(regex, free_domains=free_sorts, free_env=free_env)
    if isinstance(node, CForall):
        sort = _resolve_sort(scope, node.sort, f"forall {node.var}")
        if node.var in free_sorts:
            raise OUNElaborationError(
                f"forall variable {node.var!r} shadows an enclosing binding"
            )
        inner_sorts = dict(free_sorts)
        inner_sorts[node.var] = sort

        def factory(v: Value) -> TraceMachine:
            env = dict(free_env)
            env[node.var] = v
            return _build_machine(scope, spec, node.body, sigs, inner_sorts, env)

        return ForallMachine(sort, factory)
    if isinstance(node, COnly):
        o = scope.objects.get(node.name)
        if o is None:
            raise OUNElaborationError(
                f"'only {node.name}': unknown object {node.name!r}"
            )
        return OnlyMachine(InvolvesFilter(o))
    if isinstance(node, CLinear):
        counter = CounterDef(node.terms)
        return CountingMachine((counter,), Linear((1,), -node.rhs, node.op))
    if isinstance(node, CAnd):
        return AndMachine(
            tuple(
                _build_machine(scope, spec, p, sigs, free_sorts, free_env)
                for p in node.parts
            )
        )
    if isinstance(node, COr):
        return OrMachine(
            tuple(
                _build_machine(scope, spec, p, sigs, free_sorts, free_env)
                for p in node.parts
            )
        )
    if isinstance(node, CNot):
        return NotMachine(
            _build_machine(scope, spec, node.part, sigs, free_sorts, free_env)
        )
    raise OUNElaborationError(f"unknown constraint node {node!r}")


def document_scope(doc: Document) -> _Scope:
    """Resolve a document's global declarations (objects, sorts).

    The scope is the only global state ``specification`` elaboration
    reads; :mod:`repro.pipeline` keys its memo entries on the scope's
    AST signature (:func:`repro.oun.identity.scope_signature`) so a
    cached scope and a freshly built one are interchangeable.
    """
    return _Scope(doc)


def elaborate_spec_decl(
    scope: _Scope, spec: SpecDecl, *, normalize: bool = True
) -> Specification:
    """Elaborate one ``specification`` block into a component spec.

    With ``normalize=False`` the machine is emitted exactly as the
    document spelled it — the incremental pipeline uses this to keep
    the elaborate and normalize stages separately memoizable.
    """
    objects = []
    for name in spec.objects:
        o = scope.objects.get(name)
        if o is None:
            raise OUNElaborationError(
                f"specification {spec.name!r}: undeclared object {name!r}"
            )
        objects.append(o)
    sigs: dict[str, tuple[Sort, ...]] = {}
    for m in spec.methods:
        if m.name in sigs:
            raise OUNElaborationError(
                f"specification {spec.name!r}: method {m.name!r} redeclared"
            )
        sigs[m.name] = tuple(
            _resolve_sort(scope, s, f"method {m.name!r}") for s in m.arg_sorts
        )
    alphabet = Alphabet.of(
        *(_entry_pattern(scope, spec, e, sigs) for e in spec.alphabet)
    )
    machine = _build_machine(scope, spec, spec.traces, sigs, {}, {})
    if normalize:
        # Emit through the normalization pipeline: elaboration builds
        # whatever shape the document spelled (nested renames, True
        # conjuncts); downstream layers should see the canonical form.
        # Respects the ambient use_normalization toggle.
        from repro.passes import normalize_machine

        machine = normalize_machine(machine)
        if isinstance(machine, TrueMachine):
            return component_spec(spec.name, objects, alphabet)
    return component_spec(spec.name, objects, alphabet, machine)


def _elaborate_spec(scope: _Scope, spec: SpecDecl) -> Specification:
    return elaborate_spec_decl(scope, spec)


def elaborate_composition(out: dict[str, Specification], comp) -> Specification:
    """Build one named composition from already-elaborated parts."""
    parts = []
    for part_name in comp.parts:
        part = out.get(part_name)
        if part is None:
            raise OUNElaborationError(
                f"composition {comp.name!r}: unknown specification "
                f"{part_name!r}"
            )
        parts.append(part)
    try:
        built = parts[0]
        for part in parts[1:]:
            built = compose(built, part)
    except CompositionError as exc:
        raise OUNElaborationError(
            f"composition {comp.name!r}: {exc}"
        ) from exc
    return Specification(
        comp.name, built.objects, built.alphabet, built.traces
    )


_elaborate_composition = elaborate_composition


def elaborate(doc: Document) -> dict[str, Specification]:
    """Resolve a document into named core specifications.

    Named compositions (``composition C = A || B``) are built after all
    ``specification`` blocks and may reference earlier compositions; the
    composability check of Definition 10 applies and failures surface as
    :class:`OUNElaborationError`.
    """
    with span(
        "elaborate",
        specs=len(doc.specifications),
        compositions=len(doc.compositions),
    ):
        scope = _Scope(doc)
        out: dict[str, Specification] = {}
        for spec in doc.specifications:
            if spec.name in out:
                raise OUNElaborationError(
                    f"specification {spec.name!r} redeclared"
                )
            with span("elaborate.spec", name=spec.name):
                out[spec.name] = _elaborate_spec(scope, spec)
        for comp in doc.compositions:
            if comp.name in out:
                raise OUNElaborationError(
                    f"composition {comp.name!r} redeclares an existing name"
                )
            with span("elaborate.composition", name=comp.name):
                out[comp.name] = _elaborate_composition(out, comp)
        return out


def load_specifications(text: str) -> dict[str, Specification]:
    """Parse and elaborate an OUN document in one step."""
    return elaborate(parse_document(text))
