"""OUN-style textual notation for specifications (the paper's "syntactic
coating"): lexer, parser, and elaborator to core specifications."""

from repro.oun.elaborate import (
    InvolvesFilter,
    document_scope,
    elaborate,
    elaborate_composition,
    elaborate_spec_decl,
    load_specifications,
)
from repro.oun.identity import (
    composition_node_key,
    document_node_keys,
    parse_key,
    scope_signature,
    spec_node_key,
)
from repro.oun.lexer import Token, tokenize
from repro.oun.parser import (
    Assertion,
    CompositionDecl,
    Document,
    SpecDecl,
    parse_document,
)
from repro.oun.printer import format_constraint, format_document
from repro.oun.verify import AssertionOutcome, verify_document, verify_text

__all__ = [
    "InvolvesFilter",
    "document_scope",
    "elaborate",
    "elaborate_composition",
    "elaborate_spec_decl",
    "load_specifications",
    "composition_node_key",
    "document_node_keys",
    "parse_key",
    "scope_signature",
    "spec_node_key",
    "Token",
    "tokenize",
    "Assertion",
    "CompositionDecl",
    "Document",
    "SpecDecl",
    "parse_document",
    "format_constraint",
    "format_document",
    "AssertionOutcome",
    "verify_document",
    "verify_text",
]
