"""OUN-style textual notation for specifications (the paper's "syntactic
coating"): lexer, parser, and elaborator to core specifications."""

from repro.oun.elaborate import InvolvesFilter, elaborate, load_specifications
from repro.oun.lexer import Token, tokenize
from repro.oun.parser import (
    Assertion,
    CompositionDecl,
    Document,
    SpecDecl,
    parse_document,
)
from repro.oun.printer import format_constraint, format_document
from repro.oun.verify import AssertionOutcome, verify_document, verify_text

__all__ = [
    "InvolvesFilter",
    "elaborate",
    "load_specifications",
    "Token",
    "tokenize",
    "Assertion",
    "CompositionDecl",
    "Document",
    "SpecDecl",
    "parse_document",
    "format_constraint",
    "format_document",
    "AssertionOutcome",
    "verify_document",
    "verify_text",
]
