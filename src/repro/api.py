"""The stable public API of ``repro`` — one flat, documented surface.

Everything a library consumer needs, re-exported (or thinly wrapped) from
the internal layers so those layers can keep moving without breaking
callers:

* :func:`parse` — OUN text → document AST;
* :func:`elaborate` — document AST → named core specifications;
* :func:`load` — both steps in one call (text → specifications);
* :func:`compile_spec` — specification → dense DFA over a finite
  universe (derived from the spec when not given);
* :func:`check` — a recorded trace against a specification, returning
  the monitor so callers can inspect violations;
* :func:`verify_refinement` — the paper's refinement relation
  ``concrete ⊑ abstract``, returning an explainable conclusion;
* :class:`Monitor` — the online monitor (``repro.runtime.SpecMonitor``);
* :func:`serve` — run the online-monitoring TCP service over a document.

These names are also importable from the top-level package
(``from repro import verify_refinement``); the package ``__init__``
resolves them lazily so importing a single submodule stays cheap.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.runtime.monitor import SpecMonitor as Monitor

__all__ = [
    "Monitor",
    "check",
    "compile_spec",
    "elaborate",
    "load",
    "parse",
    "serve",
    "verify_refinement",
]


def parse(text: str):
    """Parse OUN document text into its AST (:class:`~repro.oun.parser.Document`)."""
    from repro.oun.parser import parse_document

    return parse_document(text)


def elaborate(doc):
    """Elaborate a parsed document into named core specifications."""
    from repro.oun.elaborate import elaborate as _elaborate

    return _elaborate(doc)


def load(text: str):
    """Parse and elaborate OUN text: ``{name: Specification}``."""
    return elaborate(parse(text))


def compile_spec(spec, universe=None, *, state_limit: int = 100_000):
    """Compile a specification's trace set to a dense DFA.

    ``universe`` defaults to the finite universe derived from the
    specification itself (its objects plus the standard environment).
    """
    from repro.checker.compile import spec_dfa
    from repro.checker.universe import FiniteUniverse

    if universe is None:
        universe = FiniteUniverse.for_specs(spec)
    return spec_dfa(spec, universe, state_limit=state_limit)


def check(spec, events: Iterable) -> Monitor:
    """Check a recorded event sequence against a specification.

    Feeds every event to a fresh :class:`Monitor` and returns it —
    ``monitor.ok`` is the verdict, ``monitor.violations`` the evidence.
    """
    monitor = Monitor(spec)
    for event in events:
        monitor.observe(event)
    return monitor


def verify_refinement(concrete, abstract, universe=None, **kwargs):
    """Decide ``concrete ⊑ abstract`` (Definition 8, alphabet expansion).

    Returns the checker's conclusion object: truthy ``.holds`` plus an
    ``explain()`` narrative.  Keyword arguments (``strategy``, ``depth``,
    …) pass through to :func:`repro.checker.refinement.check_refinement`.
    """
    from repro.checker.refinement import check_refinement

    return check_refinement(concrete, abstract, universe, **kwargs)


def serve(
    document: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 7471,
    shards: int = 4,
    metrics_port: int | None = None,
) -> None:
    """Run the online-monitoring TCP service over an OUN document (blocking).

    ``document`` is a path to an ``.oun`` file.  ``metrics_port`` also
    exposes a Prometheus text scrape endpoint.  Returns when interrupted.
    """
    import asyncio

    from repro.service import MonitorServer, SpecRegistry

    registry = SpecRegistry.from_file(document)

    async def run() -> None:
        server = MonitorServer(
            registry,
            shards=shards,
            host=host,
            port=port,
            metrics_port=metrics_port,
        )
        await server.start()
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
