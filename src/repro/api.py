"""The stable public API of ``repro`` — one flat, documented surface.

Everything a library consumer needs, re-exported (or thinly wrapped) from
the internal layers so those layers can keep moving without breaking
callers:

* :func:`parse` — OUN text → document AST;
* :func:`elaborate` — document AST → named core specifications;
* :func:`load` — both steps in one call (text → specifications);
* :func:`compile_spec` — specification → dense DFA over a finite
  universe (derived from the spec when not given);
* :func:`check` — a recorded trace against a specification, returning
  the monitor so callers can inspect violations;
* :func:`verify_refinement` — the paper's refinement relation
  ``concrete ⊑ abstract``, returning an explainable conclusion;
* :class:`Monitor` — the online monitor (``repro.runtime.SpecMonitor``);
* :func:`serve` — run the online-monitoring TCP service over a document;
* :func:`serve_http` — the TCP service plus the HTTP/JSON gateway;
* :func:`update_from_text` — hot-swap a *running* service's compiled
  specs from OUN document text;
* :func:`metrics_text` — this process's metrics registry as Prometheus
  text;
* :class:`Gateway` — a synchronous management facade over a running
  service: register documents, open sessions, send events, query
  status/violations, fan in per-worker metrics.  The HTTP gateway
  (:mod:`repro.gateway`) is a thin routing layer over exactly this
  class, which is what keeps it free of service internals.

These names are also importable from the top-level package
(``from repro import verify_refinement``); the package ``__init__``
resolves them lazily so importing a single submodule stays cheap.

:data:`API_VERSION` tracks the facade's own compatibility promise
(1.2.0 added the management surface: ``Gateway``, ``serve_http``,
``update_from_text``, ``metrics_text``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.errors import (
    ReproError,
    SessionStateError,
    SpecificationError,
    UnknownSessionError,
    UnknownSpecificationError,
)
from repro.runtime.monitor import SpecMonitor as Monitor

__all__ = [
    "API_VERSION",
    "Gateway",
    "Monitor",
    "check",
    "compile_spec",
    "elaborate",
    "load",
    "metrics_text",
    "parse",
    "serve",
    "serve_http",
    "update_from_text",
    "verify_refinement",
]

#: The facade's compatibility version (semver).  Bumped to 1.2.0 for the
#: management surface; see the module docstring for the 1.2 additions.
API_VERSION = "1.2.0"


def parse(text: str):
    """Parse OUN document text into its AST (:class:`~repro.oun.parser.Document`)."""
    from repro.oun.parser import parse_document

    return parse_document(text)


def elaborate(doc):
    """Elaborate a parsed document into named core specifications."""
    from repro.oun.elaborate import elaborate as _elaborate

    return _elaborate(doc)


def load(text: str):
    """Parse and elaborate OUN text: ``{name: Specification}``."""
    return elaborate(parse(text))


def compile_spec(spec, universe=None, *, state_limit: int = 100_000):
    """Compile a specification's trace set to a dense DFA.

    ``universe`` defaults to the finite universe derived from the
    specification itself (its objects plus the standard environment).
    """
    from repro.checker.compile import spec_dfa
    from repro.checker.universe import FiniteUniverse

    if universe is None:
        universe = FiniteUniverse.for_specs(spec)
    return spec_dfa(spec, universe, state_limit=state_limit)


def check(spec, events: Iterable) -> Monitor:
    """Check a recorded event sequence against a specification.

    Feeds every event to a fresh :class:`Monitor` and returns it —
    ``monitor.ok`` is the verdict, ``monitor.violations`` the evidence.
    """
    monitor = Monitor(spec)
    for event in events:
        monitor.observe(event)
    return monitor


def verify_refinement(concrete, abstract, universe=None, **kwargs):
    """Decide ``concrete ⊑ abstract`` (Definition 8, alphabet expansion).

    Returns the checker's conclusion object: truthy ``.holds`` plus an
    ``explain()`` narrative.  Keyword arguments (``strategy``, ``depth``,
    …) pass through to :func:`repro.checker.refinement.check_refinement`.
    """
    from repro.checker.refinement import check_refinement

    return check_refinement(concrete, abstract, universe, **kwargs)


def serve(
    document: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 7471,
    shards: int = 4,
    metrics_port: int | None = None,
) -> None:
    """Run the online-monitoring TCP service over an OUN document (blocking).

    ``document`` is a path to an ``.oun`` file.  ``metrics_port`` also
    exposes a Prometheus text scrape endpoint.  Returns when interrupted.
    """
    import asyncio

    from repro.service import MonitorServer, SpecRegistry

    registry = SpecRegistry.from_file(document)

    async def run() -> None:
        server = MonitorServer(
            registry,
            shards=shards,
            host=host,
            port=port,
            metrics_port=metrics_port,
        )
        await server.start()
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass


def serve_http(
    document: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    http_host: str = "127.0.0.1",
    http_port: int = 8080,
    shards: int = 4,
) -> None:
    """Run the TCP service *and* the HTTP/JSON gateway over it (blocking).

    The library-level equivalent of ``repro serve FILE --http-port N``:
    one :class:`~repro.service.server.MonitorServer` on ``host:port``
    (``port=0`` picks an ephemeral one) fronted by the REST gateway of
    :mod:`repro.gateway` on ``http_host:http_port``.  See
    ``docs/http-api.md`` for the endpoint reference.
    """
    import asyncio

    from repro.gateway import GatewayServer
    from repro.service import MonitorServer, SpecRegistry

    registry = SpecRegistry.from_file(document)

    async def run() -> None:
        server = MonitorServer(registry, shards=shards, host=host, port=port)
        await server.start()
        loop = asyncio.get_running_loop()
        # The Gateway speaks TCP to the server this loop runs, so its
        # blocking open/close must happen off-loop.
        gateway = Gateway(host, server.port)
        await loop.run_in_executor(None, gateway.open)
        front = GatewayServer(gateway, host=http_host, port=http_port)
        front.start()
        try:
            await server.serve_forever()
        finally:
            await loop.run_in_executor(None, front.close)
            await loop.run_in_executor(None, gateway.close)
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass


def metrics_text() -> str:
    """This process's metrics registry in Prometheus text exposition format.

    A snapshot of :func:`repro.obs.registry.get_registry` — the same text
    the service's ``METRICS`` verb and ``--metrics-port`` endpoint serve.
    """
    from repro.obs.registry import get_registry

    return get_registry().format_prometheus()


def _update_summary(fields: dict) -> dict:
    """Normalise the wire's UPDATE reply fields into a typed report."""
    specs = [n for n in fields.get("specs", "").split(",") if n and n != "-"]
    return {
        "changed": int(fields.get("changed", 0)),
        "unchanged": int(fields.get("unchanged", 0)),
        "added": int(fields.get("added", 0)),
        "specs": specs,
    }


def update_from_text(
    text: str | None = None,
    *,
    scenario: str | None = None,
    host: str = "127.0.0.1",
    port: int = 7471,
    force: bool = False,
    proto: int = 1,
    retries: int = 5,
) -> dict:
    """Hot-swap the compiled specs of a *running* service (the UPDATE verb).

    Exactly one of ``text`` (an OUN document) or ``scenario`` (a built-in
    workload scenario name) selects the source.  ``text`` is validated
    locally first, so syntax and elaboration problems raise their precise
    :class:`~repro.core.errors.ReproError` subclass before anything
    touches the wire.  ``force=True`` swaps in freshly compiled machines
    even when the content is unchanged.

    Returns ``{"changed": n, "unchanged": n, "added": n, "specs":
    [names]}`` — the server-side swap report.  Bound sessions drain on
    their old machines; only a rebind sees the new ones.
    """
    import asyncio

    from repro.service.client import MonitorClient

    if (text is None) == (scenario is None):
        raise ReproError(
            "update_from_text needs exactly one of text or scenario="
        )
    if text is not None:
        load(text)

    async def run() -> dict:
        client = MonitorClient(
            host, port, connect_retries=retries, proto=proto
        )
        await client.connect()
        try:
            fields = await client.update_document(
                text=text, scenario=scenario, force=force
            )
        finally:
            await client.close()
        return _update_summary(fields)

    return asyncio.run(run())


class Gateway:
    """Synchronous management facade over a running monitoring service.

    One ``Gateway`` owns a private asyncio loop on a daemon thread and a
    pool of :class:`~repro.service.client.MonitorClient` connections into
    the TCP service (plain single-process servers and ``--procs N``
    scale-out topologies alike — it only ever speaks the public client
    protocol).  Every method is a plain blocking call, safe to invoke
    from any thread — which is exactly what the per-request threads of
    the HTTP gateway (:mod:`repro.gateway`) need.

    Sessions are keyed by caller-chosen names: the first
    :meth:`send_events` for a key opens a TCP session (durable when
    requested and the server has a data directory) and later calls
    reuse it, so HTTP's stateless requests still map onto the service's
    per-connection sessions.  Typed errors
    (:class:`~repro.core.errors.UnknownSpecificationError`,
    :class:`~repro.core.errors.UnknownSessionError`,
    :class:`~repro.core.errors.SessionStateError`) carry enough intent
    for the HTTP layer to map them to 4xx statuses.

    ``metrics_targets`` aims :meth:`metrics_text` at per-worker direct
    ports (a ``--procs N`` topology's ``worker_ports``) — pass a list of
    ``(host, port)`` pairs or a callable returning one (re-evaluated per
    scrape, so worker respawns are picked up).  Counters and histograms
    merge across workers; gauges are labeled by worker
    (:func:`repro.obs.merge.merge_prometheus`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7471,
        *,
        proto: int = 2,
        connect_retries: int = 5,
        timeout: float = 60.0,
        metrics_targets=None,
    ) -> None:
        self.host = host
        self.port = port
        self._proto = proto
        self._retries = connect_retries
        self._timeout = timeout
        self._metrics_targets = metrics_targets
        self._loop = None
        self._thread = None
        self._clients: dict[str, object] = {}
        self._locks: dict[str, object] = {}

    # -- lifecycle -------------------------------------------------------

    def open(self) -> "Gateway":
        """Start the loop thread and probe the backend (fail fast)."""
        if self._loop is not None:
            return self
        import asyncio
        import threading

        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=loop.run_forever, name="repro-gateway-loop", daemon=True
        )
        thread.start()
        self._loop, self._thread = loop, thread
        try:
            self.documents()
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Close every session connection and stop the loop thread."""
        import asyncio

        loop, thread = self._loop, self._thread
        if loop is None:
            return

        async def shutdown() -> None:
            for client in list(self._clients.values()):
                try:
                    await client.close()
                except Exception:
                    pass
            self._clients.clear()
            self._locks.clear()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), loop).result(
                self._timeout
            )
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            loop.close()
            self._loop = self._thread = None

    def __enter__(self) -> "Gateway":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing --------------------------------------------------------

    def _call(self, coro):
        import asyncio

        if self._loop is None:
            coro.close()
            raise ReproError(
                "gateway is not open (call open() or use it as a context manager)"
            )
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            self._timeout
        )

    def _new_client(self, *, session: str | None = None):
        from repro.service.client import MonitorClient

        return MonitorClient(
            self.host,
            self.port,
            connect_retries=self._retries,
            proto=self._proto,
            session=session,
        )

    async def _round(self, fn):
        """One throwaway control connection: connect, run, close."""
        client = self._new_client()
        await client.connect()
        try:
            return await fn(client)
        finally:
            await client.close()

    def _count(self, op: str) -> None:
        from repro.obs.registry import get_registry

        get_registry().counter(
            "repro_gateway_requests_total",
            (("op", op),),
            help="Gateway management operations, by op.",
        ).inc()

    def _lock(self, key: str):
        import asyncio

        # Only ever called from coroutines on the gateway loop, so the
        # check-and-insert cannot race.
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = asyncio.Lock()
        return lock

    # -- documents -------------------------------------------------------

    def documents(self) -> list[str]:
        """Specification names the service currently serves."""
        self._count("documents")

        async def names(client):
            return list(client.server_specs)

        return self._call(self._round(names))

    def update_from_text(
        self,
        text: str,
        *,
        force: bool = False,
        declares: str | None = None,
    ) -> dict:
        """Register/hot-swap an OUN document on the service (UPDATE).

        Validates locally first (typed parse/elaboration errors, no wire
        round-trip); with ``declares=NAME`` also requires the document to
        declare that specification — the HTTP gateway's
        ``PUT /v1/documents/{name}`` contract.  Returns the swap report
        of :func:`update_from_text`.
        """
        self._count("update")
        specs = load(text)
        if declares is not None and declares not in specs:
            names = ", ".join(sorted(specs)) or "none"
            raise SpecificationError(
                f"document does not declare specification {declares!r} "
                f"(declares: {names})"
            )

        async def update(client):
            return _update_summary(
                await client.update_document(text=text, force=force)
            )

        return self._call(self._round(update))

    # -- sessions --------------------------------------------------------

    def sessions(self) -> list[str]:
        """Keys of the sessions this gateway holds open, sorted."""
        self._count("sessions")
        return sorted(self._clients)

    def send_events(
        self,
        key: str,
        events,
        *,
        spec: str | None = None,
        durable: bool = False,
    ) -> dict:
        """Send event line(s) to session ``key``; return its status dict.

        ``events`` is one trace line or an iterable of them.  The first
        call for a key must name a ``spec`` and opens the session
        (``durable=True`` asks the server for a durable keyed session —
        honoured when it runs with a data directory, reported in the
        returned ``"durable"``/``"applied"`` fields).  Later calls may
        repeat the same spec but cannot switch it
        (:class:`~repro.core.errors.SessionStateError`).
        """
        self._count("events")
        lines = (
            [events] if isinstance(events, str) else [str(e) for e in events]
        )
        return self._call(self._ingest(key, lines, spec, durable))

    def session_status(self, key: str) -> dict:
        """STATUS of session ``key``: counters, verdict, violation."""
        self._count("status")
        return self._call(self._status_of(key))

    def end_session(self, key: str) -> dict:
        """Close session ``key``; returns its final status dict."""
        self._count("end")
        return self._call(self._end(key))

    async def _open_session(self, key: str, spec: str | None, durable: bool):
        if spec is None:
            known = ", ".join(sorted(self._clients)) or "none"
            raise UnknownSessionError(
                f"no open session {key!r} (open: {known}); "
                "name a spec to open one"
            )
        client = self._new_client(session=key if durable else None)
        await client.connect()
        try:
            if spec not in client.server_specs:
                have = ", ".join(client.server_specs) or "none"
                raise UnknownSpecificationError(
                    f"no specification named {spec!r} (have: {have})"
                )
            await client.use_spec(spec)
        except BaseException:
            await client.close()
            raise
        self._clients[key] = client
        return client

    async def _ingest(self, key, lines, spec, durable):
        async with self._lock(key):
            client = self._clients.get(key)
            if client is None:
                client = await self._open_session(key, spec, durable)
            elif spec is not None and spec != client.spec:
                raise SessionStateError(
                    f"session {key!r} is bound to {client.spec!r}; "
                    f"end it (or pick a new key) to check {spec!r}"
                )
            for line in lines:
                await client.send_event(line)
            return self._status_payload(key, client, await client.status())

    async def _status_of(self, key):
        async with self._lock(key):
            client = self._clients.get(key)
            if client is None:
                raise UnknownSessionError(f"no open session {key!r}")
            return self._status_payload(key, client, await client.status())

    async def _end(self, key):
        async with self._lock(key):
            client = self._clients.pop(key, None)
            if client is None:
                raise UnknownSessionError(f"no open session {key!r}")
            payload = self._status_payload(key, client, await client.status())
            await client.close()
        self._locks.pop(key, None)
        payload["closed"] = True
        return payload

    @staticmethod
    def _status_payload(key, client, status) -> dict:
        violation = None
        if status.violation_index is not None:
            violation = {
                "index": status.violation_index,
                "event": status.violation_event,
            }
        return {
            "session": key,
            "spec": status.spec,
            "ok": status.ok,
            "events": status.events,
            "skipped": status.skipped,
            "errors": status.errors,
            "violation": violation,
            "applied": status.applied,
            "durable": client.durable,
        }

    # -- metrics / health ------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus text across every metrics target (fan-in + merge)."""
        self._count("metrics")
        return self._call(self._metrics())

    def health(self) -> dict:
        """Liveness probe: reaches the backend and reports the surface."""
        specs = self.documents()
        return {
            "status": "ok",
            "version": API_VERSION,
            "specs": specs,
            "sessions": len(self._clients),
        }

    def _targets(self) -> list[tuple[str, int]]:
        targets = self._metrics_targets
        if callable(targets):
            targets = targets()
        if not targets:
            return [(self.host, self.port)]
        return [(host, port) for host, port in targets]

    async def _metrics(self) -> str:
        import asyncio

        async def fetch(host: str, port: int) -> str:
            from repro.service.client import MonitorClient

            client = MonitorClient(
                host, port, connect_retries=self._retries
            )
            await client.connect()
            try:
                return await client.metrics()
            finally:
                await client.close()

        targets = self._targets()
        texts = await asyncio.gather(*(fetch(h, p) for h, p in targets))
        if len(texts) == 1:
            merged = texts[0]
        else:
            from repro.obs.merge import merge_prometheus

            merged = merge_prometheus(list(enumerate(texts)))
        # The gateway's own request counters live in *this* process, not
        # the scraped backends; append them unless the backend shares our
        # registry (in-process test servers) and already reported them.
        if "# TYPE repro_gateway_" not in merged:
            local = _gateway_families(metrics_text())
            if local:
                merged += local
        return merged


def _gateway_families(text: str) -> str:
    """Just the ``repro_gateway_*`` families of an exposition dump."""
    lines = []
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            name = parts[2] if len(parts) > 2 else ""
        else:
            name = line.split("{", 1)[0].split(" ", 1)[0]
        if name.startswith("repro_gateway_"):
            lines.append(line)
    return "\n".join(lines) + "\n" if lines else ""
