"""Lightweight structured spans: the tracing half of ``repro.obs``.

A *span* is one timed phase of the pipeline — ``span("compile.traceset_dfa",
spec="RW")`` — with monotonic-clock start/end, free-form attributes, and
parent/child nesting carried through a :class:`contextvars.ContextVar`, so
nesting follows the call stack across functions, generators, and asyncio
tasks without any plumbing in signatures.

Spans only exist while at least one *sink* is installed (:func:`add_sink`
or the scoped :func:`use_sink`).  With no sink — the production default —
:func:`span` returns a shared no-op object and the cost of an
instrumentation point is one module-global truthiness check; nothing is
allocated and the ContextVar is never touched.  That is the disabled fast
path the ``benchmarks/bench_obs.py`` gate pins.

Crossing a process boundary (the obligation engine's worker pool) works by
value, not by ambient state: the parent captures :func:`current_span_id`,
ships it in the job, and the worker re-roots its own spans under it with
:func:`adopt_parent`.  Finished :class:`SpanRecord` values are plain
picklable dataclasses, so a worker collects its records in an in-memory
sink and ships them back for the parent to :func:`replay` into its own
sinks — re-parented, as if the work had happened inline.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "Span",
    "SpanRecord",
    "add_sink",
    "adopt_parent",
    "current_span_id",
    "remove_sink",
    "replay",
    "span",
    "tracing_enabled",
    "use_sink",
]

#: Installed sinks (objects with an ``emit(record)`` method).  A plain
#: module-global list, *not* a ContextVar: spans raised anywhere in the
#: process — worker threads, asyncio tasks — flow to the same exporters,
#: and the disabled fast path is a single truthiness check.
_SINKS: list = []

#: The innermost live span (or adopted anchor) of the current context.
_CURRENT: contextvars.ContextVar["_Anchor | Span | None"] = contextvars.ContextVar(
    "repro_current_span", default=None
)

_IDS = itertools.count(1)


def _new_span_id() -> str:
    """A process-unique span id, distinct across engine workers too."""
    return f"{os.getpid():x}-{next(_IDS):x}"


@dataclass(slots=True)
class SpanRecord:
    """One finished span: plain data, picklable, JSON-friendly.

    ``start``/``end`` are monotonic-clock seconds — meaningful as
    differences and for ordering within one process, not as wall-clock
    timestamps.
    """

    name: str
    span_id: str
    parent_id: str | None
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


@dataclass(frozen=True, slots=True)
class _Anchor:
    """A parent-only stand-in for a span living in another process."""

    span_id: str


class Span:
    """A live span: context manager that emits a :class:`SpanRecord`.

    Created via :func:`span`; entering resolves the parent from the
    ambient context and installs itself as the current span, exiting
    stamps the end time and emits the finished record to every sink.
    An exception propagating through the block is recorded as an
    ``error`` attribute (the exception type name) and re-raised.
    """

    __slots__ = ("name", "span_id", "parent_id", "attrs", "start", "end", "_token")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id: str | None = None
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self._token: contextvars.Token | None = None

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        parent = _CURRENT.get()
        if parent is not None:
            self.parent_id = parent.span_id
        self._token = _CURRENT.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        emit(
            SpanRecord(
                self.name,
                self.span_id,
                self.parent_id,
                self.start,
                self.end,
                self.attrs,
            )
        )
        return False


def span(name: str, /, **attrs):
    """Open a span — or the shared no-op when no sink is installed.

    ``name`` is positional-only so attributes may themselves be called
    ``name`` (``span("elaborate.spec", name=spec.name)``).
    """
    if not _SINKS:
        return _NULL_SPAN
    return Span(name, attrs)


def tracing_enabled() -> bool:
    """Whether any sink is installed (spans are being recorded)."""
    return bool(_SINKS)


def current_span_id() -> str | None:
    """The ambient span id, for shipping across a process boundary."""
    current = _CURRENT.get()
    return current.span_id if current is not None else None


@contextlib.contextmanager
def adopt_parent(span_id: str | None):
    """Re-root spans of the block under a remote parent span id.

    The worker half of cross-process propagation: the parent process
    captures :func:`current_span_id` into the job, the worker wraps its
    work in ``adopt_parent(shipped_id)`` so its spans re-parent onto the
    shipping span when replayed.  ``None`` adopts nothing.
    """
    if span_id is None:
        yield
        return
    token = _CURRENT.set(_Anchor(span_id))
    try:
        yield
    finally:
        _CURRENT.reset(token)


def emit(record: SpanRecord) -> None:
    """Deliver one finished record to every installed sink."""
    for sink in list(_SINKS):
        sink.emit(record)


def replay(records: Iterable[SpanRecord]) -> None:
    """Emit already-finished records (e.g. shipped back from a worker)."""
    for record in records:
        emit(record)


def add_sink(sink) -> None:
    """Install a sink (an object with ``emit(record)``) process-wide."""
    _SINKS.append(sink)


def remove_sink(sink) -> None:
    """Uninstall a sink; unknown sinks are ignored."""
    with contextlib.suppress(ValueError):
        _SINKS.remove(sink)


@contextlib.contextmanager
def use_sink(sink):
    """Install a sink for the duration of a block; yields the sink."""
    add_sink(sink)
    try:
        yield sink
    finally:
        remove_sink(sink)
