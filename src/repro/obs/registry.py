"""One metrics registry: counters, gauges, histograms, Prometheus text.

Every layer of the system used to keep its own incompatible counter bag
(``service/metrics.py``, ``automata/stats.py``, per-pass pipeline
counters).  This module is the single sink they now all write through: a
:class:`MetricsRegistry` of named metric *families*, each family holding
one metric per label set, renderable as a stable ``snapshot()`` dict and
as Prometheus text exposition format (the service's ``METRICS`` verb and
``--metrics-port`` endpoint).

Conventions:

* Names follow Prometheus style — ``repro_cache_hits_total`` — and a
  family's kind (counter/gauge/histogram) is fixed at first registration;
  re-registering with a different kind raises
  :class:`~repro.core.errors.ObservabilityError`.
* Labels are passed as a tuple of ``(key, value)`` pairs and normalised
  to sorted order, so ``(("pass", "x"),)`` names one time series however
  the call site spells it.
* Metric objects are plain attribute-mutating values with no locks: the
  mutation sites are single-threaded (asyncio event loop, inline checker
  runs) or merge per-worker deltas on the parent, exactly as the legacy
  metric classes did.
* Accessors return the *same* object for the same (name, labels), so hot
  paths resolve a metric once and then pay one integer add per event.

The process-wide registry (:func:`get_registry`) is what the service
exports; :func:`use_registry` swaps in a fresh one for a block so tests
assert on exactly their own increments.
"""

from __future__ import annotations

import bisect
import contextlib
import math

from repro.core.errors import ObservabilityError

__all__ = [
    "DEFAULT_BUCKETS",
    "OBLIGATION_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Upper bounds (seconds) of the latency buckets: 1µs … ~1s, log-spaced.
DEFAULT_BUCKETS = tuple(1e-6 * 4**i for i in range(11))

#: Buckets for whole proof obligations: 1ms … ~1000s, log-spaced.  One
#: obligation compiles DFAs and runs automaton products, so it lives three
#: orders of magnitude above a single online event check.
OBLIGATION_BUCKETS = tuple(1e-3 * 4**i for i in range(11))


class Counter:
    """A monotonically increasing count (int or float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (pool sizes, intern-table sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram of observations (seconds, usually).

    The shape is the service's historical ``LatencyHistogram`` —
    ``bounds``, per-bucket ``counts`` with one overflow bucket at the
    end, ``count``, ``total`` — kept bit-for-bit so every snapshot a
    test or dashboard pinned stays valid; Prometheus rendering is
    layered on top (cumulative ``_bucket`` series plus ``_sum``/
    ``_count``).
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        # one overflow bucket past the last bound
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "buckets": {
                f"le_{bound:g}": n
                for bound, n in zip(self.bounds, self.counts)
            }
            | {"overflow": self.counts[-1]},
        }


#: Legacy name: the service metrics module exported the same class as
#: ``LatencyHistogram`` (importing it from there now warns).
LatencyHistogram = Histogram


def _norm_labels(labels) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    if isinstance(labels, dict):
        items = labels.items()
    else:
        items = labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


def _fmt_value(value: int | float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _fmt_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """One named family: a fixed kind, one metric per label set."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """A process-wide (or test-scoped) collection of metric families."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- registration ----------------------------------------------------

    def _get(self, name: str, kind: str, help: str, labels, factory):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help)
        elif family.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if help and not family.help:
            family.help = help
        key = _norm_labels(labels)
        metric = family.series.get(key)
        if metric is None:
            metric = family.series[key] = factory()
        return metric

    def counter(self, name: str, labels=(), help: str = "") -> Counter:
        """The counter for (name, labels), created on first touch."""
        return self._get(name, "counter", help, labels, Counter)

    def gauge(self, name: str, labels=(), help: str = "") -> Gauge:
        """The gauge for (name, labels), created on first touch."""
        return self._get(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels=(),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """The histogram for (name, labels), created on first touch."""
        return self._get(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    # -- reporting -------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._families)

    def snapshot(self) -> dict:
        """Plain-dict snapshot: family name → {label-string: value}."""
        out: dict = {}
        for name in self.names():
            family = self._families[name]
            series: dict = {}
            for key, metric in sorted(family.series.items()):
                label = ",".join(f"{k}={v}" for k, v in key)
                if isinstance(metric, Histogram):
                    series[label] = metric.snapshot()
                else:
                    series[label] = metric.value
            out[name] = series
        return out

    def format_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in self.names():
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, metric in sorted(family.series.items()):
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, n in zip(metric.bounds, metric.counts):
                        cumulative += n
                        le = _fmt_labels(key, f'le="{_fmt_value(float(bound))}"')
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _fmt_labels(key, 'le="+Inf"')
                    lines.append(f"{name}_bucket{le} {metric.count}")
                    lines.append(
                        f"{name}_sum{_fmt_labels(key)} {_fmt_value(metric.total)}"
                    )
                    lines.append(f"{name}_count{_fmt_labels(key)} {metric.count}")
                else:
                    lines.append(
                        f"{name}{_fmt_labels(key)} {_fmt_value(metric.value)}"
                    )
        return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer writes through."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Swap in a fresh (or given) registry for a block; yields it.

    Test isolation: metric objects resolved *inside* the block land in
    the scoped registry; objects resolved before it keep writing to the
    old one (resolution happens at construction time by design).
    """
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
