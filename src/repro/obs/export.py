"""Span sinks and renderers: JSON-lines files, in-memory trees, tables.

Three consumers of finished :class:`~repro.obs.trace.SpanRecord` values:

* :class:`InMemoryCollector` — the test and ``repro profile`` sink:
  keeps records in order, reconstructs the parent/child tree, renders it
  with per-phase wall time;
* :class:`JsonLinesExporter` — one JSON object per line, append-friendly
  and greppable; every CLI subcommand grows ``--obs-spans PATH`` on top
  of it;
* :func:`format_columns` — the shared column-aligner behind the span
  tree and the ``repro explain`` pass table, so the two reports line up
  the same way.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.core.errors import ObservabilityError
from repro.obs.trace import SpanRecord

__all__ = [
    "InMemoryCollector",
    "JsonLinesExporter",
    "format_columns",
    "render_span_tree",
]


def format_columns(rows: Sequence[Sequence[str]], indent: str = "") -> str:
    """Align rows into left-justified columns (last column ragged)."""
    if not rows:
        return ""
    widths = [0] * max(len(r) for r in rows)
    for row in rows:
        for i, cell in enumerate(row[:-1]):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for row in rows:
        cells = [cell.ljust(widths[i]) for i, cell in enumerate(row[:-1])]
        cells.append(row[-1])
        lines.append((indent + "  ".join(cells)).rstrip())
    return "\n".join(lines)


class InMemoryCollector:
    """Collects records in emission order; reconstructs the span tree."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []

    def emit(self, record: SpanRecord) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    def by_name(self, name: str) -> list[SpanRecord]:
        """All records with a given span name, in emission order."""
        return [r for r in self.records if r.name == name]

    def roots(self) -> list[SpanRecord]:
        """Records whose parent was never recorded here, by start time.

        A span whose parent lives in another collector (or another
        process and was never replayed) counts as a root.
        """
        known = {r.span_id for r in self.records}
        return sorted(
            (r for r in self.records if r.parent_id not in known),
            key=lambda r: r.start,
        )

    def children_of(self, span_id: str) -> list[SpanRecord]:
        return sorted(
            (r for r in self.records if r.parent_id == span_id),
            key=lambda r: r.start,
        )

    def format_tree(self) -> str:
        """The nested span tree with per-span wall time (see module doc)."""
        return render_span_tree(self.records)


def _attr_text(record: SpanRecord) -> str:
    if not record.attrs:
        return ""
    return " ".join(f"{k}={v}" for k, v in record.attrs.items())


def render_span_tree(records: Iterable[SpanRecord]) -> str:
    """Render records as an indented tree: name, wall time, attributes.

    Spans are nested under their recorded parent (children ordered by
    start time); spans whose parent is absent from ``records`` print as
    roots.  This is the ``repro profile`` output format.
    """
    records = list(records)
    known = {r.span_id for r in records}
    children: dict[str | None, list[SpanRecord]] = {}
    for r in records:
        parent = r.parent_id if r.parent_id in known else None
        children.setdefault(parent, []).append(r)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.start)

    rows: list[tuple[str, str, str]] = []

    def walk(record: SpanRecord, depth: int) -> None:
        rows.append(
            (
                "  " * depth + record.name,
                f"{record.seconds * 1e3:9.2f} ms",
                _attr_text(record),
            )
        )
        for child in children.get(record.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return format_columns(rows)


class JsonLinesExporter:
    """Writes each finished span as one JSON line to a file.

    Opened eagerly so a bad path fails at configuration time, flushed per
    record so a crashed run still leaves its spans on disk.  Usable as a
    context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path) -> None:
        try:
            self._fh = open(path, "w", encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot open span file {path}: {exc}"
            ) from exc
        self.path = path
        self.written = 0

    def emit(self, record: SpanRecord) -> None:
        if self._fh is None:
            return
        json.dump(record.as_dict(), self._fh, default=repr)
        self._fh.write("\n")
        self._fh.flush()
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
