"""Exploration statistics: how much work a DFA compilation actually did.

Tree rewrites that are bijections on product states (dropping a
``TrueMachine`` conjunct, fusing two renames) do not shrink the number of
*distinct* DFA states, so "states in the result" cannot show their
effect.  What does change is the work per explored state: how many
component-machine ``step`` calls the exploration performs and how many
hidden candidate events the ε-closure grinds through.  This module
collects those counts, plus the explored-state totals, through an
ambient :class:`ExplorationStats` — installed with
:func:`collect_exploration`, read by ``benchmarks/bench_passes.py`` to
compare raw against normalized compilation.

No stats object installed (the default) means zero overhead beyond one
ContextVar read per exploration.  When a collection block closes, its
totals are also flushed into the process-wide
:class:`~repro.obs.registry.MetricsRegistry` (``repro_exploration_*``
counters), so exploration work shows up in the same Prometheus scrape as
everything else.

Historically ``repro.automata.stats``; that module remains as a
deprecated re-exporting shim.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass

from repro.obs.registry import get_registry

__all__ = ["ExplorationStats", "collect_exploration", "active_exploration_stats"]


@dataclass
class ExplorationStats:
    """Counters accumulated across every exploration while installed.

    ``letters_encoded`` counts boundary work — structured letters hashed
    into dense ids — while ``dense_steps`` counts integer-indexed
    transitions taken over the dense core (stepping, product edges).  The
    dense refactor's whole point is that the second number dwarfs the
    first: each letter is encoded once and then stepped many times
    (``benchmarks/bench_dense.py`` reports the ratio).
    """

    dfa_states: int = 0
    machine_steps: int = 0
    hidden_events: int = 0
    letters_encoded: int = 0
    dense_steps: int = 0

    def snapshot(self) -> dict:
        return {
            "dfa_states": self.dfa_states,
            "machine_steps": self.machine_steps,
            "hidden_events": self.hidden_events,
            "letters_encoded": self.letters_encoded,
            "dense_steps": self.dense_steps,
        }


_ACTIVE: contextvars.ContextVar[ExplorationStats | None] = contextvars.ContextVar(
    "repro_exploration_stats", default=None
)


def active_exploration_stats() -> ExplorationStats | None:
    return _ACTIVE.get()


@contextlib.contextmanager
def collect_exploration(stats: ExplorationStats | None = None):
    """Install a stats collector for the block; yields the collector."""
    if stats is None:
        stats = ExplorationStats()
    token = _ACTIVE.set(stats)
    try:
        yield stats
    finally:
        _ACTIVE.reset(token)
        registry = get_registry()
        for name, value in stats.snapshot().items():
            if value:
                registry.counter(
                    f"repro_exploration_{name}_total",
                    help="DFA exploration work observed under collect_exploration",
                ).inc(value)
