"""repro.obs — the unified observability layer (DESIGN.md §11).

One subsystem for the system's self-knowledge, in two halves:

* **Spans** (:mod:`repro.obs.trace`): timed, attributed, nested phases —
  ``with span("compile.traceset_dfa", spec=...):`` — propagated through
  a ContextVar, across the obligation engine's process pool (worker
  records ship back and re-parent), exported as JSON lines
  (:class:`JsonLinesExporter`), collected in memory for tests and
  ``repro profile`` (:class:`InMemoryCollector`).  Disabled by default:
  with no sink installed an instrumentation point costs one truthiness
  check (``benchmarks/bench_obs.py`` gates this).

* **Metrics** (:mod:`repro.obs.registry`): a single
  :class:`MetricsRegistry` of counters, gauges, and histograms that
  absorbs what used to be three incompatible APIs — the service's
  ``ServiceMetrics``, the checker's ``CheckerMetrics``, the pipeline's
  ``NormalizationMetrics`` (all now in :mod:`repro.obs.metrics`, still
  instance-shaped for tests, mirroring into the registry) and the
  ``automata.stats`` exploration counters
  (:mod:`repro.obs.exploration`).  The registry renders Prometheus text
  for the service's ``METRICS`` verb and ``repro serve --metrics-port``.

The legacy ``repro.automata.stats`` path keeps working through a
deprecation shim; ``repro.service.metrics`` is down to an import-time
warning stub and disappears next release.
"""

from repro.obs.export import (
    InMemoryCollector,
    JsonLinesExporter,
    format_columns,
    render_span_tree,
)
from repro.obs.exploration import (
    ExplorationStats,
    active_exploration_stats,
    collect_exploration,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    OBLIGATION_BUCKETS,
    CheckerMetrics,
    LatencyHistogram,
    NormalizationMetrics,
    ServiceMetrics,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    Span,
    SpanRecord,
    add_sink,
    adopt_parent,
    current_span_id,
    remove_sink,
    replay,
    span,
    tracing_enabled,
    use_sink,
)

__all__ = [
    # trace
    "Span",
    "SpanRecord",
    "add_sink",
    "adopt_parent",
    "current_span_id",
    "remove_sink",
    "replay",
    "span",
    "tracing_enabled",
    "use_sink",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    # exporters
    "InMemoryCollector",
    "JsonLinesExporter",
    "format_columns",
    "render_span_tree",
    # metric bundles
    "DEFAULT_BUCKETS",
    "OBLIGATION_BUCKETS",
    "CheckerMetrics",
    "LatencyHistogram",
    "NormalizationMetrics",
    "ServiceMetrics",
    # exploration
    "ExplorationStats",
    "active_exploration_stats",
    "collect_exploration",
]
