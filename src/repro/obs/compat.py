"""Deprecated-import machinery for names that moved into ``repro.obs``.

``repro.service.metrics`` and ``repro.automata.stats`` are kept as thin
shims: every public name still imports from its old home, but the first
access warns (``DeprecationWarning``, exactly once per name per process)
and points at the new location.  The shims use PEP 562 module
``__getattr__``, so the old modules carry no stale copies — there is one
implementation, in :mod:`repro.obs`.
"""

from __future__ import annotations

import importlib
import warnings

__all__ = ["deprecated_module_attrs", "warn_deprecated_module"]

#: (shim module, attribute) pairs that already warned this process.  A
#: whole-module warning uses the empty attribute name.
_WARNED: set[tuple[str, str]] = set()


def warn_deprecated_module(module_name: str, replacement: str) -> None:
    """Warn once per process that an entire module is deprecated.

    The terminal stage of a shim's life: after one release of per-name
    forwarding the names stop resolving, and the module body itself
    calls this so any surviving ``import`` site gets one clear pointer
    at the new home before the module disappears for good.
    """
    if (module_name, "") in _WARNED:
        return
    _WARNED.add((module_name, ""))
    warnings.warn(
        f"{module_name} is deprecated and will be removed in the next "
        f"release; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def deprecated_module_attrs(module_name: str, moved: dict[str, str]):
    """Build a module ``__getattr__`` forwarding ``moved`` names.

    ``moved`` maps attribute name → new module path.  Each name warns on
    first access only; later accesses (and re-imports in the same
    process) resolve silently, so instrumented hot paths that still go
    through a legacy alias pay one warning, not one per call.
    """

    def __getattr__(name: str):
        target = moved.get(name)
        if target is None:
            raise AttributeError(
                f"module {module_name!r} has no attribute {name!r}"
            )
        if (module_name, name) not in _WARNED:
            _WARNED.add((module_name, name))
            warnings.warn(
                f"{module_name}.{name} moved to {target}.{name}; "
                f"import it from there (or from repro.obs)",
                DeprecationWarning,
                stacklevel=2,
            )
        return getattr(importlib.import_module(target), name)

    return __getattr__
