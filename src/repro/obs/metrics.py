"""Layer-level metric bundles, unified on the :mod:`repro.obs` registry.

:class:`ServiceMetrics` (online monitoring), :class:`CheckerMetrics`
(obligation engine + machine cache) and :class:`NormalizationMetrics`
(pass pipeline) historically lived in ``repro.service.metrics`` as three
unrelated counter bags.  They now share one spine: every instance keeps
its own counters — the per-instance ``snapshot()`` shapes are pinned by
tests and dashboards and unchanged — *and* mirrors each increment into
the process-wide :class:`~repro.obs.registry.MetricsRegistry`, so one
Prometheus scrape sees the whole system regardless of which layer did the
work.

Registry metric objects are resolved once at construction (a dict lookup
per event would not survive on the service's hot path); per-pass labelled
counters resolve per distinct pass name.  All mutation is single-threaded
or delta-merged on a parent, as before — no locks.
"""

from __future__ import annotations

import asyncio
import time

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    MetricsRegistry,
    OBLIGATION_BUCKETS,
    get_registry,
)

__all__ = [
    "LatencyHistogram",
    "ServiceMetrics",
    "CheckerMetrics",
    "NormalizationMetrics",
    "DEFAULT_BUCKETS",
    "OBLIGATION_BUCKETS",
    "declare_cache_counters",
]


def declare_cache_counters(registry: MetricsRegistry) -> dict:
    """Resolve (creating on first touch) the machine-cache counter family.

    Shared by :class:`CheckerMetrics` and the service's metrics endpoint:
    the service pre-touches them so a scrape shows the family at zero
    even before any offline check ran in the process.
    """
    return {
        "hits": registry.counter(
            "repro_cache_hits_total", help="machine-cache lookups served from disk"
        ),
        "misses": registry.counter(
            "repro_cache_misses_total", help="machine-cache lookups that compiled"
        ),
        "stores": registry.counter(
            "repro_cache_stores_total", help="compiled machines written to the cache"
        ),
        "errors": registry.counter(
            "repro_cache_errors_total", help="corrupt or unwritable cache entries"
        ),
        "uncacheable": registry.counter(
            "repro_cache_uncacheable_total",
            help="compilations without a stable fingerprint",
        ),
    }


class CheckerMetrics:
    """Counters and wall-time histogram for one obligation-engine run.

    Mirrors :class:`ServiceMetrics` in shape (monotonic counters + the
    shared :class:`LatencyHistogram` type + a stable ``snapshot()``) but
    measures the *offline* checker: whole proof obligations instead of
    single events, plus the machine cache's hit/miss/store/error and
    uncacheable counts.  Mutation happens either on one thread (inline
    runs) or by merging per-worker deltas on the parent (parallel runs),
    so plain integers are race-free here too.
    """

    def __init__(self) -> None:
        self.obligations_run = 0
        self.agreements = 0
        self.disagreements = 0
        self.errors = 0
        self.timeouts = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.cache_errors = 0
        self.cache_uncacheable = 0
        self.wall = LatencyHistogram(OBLIGATION_BUCKETS)
        registry = get_registry()
        self._g_cache = declare_cache_counters(registry)
        self._c_obligations = registry.counter(
            "repro_obligations_total", help="proof obligations run"
        )
        self._c_errors = registry.counter(
            "repro_obligation_errors_total", help="obligations ending in error"
        )
        self._c_timeouts = registry.counter(
            "repro_obligation_timeouts_total", help="obligations killed by timeout"
        )
        self._h_wall = registry.histogram(
            "repro_obligation_seconds",
            buckets=OBLIGATION_BUCKETS,
            help="wall seconds per proof obligation",
        )

    # -- recording -----------------------------------------------------------

    def record_outcome(self, outcome) -> None:
        """One finished :class:`~repro.checker.obligations.ObligationOutcome`."""
        self.obligations_run += 1
        self._c_obligations.inc()
        self.wall.observe(outcome.seconds)
        self._h_wall.observe(outcome.seconds)
        if outcome.error is not None:
            self.errors += 1
            self._c_errors.inc()
            if "timeout" in outcome.error.lower():
                self.timeouts += 1
                self._c_timeouts.inc()
        elif outcome.agrees:
            self.agreements += 1
        else:
            self.disagreements += 1

    def record_cache(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        stores: int = 0,
        errors: int = 0,
        uncacheable: int = 0,
    ) -> None:
        """Merge a cache-stats delta (one worker's, or a whole run's)."""
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_stores += stores
        self.cache_errors += errors
        self.cache_uncacheable += uncacheable
        self._g_cache["hits"].inc(hits)
        self._g_cache["misses"].inc(misses)
        self._g_cache["stores"].inc(stores)
        self._g_cache["errors"].inc(errors)
        self._g_cache["uncacheable"].inc(uncacheable)

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses + self.cache_uncacheable

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; keys are stable for tests and dumps."""
        return {
            "obligations_run": self.obligations_run,
            "agreements": self.agreements,
            "disagreements": self.disagreements,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "cache_errors": self.cache_errors,
            "cache_uncacheable": self.cache_uncacheable,
            "wall": self.wall.snapshot(),
        }

    def format_text(self) -> str:
        """A compact human-readable dump (one counter per line)."""
        snap = self.snapshot()
        lines = [
            f"{key}={snap[key]}"
            for key in (
                "obligations_run",
                "agreements",
                "disagreements",
                "errors",
                "timeouts",
                "cache_hits",
                "cache_misses",
                "cache_stores",
                "cache_errors",
                "cache_uncacheable",
            )
        ]
        lines.append(
            f"wall: count={self.wall.count} mean={self.wall.mean:.3f}s "
            f"total={self.wall.total:.3f}s"
        )
        return "\n".join(lines)


class NormalizationMetrics:
    """Per-pass rewrite counts and wall time for a normalization pipeline.

    One instance lives on each :class:`~repro.passes.base.PassPipeline`
    (the process-wide default pipeline accumulates across every
    normalization the process runs).  Same conventions as the sibling
    classes: monotonic counters mutated from one thread, a stable
    ``snapshot()`` shape, a compact ``format_text()``.
    """

    def __init__(self) -> None:
        self.normalizations = 0
        self.rewrites = 0
        self.pass_rewrites: dict[str, int] = {}
        self.pass_seconds: dict[str, float] = {}
        registry = get_registry()
        self._registry = registry
        self._c_runs = registry.counter(
            "repro_normalize_runs_total", help="whole pipeline runs"
        )
        self._c_rewrites = registry.counter(
            "repro_normalize_rewrites_total", help="rewrites fired, all passes"
        )
        self._c_pass: dict[str, tuple] = {}

    # -- recording -----------------------------------------------------------

    def record_pass(self, name: str, rewrites: int, seconds: float) -> None:
        """One application of one pass (possibly zero rewrites)."""
        self.pass_rewrites[name] = self.pass_rewrites.get(name, 0) + rewrites
        self.pass_seconds[name] = self.pass_seconds.get(name, 0.0) + seconds
        counters = self._c_pass.get(name)
        if counters is None:
            labels = (("pass", name),)
            counters = self._c_pass[name] = (
                self._registry.counter(
                    "repro_normalize_pass_rewrites_total",
                    labels,
                    help="rewrites fired per pass",
                ),
                self._registry.counter(
                    "repro_normalize_pass_seconds_total",
                    labels,
                    help="wall seconds spent per pass",
                ),
            )
        counters[0].inc(rewrites)
        counters[1].inc(seconds)

    def record_run(self, rewrites: int) -> None:
        """One whole pipeline run over one trace set."""
        self.normalizations += 1
        self.rewrites += rewrites
        self._c_runs.inc()
        self._c_rewrites.inc(rewrites)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; keys are stable for tests and dumps."""
        return {
            "normalizations": self.normalizations,
            "rewrites": self.rewrites,
            "passes": {
                name: {
                    "rewrites": self.pass_rewrites.get(name, 0),
                    "seconds": self.pass_seconds.get(name, 0.0),
                }
                for name in sorted(
                    set(self.pass_rewrites) | set(self.pass_seconds)
                )
            },
        }

    def format_text(self) -> str:
        """A compact human-readable dump (one counter per line)."""
        snap = self.snapshot()
        lines = [
            f"normalizations={snap['normalizations']}",
            f"rewrites={snap['rewrites']}",
        ]
        for name, entry in snap["passes"].items():
            lines.append(
                f"pass[{name}]: rewrites={entry['rewrites']} "
                f"seconds={entry['seconds']:.4f}"
            )
        return "\n".join(lines)


class ServiceMetrics:
    """Counters and per-spec histograms for one server instance."""

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.events_observed = 0
        self.events_skipped = 0
        self.events_malformed = 0
        self.violations = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.latency: dict[str, LatencyHistogram] = {}
        registry = get_registry()
        self._c_events = registry.counter(
            "repro_monitor_events_total", help="events accepted by sessions"
        )
        self._c_steps = registry.counter(
            "repro_monitor_steps_total",
            help="in-alphabet events stepped through a monitor",
        )
        self._c_skipped = registry.counter(
            "repro_monitor_skipped_total", help="events outside the bound alphabet"
        )
        self._c_malformed = registry.counter(
            "repro_monitor_malformed_total", help="unparseable or spec-less events"
        )
        self._c_violations = registry.counter(
            "repro_monitor_violations_total", help="first violations detected"
        )
        self._c_opened = registry.counter(
            "repro_sessions_opened_total", help="TCP sessions accepted"
        )
        self._c_closed = registry.counter(
            "repro_sessions_closed_total", help="TCP sessions finished"
        )
        self._h_check = registry.histogram(
            "repro_event_check_seconds", help="per-event check latency, all specs"
        )
        self._c_batches = registry.counter(
            "repro_monitor_batches_total",
            help="EVENTS batches stepped by binary sessions",
        )
        self._c_batched = registry.counter(
            "repro_monitor_batched_events_total",
            help="events carried by EVENTS batches",
        )

    # -- recording -----------------------------------------------------------

    def record_batch(self, spec: str, n: int, seconds: float) -> None:
        """One ``EVENTS`` batch of ``n`` in-alphabet events checked.

        The whole point of batching is to amortise accounting, so this is
        *one* histogram observation (the batch's wall time — per-event
        latency is ``seconds / n``) and counter increments of ``n``,
        not ``n`` per-event records.
        """
        self.events_observed += n
        self._c_events.inc(n)
        self._c_steps.inc(n)
        self._c_batches.inc()
        self._c_batched.inc(n)
        hist = self.latency.get(spec)
        if hist is None:
            hist = self.latency[spec] = LatencyHistogram()
        hist.observe(seconds)
        self._h_check.observe(seconds)

    def record_event(self, spec: str, seconds: float, *, skipped: bool) -> None:
        """One event checked (or projected away) for ``spec``."""
        self.events_observed += 1
        self._c_events.inc()
        if skipped:
            self.events_skipped += 1
            self._c_skipped.inc()
        else:
            self._c_steps.inc()
        hist = self.latency.get(spec)
        if hist is None:
            hist = self.latency[spec] = LatencyHistogram()
        hist.observe(seconds)
        self._h_check.observe(seconds)

    def record_malformed(self, n: int = 1) -> None:
        self.events_malformed += n
        self._c_malformed.inc(n)

    def record_violation(self) -> None:
        self.violations += 1
        self._c_violations.inc()

    def session_opened(self) -> None:
        self.sessions_opened += 1
        self._c_opened.inc()

    def session_closed(self) -> None:
        self.sessions_closed += 1
        self._c_closed.inc()

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; keys are stable for tests and dumps."""
        return {
            "events_observed": self.events_observed,
            "events_skipped": self.events_skipped,
            "events_malformed": self.events_malformed,
            "violations": self.violations,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "latency": {
                name: hist.snapshot() for name, hist in sorted(self.latency.items())
            },
        }

    def format_text(self) -> str:
        """A compact human-readable dump (one counter per line)."""
        snap = self.snapshot()
        lines = [
            f"{key}={snap[key]}"
            for key in (
                "events_observed",
                "events_skipped",
                "events_malformed",
                "violations",
                "sessions_opened",
                "sessions_closed",
            )
        ]
        for name, hist in snap["latency"].items():
            lines.append(
                f"latency[{name}]: count={hist['count']} "
                f"mean={hist['mean_seconds'] * 1e6:.1f}µs"
            )
        return "\n".join(lines)

    async def periodic_dump(self, interval: float, out=None) -> None:
        """Print :meth:`format_text` every ``interval`` seconds until cancelled."""
        import sys

        out = out if out is not None else sys.stderr
        try:
            while True:
                await asyncio.sleep(interval)
                print(f"-- metrics --\n{self.format_text()}", file=out, flush=True)
        except asyncio.CancelledError:
            pass
