"""Merge Prometheus text dumps from N workers into one exposition.

A ``--procs N`` topology runs N independent processes, each with its own
:class:`~repro.obs.registry.MetricsRegistry` — so "the service's metrics"
are N scrapes, not one.  This module folds them into a single exposition
the way a federation-aware scraper would:

* **counters** sum across workers (events checked anywhere are events
  checked);
* **histograms** merge bucket-wise — cumulative ``_bucket`` series,
  ``_sum`` and ``_count`` are all plain sums, which is exactly the
  semantics of concatenating the underlying observation streams;
* **gauges** must *not* be summed (an intern-table size summed over
  workers counts shared structure N times), so each worker's series
  keeps its value and gains a ``worker="<i>"`` label.

The parser is deliberately narrow: it understands the subset of the text
exposition format that :meth:`MetricsRegistry.format_prometheus` emits
(``# HELP`` / ``# TYPE`` lines, samples with sorted labels, no escaping
beyond what label *values* in this codebase contain).  Families without
a ``TYPE`` line are treated as gauges — labeling by worker is the only
merge that is safe without knowing the semantics.
"""

from __future__ import annotations

import math
import re
from typing import Iterable

from repro.obs.registry import _fmt_labels, _fmt_value

__all__ = ["merge_prometheus"]

_SAMPLE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
_LABEL = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:\\.|[^"\\])*)"')
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(token: str) -> int | float:
    if re.fullmatch(r"[+-]?\d+", token):
        return int(token)
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)


class _Family:
    __slots__ = ("kind", "help", "series")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.help = ""
        #: (suffix, labels) → merged value.  ``suffix`` is "" for plain
        #: samples and one of ``_HISTOGRAM_SUFFIXES`` for histogram rows.
        self.series: dict[tuple[str, tuple[tuple[str, str], ...]], int | float] = {}


def _split_histogram_name(
    name: str, kinds: dict[str, str]
) -> tuple[str, str]:
    """``repro_x_bucket`` → (``repro_x``, ``_bucket``) when x is a histogram."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if kinds.get(base) == "histogram":
                return base, suffix
    return name, ""


def merge_prometheus(
    dumps: Iterable[tuple[object, str]], *, label: str = "worker"
) -> str:
    """Fold per-worker expositions into one.

    ``dumps`` yields ``(worker, text)`` pairs; ``worker`` (stringified)
    becomes the gauge label value.  Counter and histogram series with
    identical label sets are summed; gauges are kept per worker under an
    added ``label`` ("worker" by default).
    """
    families: dict[str, _Family] = {}
    for worker, text in dumps:
        kinds: dict[str, str] = {}
        lines = text.splitlines()
        for line in lines:
            if line.startswith("# TYPE "):
                parts = line.split(None, 3)
                if len(parts) >= 4:
                    name, kind = parts[2], parts[3]
                    kinds[name] = kind
                    family = families.setdefault(name, _Family(kind))
                    if family.kind == "untyped":
                        # a HELP line (or an untyped dump) got here first
                        family.kind = kind
            elif line.startswith("# HELP "):
                parts = line.split(None, 3)
                if len(parts) >= 3:
                    name = parts[2]
                    help_text = parts[3] if len(parts) == 4 else ""
                    family = families.setdefault(name, _Family("untyped"))
                    if help_text and not family.help:
                        family.help = help_text
        for line in lines:
            if not line or line.startswith("#"):
                continue
            match = _SAMPLE.match(line)
            if match is None:
                continue
            sample_name, label_blob, token = match.groups()
            labels = tuple(sorted(_LABEL.findall(label_blob or "")))
            value = _parse_value(token)
            base, suffix = _split_histogram_name(sample_name, kinds)
            family = families.setdefault(base, _Family("untyped"))
            if family.kind in ("counter", "histogram"):
                key = (suffix, labels)
                family.series[key] = family.series.get(key, 0) + value
            else:
                key = (suffix, tuple(sorted(labels + ((label, str(worker)),))))
                family.series[key] = value
    return _render(families)


def _le_sort_key(entry: tuple[str, int | float]) -> float:
    le_raw, _ = entry
    return math.inf if le_raw == "+Inf" else float(le_raw)


def _render(families: dict[str, _Family]) -> str:
    lines: list[str] = []
    for name in sorted(families):
        family = families[name]
        if not family.series:
            continue
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        if family.kind == "histogram":
            _render_histogram(lines, name, family)
            continue
        for (_suffix, labels), value in sorted(family.series.items()):
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram(lines: list[str], name: str, family: _Family) -> None:
    buckets: dict[tuple, list[tuple[str, int | float]]] = {}
    sums: dict[tuple, int | float] = {}
    counts: dict[tuple, int | float] = {}
    for (suffix, labels), value in family.series.items():
        if suffix == "_bucket":
            le_raw = dict(labels).get("le", "+Inf")
            base = tuple(pair for pair in labels if pair[0] != "le")
            buckets.setdefault(base, []).append((le_raw, value))
        elif suffix == "_sum":
            sums[labels] = value
        elif suffix == "_count":
            counts[labels] = value
    for base in sorted(set(buckets) | set(sums) | set(counts)):
        for le_raw, value in sorted(buckets.get(base, ()), key=_le_sort_key):
            le = _fmt_labels(base, f'le="{le_raw}"')
            lines.append(f"{name}_bucket{le} {_fmt_value(value)}")
        if base in sums:
            lines.append(
                f"{name}_sum{_fmt_labels(base)} {_fmt_value(sums[base])}"
            )
        if base in counts:
            lines.append(
                f"{name}_count{_fmt_labels(base)} {_fmt_value(counts[base])}"
            )
