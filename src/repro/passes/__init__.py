"""Normalization passes: a canonical IR between elaboration and compilation.

Every layer of the checker used to consume trace sets in whatever raw
shape :mod:`repro.oun.elaborate` or :mod:`repro.paper.specs` happened to
build them — nested ``FilterMachine``\\ s, unfused renames, ``TrueMachine``
conjuncts, hidden-event pools far wider than the events that can matter.
Definition 1 (prefix-closed predicate sets) licenses a family of
*trace-equivalent* rewrites; this package applies them once, up front, so
that DFA exploration (:mod:`repro.automata.build`), cache fingerprints
(:mod:`repro.checker.cache`) and registry interning
(:mod:`repro.service.registry`) all see one canonical form.

Two scopes (DESIGN.md §9):

* ``spec`` passes preserve the machine's observable behaviour for *every*
  consumer — composition re-wraps part machines in
  ``FilterMachine(part.alphabet, ·)``, monitors project events to the
  specification alphabet before stepping, and membership only evaluates
  the predicate on traces over the alphabet — so they are safe at
  elaboration time and for registry interning;
* ``compile`` passes additionally rewrite the *structure* of a
  ``ComposedTraceSet`` (dropping trivial parts, pruning the hidden-event
  pool).  They preserve the denoted trace set of that trace set but not
  the part list that :func:`~repro.core.composition.parts_of` reuses to
  build *future* compositions, so they run only on the copy handed to the
  DFA compiler.

The invariant every pass carries — the denoted trace set is unchanged —
is enforced by the randomized equivalence harness in
``tests/passes/test_equivalence_random.py`` (normalized vs. raw DFA
language equality over small universes).
"""

from __future__ import annotations

from repro.passes.base import (
    COMPILE_SCOPE,
    SPEC_SCOPE,
    Pass,
    PassPipeline,
    PipelineReport,
    default_passes,
    default_pipeline,
    normalization_enabled,
    normalize_machine,
    normalize_spec,
    normalize_traceset,
    use_normalization,
)
from repro.passes.explain import (
    SpecDiff,
    diff_specifications,
    explain_diff,
    format_spec_diff,
    explain_spec,
    format_machine_tree,
    format_traceset,
)
from repro.passes.machine_passes import (
    BooleanFoldPass,
    FilterFusionPass,
    ProjectionPushdownPass,
    RenameFusionPass,
)
from repro.passes.traceset_passes import PruneHiddenPoolPass, PruneTrivialPartsPass

__all__ = [
    "COMPILE_SCOPE",
    "SPEC_SCOPE",
    "Pass",
    "PassPipeline",
    "PipelineReport",
    "default_passes",
    "default_pipeline",
    "normalization_enabled",
    "normalize_machine",
    "normalize_spec",
    "normalize_traceset",
    "use_normalization",
    "SpecDiff",
    "diff_specifications",
    "explain_diff",
    "format_spec_diff",
    "explain_spec",
    "format_machine_tree",
    "format_traceset",
    "BooleanFoldPass",
    "FilterFusionPass",
    "ProjectionPushdownPass",
    "RenameFusionPass",
    "PruneHiddenPoolPass",
    "PruneTrivialPartsPass",
]
