"""Machine-tree rewrite passes (all ``spec`` scope).

Each pass here rewrites a machine into one with *identical ``ok``
behaviour on every event sequence* — not merely the same accepted
language.  Pointwise equivalence is the strongest soundness notion and
the easiest to audit: it survives every context a machine can appear in
(under ``NotMachine``, under a ``FilterMachine`` that feeds a filtered
subsequence, inside a composition product), so bottom-up application
needs no side conditions.

The one family of rewrites that is *not* pointwise — dropping a root
``FilterMachine`` whose set covers the trace-set alphabet — needs the
ambient alphabet as context and therefore lives in
:class:`ProjectionPushdownPass`, which rewrites at the trace-set level
where that alphabet is known (see the class docstring for why the
covered-filter drop is still safe for every consumer).

Rewrites are applied by :func:`rewrite_bottom_up`: children first (so a
rename fusion can expose a filter fusion in one round), then the root
rule to its own fixpoint.  Every rule strictly shrinks a syntactic
measure (node count, or identity-entry count of a rename), so the loops
terminate.
"""

from __future__ import annotations

from repro.core.alphabet import Alphabet
from repro.core.patterns import EventPattern
from repro.core.tracesets import (
    ComposedTraceSet,
    FullTraceSet,
    MachineTraceSet,
    Part,
    TraceSet,
)
from repro.machines.base import TraceMachine
from repro.machines.boolean import (
    AndMachine,
    FalseMachine,
    NotMachine,
    OrMachine,
    TrueMachine,
)
from repro.machines.counting import CounterDef, CountingMachine
from repro.machines.projection import FilterMachine
from repro.machines.rename import RenameMachine
from repro.passes.base import SPEC_SCOPE, Pass

__all__ = [
    "MachinePass",
    "rewrite_bottom_up",
    "RenameFusionPass",
    "FilterFusionPass",
    "BooleanFoldPass",
    "ProjectionPushdownPass",
]


# ----------------------------------------------------------------------
# generic tree traversal
# ----------------------------------------------------------------------

def _children(m: TraceMachine) -> tuple[TraceMachine, ...]:
    """Rewritable sub-machines.

    ``ForallMachine`` bodies hide behind a factory closure and regex /
    counting machines are leaves for tree purposes — both return ``()``.
    """
    if isinstance(m, (AndMachine, OrMachine)):
        return m.parts
    if isinstance(m, NotMachine):
        return (m.inner,)
    if isinstance(m, FilterMachine):
        return (m.inner,)
    if isinstance(m, RenameMachine):
        return (m.inner,)
    return ()


def _rebuild(m: TraceMachine, children: tuple[TraceMachine, ...]) -> TraceMachine:
    if isinstance(m, AndMachine):
        return AndMachine(children)
    if isinstance(m, OrMachine):
        return OrMachine(children)
    if isinstance(m, NotMachine):
        return NotMachine(children[0])
    if isinstance(m, FilterMachine):
        return FilterMachine(m.event_set, children[0])
    if isinstance(m, RenameMachine):
        return RenameMachine(m.inverse, children[0])
    raise AssertionError(f"not a rebuildable machine: {m!r}")


def rewrite_bottom_up(machine: TraceMachine, rule) -> tuple[TraceMachine, int]:
    """Apply ``rule(m) -> m' | None`` everywhere, children before parents.

    Returns the rewritten machine and the number of rule firings.  The
    root rule is looped to its own fixpoint (a firing may expose another
    — ``Rename(Rename(Rename ...))`` fuses pairwise).
    """
    count = 0
    kids = _children(machine)
    if kids:
        new_kids = []
        changed = False
        for k in kids:
            nk, n = rewrite_bottom_up(k, rule)
            count += n
            changed = changed or nk is not k
            new_kids.append(nk)
        if changed:
            machine = _rebuild(machine, tuple(new_kids))
    while True:
        out = rule(machine)
        if out is None:
            return machine, count
        machine = out
        count += 1


class MachinePass(Pass):
    """A pass defined by one local (pointwise-sound) rewrite rule."""

    scope = SPEC_SCOPE

    def rewrite(self, m: TraceMachine) -> TraceMachine | None:
        """Rewrite ``m`` at the root, or ``None`` when nothing applies."""
        raise NotImplementedError

    def run_machine(self, machine: TraceMachine) -> tuple[TraceMachine, int]:
        return rewrite_bottom_up(machine, self.rewrite)

    def run(self, ts: TraceSet) -> tuple[TraceSet, int]:
        if isinstance(ts, MachineTraceSet):
            m, n = self.run_machine(ts.predicate)
            if n == 0:
                return ts, 0
            return MachineTraceSet(ts.alphabet, m), n
        if isinstance(ts, ComposedTraceSet):
            # Part machines are only ever consumed under
            # ``FilterMachine(part.alphabet, ·)`` (``_machines()`` in both
            # the membership search and the compiler), so pointwise
            # rewrites apply to them unconditionally.
            count = 0
            parts = []
            for p in ts.parts:
                m, n = self.run_machine(p.machine)
                count += n
                parts.append(Part(p.alphabet, m) if n else p)
            if count == 0:
                return ts, 0
            return ComposedTraceSet(
                alphabet=ts.alphabet,
                combined=ts.combined,
                internal=ts.internal,
                parts=tuple(parts),
                hidden_pool=ts.hidden_pool,
            ), count
        return ts, 0


# ----------------------------------------------------------------------
# the rules
# ----------------------------------------------------------------------


class RenameFusionPass(MachinePass):
    """Fuse nested renames, drop identity entries and identity renames.

    * ``Rename(σ, Rename(τ, M)) → Rename(τ∘σ, M)`` — the outer machine
      translates each event through σ then hands it to the inner, which
      translates through τ; one map computing ``τ(σ(v))`` per position is
      pointwise identical (``rename_event`` applies its mapping once per
      position).
    * entries ``v ↦ v`` never change an event; dropping them is a no-op
      on behaviour, and a rename whose map becomes empty *is* its inner
      machine (same states, same steps, same ``ok``).
    * ``Rename(σ, True/False)`` is the constant machine itself.
    """

    name = "rename-fusion"

    def rewrite(self, m: TraceMachine) -> TraceMachine | None:
        if not isinstance(m, RenameMachine):
            return None
        if isinstance(m.inner, (TrueMachine, FalseMachine)):
            return m.inner
        inv = {k: v for k, v in m.inverse.items() if k != v}
        if not inv:
            return m.inner
        if isinstance(m.inner, RenameMachine):
            outer, inner = inv, m.inner.inverse
            fused = {}
            for v in set(outer) | set(inner):
                w = outer.get(v, v)
                w = inner.get(w, w)
                if w != v:
                    fused[v] = w
            return RenameMachine(fused, m.inner.inner)
        if len(inv) != len(m.inverse):
            return RenameMachine(inv, m.inner)
        return None


class FilterFusionPass(MachinePass):
    """Fuse nested filters, collapse trivial filters, push into counters.

    * ``Filter(S₁, Filter(S₂, M))`` steps ``M`` exactly on ``e ∈ S₁∩S₂``;
      when one alphabet contains the other (decided exactly by
      ``Alphabet.is_subset``) the smaller filter alone is pointwise
      identical.
    * ``Filter(S, True/False)`` is the constant machine (single state,
      constant ``ok``).
    * ``Filter(S, Counting)`` with every counter unpatterned becomes the
      counting machine with each counter patterned by ``S``: a counter's
      ``delta`` is 0 outside ``S`` either way, and re-writing an integer
      tuple with all-zero deltas is the tuple itself (saturation clamps
      already-clamped values).  This is the "pushdown into counting
      machines" of the pipeline: the filter node disappears and the DFA
      exploration steps one machine instead of two.  (Regex machines kill
      configurations on non-matching events instead of skipping them, so
      a filter can NOT be pushed into a ``PrsMachine``; for those the win
      comes from :class:`ProjectionPushdownPass` dropping covered root
      filters.)
    """

    name = "filter-fusion"

    def rewrite(self, m: TraceMachine) -> TraceMachine | None:
        if not isinstance(m, FilterMachine):
            return None
        if isinstance(m.inner, (TrueMachine, FalseMachine)):
            return m.inner
        if (
            isinstance(m.inner, FilterMachine)
            and isinstance(m.event_set, Alphabet)
            and isinstance(m.inner.event_set, Alphabet)
        ):
            outer, inner = m.event_set, m.inner.event_set
            if inner.is_subset(outer):
                return m.inner
            if outer.is_subset(inner):
                return FilterMachine(outer, m.inner.inner)
        if (
            isinstance(m.inner, CountingMachine)
            and isinstance(m.event_set, (Alphabet, EventPattern))
            and all(c.pattern is None for c in m.inner.counters)
        ):
            counters = tuple(
                CounterDef(c.terms, m.event_set) for c in m.inner.counters
            )
            return CountingMachine(
                counters, m.inner.condition, m.inner.saturate_at
            )
        return None


class BooleanFoldPass(MachinePass):
    """Constant-fold boolean machines.

    All pointwise: ``ok`` of a product state is a pure boolean function
    of the component ``ok``\\ s, evaluated prefix by prefix.

    * flatten ``And(And(a,b),c) → And(a,b,c)`` (and dually for ``Or``);
    * ``True ∧ M → M``, ``False ∨ M → M`` (unit), ``False ∧ M → False``,
      ``True ∨ M → True`` (absorption — constant at every prefix);
    * drop duplicate operands, identified by structural fingerprint
      (machines are deterministic functions of their definitional
      content, so equal fingerprints mean pointwise-equal behaviour;
      unfingerprintable operands are conservatively kept);
    * unwrap singleton products, ``¬¬M → M``, ``¬True → False``,
      ``¬False → True``.
    """

    name = "boolean-fold"

    def rewrite(self, m: TraceMachine) -> TraceMachine | None:
        if isinstance(m, NotMachine):
            if isinstance(m.inner, TrueMachine):
                return FalseMachine()
            if isinstance(m.inner, FalseMachine):
                return TrueMachine()
            if isinstance(m.inner, NotMachine):
                return m.inner.inner
            return None
        if not isinstance(m, (AndMachine, OrMachine)):
            return None
        is_and = isinstance(m, AndMachine)
        unit = TrueMachine if is_and else FalseMachine
        zero = FalseMachine if is_and else TrueMachine
        parts: list[TraceMachine] = []
        fingerprints: set[str] = set()
        changed = False
        stack = list(reversed(m.parts))
        while stack:
            p = stack.pop()
            if type(p) is type(m):
                stack.extend(reversed(p.parts))
                changed = True
                continue
            if isinstance(p, unit):
                changed = True
                continue
            if isinstance(p, zero):
                return zero()
            fp = _try_fingerprint(p)
            if fp is not None:
                if fp in fingerprints:
                    changed = True
                    continue
                fingerprints.add(fp)
            parts.append(p)
        if not parts:
            return unit()
        if len(parts) == 1:
            return parts[0]
        if changed:
            return AndMachine(parts) if is_and else OrMachine(parts)
        return None


def _try_fingerprint(machine: TraceMachine) -> str | None:
    # Lazy: repro.checker imports repro.passes (via compile), so the
    # reverse module-level import would cycle.
    from repro.checker.fingerprint import fingerprint

    from repro.core.errors import FingerprintError

    try:
        return fingerprint(machine)
    except FingerprintError:
        return None


class ProjectionPushdownPass(Pass):
    """Drop root filters covered by the ambient alphabet.

    The one alphabet-*relative* pass: ``FilterMachine(S, M)`` at the top
    of a trace-set predicate is pointless when ``α ⊆ S`` — every event
    the machine will ever see is already in ``S``, so the filter passes
    everything and the node is pure overhead per step.  "Every event it
    will ever see" holds for all consumers of a trace set:

    * membership (``MachineTraceSet.contains``) checks ``over_alphabet``
      before running the predicate;
    * runtime monitors project events to the specification alphabet
      before stepping (``SpecMonitor.observe``);
    * compilation enumerates letters from the trace-set alphabet;
    * composition wraps every part machine in
      ``FilterMachine(part.alphabet, ·)``, so a part machine only ever
      sees events of its part alphabet — which makes the same drop valid
      at the top of each part, relative to the *part* alphabet.

    Also rewrites ``MachineTraceSet(α, True) → FullTraceSet(α)`` so the
    trivial predicate has one canonical spelling (one fingerprint, one
    cache entry, and a shape :class:`~repro.passes.traceset_passes.PruneTrivialPartsPass`
    and the compiler's fast path recognise).
    """

    name = "projection-pushdown"
    scope = SPEC_SCOPE

    @staticmethod
    def _drop_covered(machine: TraceMachine, alphabet: Alphabet):
        n = 0
        while (
            isinstance(machine, FilterMachine)
            and isinstance(machine.event_set, Alphabet)
            and alphabet.is_subset(machine.event_set)
        ):
            machine = machine.inner
            n += 1
        return machine, n

    def run(self, ts: TraceSet) -> tuple[TraceSet, int]:
        if isinstance(ts, MachineTraceSet):
            m, n = self._drop_covered(ts.predicate, ts.alphabet)
            if isinstance(m, TrueMachine):
                return FullTraceSet(ts.alphabet), n + 1
            if n == 0:
                return ts, 0
            return MachineTraceSet(ts.alphabet, m), n
        if isinstance(ts, ComposedTraceSet):
            count = 0
            parts = []
            for p in ts.parts:
                m, n = self._drop_covered(p.machine, p.alphabet)
                count += n
                parts.append(Part(p.alphabet, m) if n else p)
            if count == 0:
                return ts, 0
            return ComposedTraceSet(
                alphabet=ts.alphabet,
                combined=ts.combined,
                internal=ts.internal,
                parts=tuple(parts),
                hidden_pool=ts.hidden_pool,
            ), count
        return ts, 0

    def run_machine(self, machine: TraceMachine) -> tuple[TraceMachine, int]:
        # Without a trace set there is no ambient alphabet to compare
        # against; nothing is safe to drop.
        return machine, 0
