"""Human-readable machine trees and the ``repro explain`` report.

``explain_spec`` shows what normalization does to one specification: the
machine tree before, the tree after, and the per-pass rewrite counts —
the observable half of the pipeline's "canonical IR" claim, and the
quickest way to see why a cache key changed (or stopped changing).
"""

from __future__ import annotations

from repro.core.tracesets import (
    ComposedTraceSet,
    FullTraceSet,
    MachineTraceSet,
    TraceSet,
)
from repro.machines.base import TraceMachine
from repro.machines.boolean import (
    AndMachine,
    FalseMachine,
    NotMachine,
    OrMachine,
    TrueMachine,
)
from repro.machines.projection import FilterMachine, OnlyMachine
from repro.machines.rename import RenameMachine
from repro.passes.base import (
    COMPILE_SCOPE,
    PassPipeline,
    PipelineReport,
    default_passes,
)

__all__ = ["format_machine_tree", "format_traceset", "explain_spec"]


def _label(m: TraceMachine) -> str:
    if isinstance(m, TrueMachine):
        return "True"
    if isinstance(m, FalseMachine):
        return "False"
    if isinstance(m, AndMachine):
        return "And"
    if isinstance(m, OrMachine):
        return "Or"
    if isinstance(m, NotMachine):
        return "Not"
    if isinstance(m, FilterMachine):
        return f"Filter[{m.event_set}]"
    if isinstance(m, RenameMachine):
        pairs = ", ".join(
            f"{k}→{v}" for k, v in sorted(m.inverse.items(), key=repr)
        )
        return f"Rename[{pairs}]"
    if isinstance(m, OnlyMachine):
        return f"Only[{m.event_set}]"
    return repr(m)


def _machine_children(m: TraceMachine) -> tuple[TraceMachine, ...]:
    if isinstance(m, (AndMachine, OrMachine)):
        return m.parts
    if isinstance(m, (NotMachine, FilterMachine, RenameMachine)):
        return (m.inner,)
    return ()


def format_machine_tree(machine: TraceMachine, indent: str = "") -> str:
    """One line per node, children indented two spaces under the parent."""
    lines = [indent + _label(machine)]
    for child in _machine_children(machine):
        lines.append(format_machine_tree(child, indent + "  "))
    return "\n".join(lines)


def format_traceset(ts: TraceSet, indent: str = "") -> str:
    """The trace-set shape with each machine rendered as a tree."""
    if isinstance(ts, FullTraceSet):
        return indent + "FullTraceSet (Seq[α])"
    if isinstance(ts, MachineTraceSet):
        return (
            indent
            + "MachineTraceSet\n"
            + format_machine_tree(ts.predicate, indent + "  ")
        )
    if isinstance(ts, ComposedTraceSet):
        lines = [indent + f"ComposedTraceSet ({len(ts.parts)} part(s))"]
        for i, p in enumerate(ts.parts):
            lines.append(indent + f"  part {i}: α = {p.alphabet}")
            lines.append(format_machine_tree(p.machine, indent + "    "))
        source = ts.hidden_source()
        lines.append(
            indent
            + f"  hidden pool: {len(source.patterns)} pattern(s)"
            + ("" if ts.hidden_pool is None else " (pruned)")
        )
        return "\n".join(lines)
    return indent + repr(ts)


def explain_spec(spec, scope: str = COMPILE_SCOPE) -> str:
    """The before/after normalization report for one specification.

    Runs a *fresh* pipeline (so the report's counters cover exactly this
    spec, not whatever the process-wide pipeline accumulated) at
    ``scope`` — by default the compile scope the DFA builder uses.
    """
    pipeline = PassPipeline(default_passes())
    normalized, report = pipeline.run(spec.traces, scope)
    lines = [
        f"specification {spec.name}",
        f"  alphabet: {spec.alphabet}",
        "",
        "before normalization:",
        format_traceset(spec.traces, "  "),
        "",
        "after normalization:",
        format_traceset(normalized, "  "),
        "",
        "passes:",
        report.format_text(),
    ]
    return "\n".join(lines)
