"""Human-readable machine trees and the ``repro explain`` report.

``explain_spec`` shows what normalization does to one specification: the
machine tree before, the tree after, and the per-pass rewrite counts —
the observable half of the pipeline's "canonical IR" claim, and the
quickest way to see why a cache key changed (or stopped changing).

``explain_diff`` compares two whole documents *post-normalization* —
specs added/removed, machines changed by content fingerprint, alphabet
deltas — which is refinement-step granularity: what actually changed
between two spellings of a system, not how the text moved around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.specification import Specification
from repro.core.tracesets import (
    ComposedTraceSet,
    FullTraceSet,
    MachineTraceSet,
    TraceSet,
)
from repro.machines.base import TraceMachine
from repro.machines.boolean import (
    AndMachine,
    FalseMachine,
    NotMachine,
    OrMachine,
    TrueMachine,
)
from repro.machines.projection import FilterMachine, OnlyMachine
from repro.machines.rename import RenameMachine
from repro.passes.base import (
    COMPILE_SCOPE,
    PassPipeline,
    PipelineReport,
    default_passes,
)

__all__ = [
    "format_machine_tree",
    "format_traceset",
    "explain_spec",
    "SpecDiff",
    "diff_specifications",
    "explain_diff",
    "format_spec_diff",
]


def _label(m: TraceMachine) -> str:
    if isinstance(m, TrueMachine):
        return "True"
    if isinstance(m, FalseMachine):
        return "False"
    if isinstance(m, AndMachine):
        return "And"
    if isinstance(m, OrMachine):
        return "Or"
    if isinstance(m, NotMachine):
        return "Not"
    if isinstance(m, FilterMachine):
        return f"Filter[{m.event_set}]"
    if isinstance(m, RenameMachine):
        pairs = ", ".join(
            f"{k}→{v}" for k, v in sorted(m.inverse.items(), key=repr)
        )
        return f"Rename[{pairs}]"
    if isinstance(m, OnlyMachine):
        return f"Only[{m.event_set}]"
    return repr(m)


def _machine_children(m: TraceMachine) -> tuple[TraceMachine, ...]:
    if isinstance(m, (AndMachine, OrMachine)):
        return m.parts
    if isinstance(m, (NotMachine, FilterMachine, RenameMachine)):
        return (m.inner,)
    return ()


def format_machine_tree(machine: TraceMachine, indent: str = "") -> str:
    """One line per node, children indented two spaces under the parent."""
    lines = [indent + _label(machine)]
    for child in _machine_children(machine):
        lines.append(format_machine_tree(child, indent + "  "))
    return "\n".join(lines)


def format_traceset(ts: TraceSet, indent: str = "") -> str:
    """The trace-set shape with each machine rendered as a tree."""
    if isinstance(ts, FullTraceSet):
        return indent + "FullTraceSet (Seq[α])"
    if isinstance(ts, MachineTraceSet):
        return (
            indent
            + "MachineTraceSet\n"
            + format_machine_tree(ts.predicate, indent + "  ")
        )
    if isinstance(ts, ComposedTraceSet):
        lines = [indent + f"ComposedTraceSet ({len(ts.parts)} part(s))"]
        for i, p in enumerate(ts.parts):
            lines.append(indent + f"  part {i}: α = {p.alphabet}")
            lines.append(format_machine_tree(p.machine, indent + "    "))
        source = ts.hidden_source()
        lines.append(
            indent
            + f"  hidden pool: {len(source.patterns)} pattern(s)"
            + ("" if ts.hidden_pool is None else " (pruned)")
        )
        return "\n".join(lines)
    return indent + repr(ts)


def explain_spec(spec, scope: str = COMPILE_SCOPE) -> str:
    """The before/after normalization report for one specification.

    Runs a *fresh* pipeline (so the report's counters cover exactly this
    spec, not whatever the process-wide pipeline accumulated) at
    ``scope`` — by default the compile scope the DFA builder uses.
    """
    pipeline = PassPipeline(default_passes())
    normalized, report = pipeline.run(spec.traces, scope)
    lines = [
        f"specification {spec.name}",
        f"  alphabet: {spec.alphabet}",
        "",
        "before normalization:",
        format_traceset(spec.traces, "  "),
        "",
        "after normalization:",
        format_traceset(normalized, "  "),
        "",
        "passes:",
        report.format_text(),
    ]
    return "\n".join(lines)


# -- document diffing --------------------------------------------------------

#: Rendered fingerprint width: enough to tell any two machines apart in
#: a report while keeping the columns readable.
_SHORT_FP = 12


def _content_key(spec: Specification) -> str | None:
    """The spec's post-normalization content fingerprint, or ``None``.

    ``None`` means the trace set has no stable identity (machines built
    from unfingerprintable closures); the diff conservatively reports
    such a spec as changed whenever it appears on both sides.
    """
    # Function-level import: the checker layer imports repro.passes, so
    # a module-level import here would cycle.
    from repro.checker.fingerprint import fingerprint

    from repro.core.errors import FingerprintError
    from repro.passes.base import SPEC_SCOPE, normalize_traceset

    try:
        return fingerprint(normalize_traceset(spec.traces, SPEC_SCOPE))
    except FingerprintError:
        return None


@dataclass(frozen=True, slots=True)
class SpecDiff:
    """What changed between two documents, post-normalization.

    ``fingerprints`` maps every name present on either side to its
    ``(old, new)`` content fingerprints (``None`` for absent or
    unfingerprintable sides); ``alphabet_deltas`` maps each *changed*
    name to the pattern spellings ``(removed, added)`` by its alphabet.
    """

    added: tuple[str, ...]
    removed: tuple[str, ...]
    changed: tuple[str, ...]
    unchanged: tuple[str, ...]
    fingerprints: dict[str, tuple[str | None, str | None]]
    alphabet_deltas: dict[str, tuple[tuple[str, ...], tuple[str, ...]]]

    @property
    def differs(self) -> bool:
        return bool(self.added or self.removed or self.changed)


def diff_specifications(
    old: dict[str, Specification], new: dict[str, Specification]
) -> SpecDiff:
    """Diff two elaborated documents by normalized machine content.

    Change detection fingerprints each spec's trace set in canonical
    spec-scope normalized form — the same identity the registry interns
    machines under — so reordering declarations, renaming bound
    variables the regex parser erases, or adding a redundant ``True``
    conjunct all diff as *unchanged*.
    """
    added, removed, changed, unchanged = [], [], [], []
    fingerprints: dict[str, tuple[str | None, str | None]] = {}
    alphabet_deltas: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {}
    for name in list(old) + [n for n in new if n not in old]:
        old_spec = old.get(name)
        new_spec = new.get(name)
        old_fp = _content_key(old_spec) if old_spec is not None else None
        new_fp = _content_key(new_spec) if new_spec is not None else None
        fingerprints[name] = (old_fp, new_fp)
        if old_spec is None:
            added.append(name)
            continue
        if new_spec is None:
            removed.append(name)
            continue
        same = (
            old_fp is not None
            and old_fp == new_fp
            and old_spec.alphabet == new_spec.alphabet
        )
        if same:
            unchanged.append(name)
            continue
        changed.append(name)
        old_patterns = {str(p) for p in old_spec.alphabet.patterns}
        new_patterns = {str(p) for p in new_spec.alphabet.patterns}
        alphabet_deltas[name] = (
            tuple(sorted(old_patterns - new_patterns)),
            tuple(sorted(new_patterns - old_patterns)),
        )
    return SpecDiff(
        tuple(added),
        tuple(removed),
        tuple(changed),
        tuple(unchanged),
        fingerprints,
        alphabet_deltas,
    )


def _short(fp: str | None) -> str:
    return fp[:_SHORT_FP] if fp else "-"


def explain_diff(
    old: dict[str, Specification], new: dict[str, Specification]
) -> str:
    """The ``repro explain --diff`` report over two elaborated documents."""
    return format_spec_diff(diff_specifications(old, new))


def format_spec_diff(diff: SpecDiff) -> str:
    """Render one computed :class:`SpecDiff` as the column report."""
    from repro.obs.export import format_columns

    rows = [("spec", "status", "old", "new")]
    for name, status in (
        [(n, "added") for n in diff.added]
        + [(n, "removed") for n in diff.removed]
        + [(n, "changed") for n in diff.changed]
        + [(n, "unchanged") for n in diff.unchanged]
    ):
        old_fp, new_fp = diff.fingerprints[name]
        rows.append((name, status, _short(old_fp), _short(new_fp)))
    lines = [
        f"post-normalization diff: {len(diff.added)} added, "
        f"{len(diff.removed)} removed, {len(diff.changed)} changed, "
        f"{len(diff.unchanged)} unchanged",
        "",
        format_columns(rows, "  "),
    ]
    for name in diff.changed:
        gone, came = diff.alphabet_deltas[name]
        if not gone and not came:
            continue
        lines.append("")
        lines.append(f"alphabet delta of {name}:")
        lines.extend(f"  - {p}" for p in gone)
        lines.extend(f"  + {p}" for p in came)
    if not diff.differs:
        lines.append("")
        lines.append("documents are equivalent post-normalization")
    return "\n".join(lines)
