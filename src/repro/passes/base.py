"""The ``Pass`` protocol, the ``PassPipeline``, and the ambient toggle.

A pass is a pure function on trace sets: ``run(ts)`` returns a rewritten
trace set plus how many rewrites fired.  Passes never mutate their input
and never change the trace set's alphabet — the pipeline checks that
invariant after every pass (a violated alphabet would silently change the
universe instantiation and hence the compiled DFA's letters).

The pipeline applies its passes in order, round after round, until a full
round fires no rewrite (or ``max_rounds`` is hit): passes interact —
rename fusion can expose a filter fusion which can expose a boolean fold
— and a bounded fixpoint keeps the interaction simple to reason about.
Per-pass rewrite counts and wall time accumulate in a
:class:`~repro.obs.metrics.NormalizationMetrics` (mirrored into the
unified :mod:`repro.obs` registry) and in the per-run
:class:`PipelineReport` used by ``repro explain``; each pass application
also opens a ``normalize.<pass>`` span when tracing is on.

Normalization is *on* by default and ambiently toggleable
(:func:`use_normalization`), mirroring the machine cache's ContextVar
plumbing — the CLI's ``--no-normalize`` and the engine's workers use the
same switch.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import dataclass, field

from repro.core.errors import SpecificationError
from repro.core.specification import Specification
from repro.core.tracesets import TraceSet
from repro.machines.base import TraceMachine
from repro.obs.trace import span

__all__ = [
    "SPEC_SCOPE",
    "COMPILE_SCOPE",
    "Pass",
    "PassPipeline",
    "PipelineReport",
    "default_passes",
    "default_pipeline",
    "normalization_enabled",
    "use_normalization",
    "normalize_traceset",
    "normalize_machine",
    "normalize_spec",
]

#: Scope of passes that preserve behaviour for every consumer of the
#: trace set (elaboration, registry interning, further composition).
SPEC_SCOPE = "spec"
#: Scope of passes that additionally rewrite composed-trace-set structure
#: and are therefore applied only to the copy handed to the DFA compiler.
COMPILE_SCOPE = "compile"


class Pass:
    """One trace-equivalent rewrite pass.

    Subclasses set ``name`` and ``scope`` and implement :meth:`run`;
    machine-level passes also implement :meth:`run_machine` so the
    pipeline can normalize a bare machine (elaboration works on machines
    before any trace set exists).

    The proof obligation every subclass carries: for every trace ``h``
    over the trace set's alphabet, ``h ∈ run(ts)[0] ⟺ h ∈ ts``
    (DESIGN.md §9 states the per-pass argument).
    """

    name: str = "pass"
    scope: str = SPEC_SCOPE

    def run(self, ts: TraceSet) -> tuple[TraceSet, int]:
        raise NotImplementedError

    def run_machine(self, machine: TraceMachine) -> tuple[TraceMachine, int]:
        """Rewrite a bare machine; trace-set-structure passes are no-ops."""
        return machine, 0


@dataclass
class PassApplication:
    """Accumulated effect of one pass across a pipeline run."""

    name: str
    scope: str
    rewrites: int = 0
    seconds: float = 0.0


@dataclass
class PipelineReport:
    """What one pipeline run did: per-pass counters, in order."""

    scope: str
    rounds: int = 0
    applications: list[PassApplication] = field(default_factory=list)

    def record(self, name: str, scope: str, rewrites: int, seconds: float) -> None:
        for app in self.applications:
            if app.name == name:
                app.rewrites += rewrites
                app.seconds += seconds
                return
        self.applications.append(PassApplication(name, scope, rewrites, seconds))

    @property
    def total_rewrites(self) -> int:
        return sum(app.rewrites for app in self.applications)

    def format_text(self) -> str:
        from repro.obs.export import format_columns

        rows = [
            (
                app.name,
                f"{app.rewrites:4d} rewrite(s)",
                f"{app.seconds * 1e3:7.2f} ms",
                f"[{app.scope}]",
            )
            for app in self.applications
        ]
        table = format_columns(rows, indent="  ")
        total = (
            f"  total: {self.total_rewrites} rewrite(s) in "
            f"{self.rounds} round(s)"
        )
        return f"{table}\n{total}" if table else total


class PassPipeline:
    """An ordered pass list applied to a bounded fixpoint."""

    def __init__(
        self,
        passes,
        max_rounds: int = 5,
        metrics=None,
    ) -> None:
        self.passes = tuple(passes)
        if max_rounds < 1:
            raise SpecificationError("pipeline needs at least one round")
        self.max_rounds = max_rounds
        if metrics is None:
            from repro.obs.metrics import NormalizationMetrics

            metrics = NormalizationMetrics()
        self.metrics = metrics

    def passes_for(self, scope: str) -> tuple[Pass, ...]:
        if scope == COMPILE_SCOPE:
            return self.passes
        return tuple(p for p in self.passes if p.scope == SPEC_SCOPE)

    def run(self, ts: TraceSet, scope: str = COMPILE_SCOPE):
        """Normalize a trace set; returns ``(trace set, PipelineReport)``."""
        report = PipelineReport(scope=scope)
        chosen = self.passes_for(scope)
        with span("normalize.pipeline", scope=scope) as pipeline_span:
            ts = self._run_rounds(ts, chosen, report)
            pipeline_span.set(
                rewrites=report.total_rewrites, rounds=report.rounds
            )
        self.metrics.record_run(report.total_rewrites)
        return ts, report

    def _run_rounds(self, ts: TraceSet, chosen, report: PipelineReport) -> TraceSet:
        for _ in range(self.max_rounds):
            report.rounds += 1
            fired = 0
            for p in chosen:
                start = time.perf_counter()
                with span(f"normalize.{p.name}") as pass_span:
                    out, n = p.run(ts)
                    pass_span.set(rewrites=n)
                seconds = time.perf_counter() - start
                # The alphabet invariant is what lets the compiler reuse
                # one interned letter table across raw and normalized
                # forms (repro.checker.compile.instantiated_letters):
                # enforce it whenever a pass returns a new object, even
                # one it claims rewrote nothing.
                if out is not ts and out.alphabet != ts.alphabet:
                    raise SpecificationError(
                        f"pass {p.name!r} changed the trace-set alphabet — "
                        f"every pass must preserve it"
                    )
                ts = out
                fired += n
                report.record(p.name, p.scope, n, seconds)
                self.metrics.record_pass(p.name, n, seconds)
            if fired == 0:
                break
        return ts

    def normalize_traceset(self, ts: TraceSet, scope: str = COMPILE_SCOPE) -> TraceSet:
        return self.run(ts, scope)[0]

    def normalize_machine(self, machine: TraceMachine) -> TraceMachine:
        """Normalize a bare machine with the spec-scope machine passes."""
        with span("normalize.machine") as machine_span:
            total = 0
            for _ in range(self.max_rounds):
                fired = 0
                for p in self.passes_for(SPEC_SCOPE):
                    start = time.perf_counter()
                    with span(f"normalize.{p.name}") as pass_span:
                        machine, n = p.run_machine(machine)
                        pass_span.set(rewrites=n)
                    seconds = time.perf_counter() - start
                    fired += n
                    self.metrics.record_pass(p.name, n, seconds)
                total += fired
                if fired == 0:
                    break
            machine_span.set(rewrites=total)
        return machine


# ----------------------------------------------------------------------
# the default pipeline and the ambient toggle
# ----------------------------------------------------------------------


def default_passes() -> tuple[Pass, ...]:
    """The standard pass order (each pass documents its equivalence proof)."""
    from repro.passes.machine_passes import (
        BooleanFoldPass,
        FilterFusionPass,
        ProjectionPushdownPass,
        RenameFusionPass,
    )
    from repro.passes.traceset_passes import (
        PruneHiddenPoolPass,
        PruneTrivialPartsPass,
    )

    return (
        RenameFusionPass(),
        FilterFusionPass(),
        BooleanFoldPass(),
        ProjectionPushdownPass(),
        PruneTrivialPartsPass(),
        PruneHiddenPoolPass(),
    )


_DEFAULT_PIPELINE: PassPipeline | None = None


def default_pipeline() -> PassPipeline:
    """The process-wide pipeline (and its accumulated metrics)."""
    global _DEFAULT_PIPELINE
    if _DEFAULT_PIPELINE is None:
        _DEFAULT_PIPELINE = PassPipeline(default_passes())
    return _DEFAULT_PIPELINE


_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_normalization", default=True
)


def normalization_enabled() -> bool:
    """Whether the ambient toggle currently enables normalization."""
    return _ENABLED.get()


@contextlib.contextmanager
def use_normalization(enabled: bool):
    """Ambiently enable/disable normalization for a block (ContextVar)."""
    token = _ENABLED.set(bool(enabled))
    try:
        yield
    finally:
        _ENABLED.reset(token)


def normalize_traceset(ts: TraceSet, scope: str = COMPILE_SCOPE) -> TraceSet:
    """Normalize through the default pipeline, respecting the toggle."""
    if not normalization_enabled():
        return ts
    return default_pipeline().normalize_traceset(ts, scope)


def normalize_machine(machine: TraceMachine) -> TraceMachine:
    """Normalize a bare machine (spec scope), respecting the toggle."""
    if not normalization_enabled():
        return machine
    return default_pipeline().normalize_machine(machine)


def normalize_spec(spec: Specification, scope: str = SPEC_SCOPE) -> Specification:
    """A specification with its trace set normalized (alphabet unchanged)."""
    traces = normalize_traceset(spec.traces, scope)
    if traces is spec.traces:
        return spec
    return Specification(spec.name, spec.objects, spec.alphabet, traces)
