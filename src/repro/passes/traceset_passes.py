"""Composed-trace-set structure passes (``compile`` scope).

These two passes preserve the *denoted trace set* of a
``ComposedTraceSet`` but change structure that other layers reuse for
purposes beyond denotation — ``parts_of`` flattens ``parts`` into future
compositions (where a dropped trivial part would narrow the future
combined alphabet), and ``combined`` feeds universe base-sort discovery.
They therefore run only on the copy handed to the DFA compiler
(:func:`repro.checker.compile.traceset_dfa`), never on the trace set a
specification carries.
"""

from __future__ import annotations

import dataclasses

from repro.core.alphabet import Alphabet
from repro.core.tracesets import ComposedTraceSet, TraceSet
from repro.machines.boolean import TrueMachine
from repro.passes.base import COMPILE_SCOPE, Pass

__all__ = ["PruneTrivialPartsPass", "PruneHiddenPoolPass"]


class PruneTrivialPartsPass(Pass):
    """Drop ``TrueMachine`` parts from a composition product.

    A part contributes ``FilterMachine(part.alphabet, TrueMachine())`` to
    the product — a single-state component whose ``ok`` is constantly
    true.  Removing it is a bijection on product states that changes no
    ``ok`` value, so the witness search and the subset construction
    accept exactly the same observable traces while stepping one machine
    fewer per event.  (``Read ‖ Client`` drops the ``Read`` component
    entirely: Example 1's ``T(Read) = Seq[α]``.)

    Compile scope: the part list also records which alphabets future
    compositions union over (``parts_of``), and a full-trace-set part
    must keep contributing its alphabet there.
    """

    name = "prune-trivial-parts"
    scope = COMPILE_SCOPE

    def run(self, ts: TraceSet) -> tuple[TraceSet, int]:
        if not isinstance(ts, ComposedTraceSet):
            return ts, 0
        kept = tuple(
            p for p in ts.parts if not isinstance(p.machine, TrueMachine)
        )
        dropped = len(ts.parts) - len(kept)
        if dropped == 0:
            return ts, 0
        return dataclasses.replace(ts, parts=kept), dropped


class PruneHiddenPoolPass(Pass):
    """Restrict hidden-event instantiation to patterns some part can see.

    Hidden candidate events are instantiated from the combined-alphabet
    patterns; a pattern disjoint from *every* part alphabet (decided
    exactly at the pattern level) yields only events that pass no part
    filter — inserting such an event is an identity step of the whole
    product, which the memoised witness search and the ε-closure both
    already discard as a revisited state.  Pruning those patterns skips
    the instantiation and the wasted identity steps without changing the
    denoted trace set or the compiled DFA.

    Compile scope: ``combined`` stays what composition algebra defined it
    to be; the narrowing lives in the ``hidden_pool`` override that only
    :meth:`~repro.core.tracesets.ComposedTraceSet.hidden_source`
    consumers read.
    """

    name = "prune-hidden-pool"
    scope = COMPILE_SCOPE

    def run(self, ts: TraceSet) -> tuple[TraceSet, int]:
        if not isinstance(ts, ComposedTraceSet):
            return ts, 0
        source = ts.hidden_source()
        kept = tuple(
            p
            for p in source.patterns
            if any(
                p.intersection(q) is not None
                for part in ts.parts
                for q in part.alphabet.patterns
            )
        )
        pruned = len(source.patterns) - len(kept)
        if pruned == 0:
            return ts, 0
        return dataclasses.replace(ts, hidden_pool=Alphabet(kept)), pruned
