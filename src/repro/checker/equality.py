"""Extensional equality of specifications.

Two specifications are extensionally equal when their alphabets denote the
same event set (decided symbolically) and their trace sets coincide
(decided by DFA equivalence over a finite universe, after embedding both
into the common letter set).  Used for Property 5 (``Γ‖Γ = Γ``),
Property 12 (commutativity/associativity of ‖), and Example 6
(``T(RW2‖Client) = T(WriteAcc‖Client)``).
"""

from __future__ import annotations

from repro.automata.build import embed_dfa
from repro.automata.ops import equivalence_counterexample
from repro.checker.compile import spec_dfa
from repro.checker.result import CheckResult, Verdict
from repro.checker.universe import FiniteUniverse
from repro.core.specification import Specification
from repro.core.traces import Trace

__all__ = ["alphabets_equal", "trace_sets_equal", "specs_equal"]


def alphabets_equal(s1: Specification, s2: Specification) -> CheckResult:
    """Symbolic extensional equality of the two alphabets."""
    w = s1.alphabet.subset_witness(s2.alphabet)
    if w is not None:
        return CheckResult(
            Verdict.REFUTED,
            note=f"event of α({s1.name}) missing from α({s2.name})",
            counterexample=Trace.of(w),
        )
    w = s2.alphabet.subset_witness(s1.alphabet)
    if w is not None:
        return CheckResult(
            Verdict.REFUTED,
            note=f"event of α({s2.name}) missing from α({s1.name})",
            counterexample=Trace.of(w),
        )
    return CheckResult(Verdict.PROVED, note="alphabets extensionally equal")


def trace_sets_equal(
    s1: Specification,
    s2: Specification,
    universe: FiniteUniverse | None = None,
    state_limit: int = 100_000,
) -> CheckResult:
    """DFA equivalence of the two trace sets over a finite universe."""
    if universe is None:
        universe = FiniteUniverse.for_specs(s1, s2)
    common = universe.events_for(s1.alphabet.union(s2.alphabet))
    a = embed_dfa(spec_dfa(s1, universe, state_limit), common, s1.alphabet)
    b = embed_dfa(spec_dfa(s2, universe, state_limit), common, s2.alphabet)
    cex = equivalence_counterexample(a, b)
    stats = {
        "universe": universe.size(),
        "events": len(common),
        "dfa_states": (a.n_states, b.n_states),
    }
    if cex is None:
        return CheckResult(
            Verdict.PROVED,
            note=f"trace sets equal over {universe}",
            stats=stats,
        )
    return CheckResult(
        Verdict.REFUTED,
        note="trace distinguishing the two trace sets",
        counterexample=Trace(tuple(cex)),
        stats=stats,
    )


def specs_equal(
    s1: Specification,
    s2: Specification,
    universe: FiniteUniverse | None = None,
    state_limit: int = 100_000,
) -> CheckResult:
    """Alphabet equality (symbolic) plus trace-set equality (automata)."""
    objects_1, objects_2 = frozenset(s1.objects), frozenset(s2.objects)
    if objects_1 != objects_2:
        return CheckResult(
            Verdict.REFUTED,
            note=f"object sets differ: {sorted(objects_1)} vs {sorted(objects_2)}",
        )
    a = alphabets_equal(s1, s2)
    if not a.holds:
        return a
    return trace_sets_equal(s1, s2, universe, state_limit)
