"""Finite universes: the instantiation layer of the checker.

The formalism's alphabets are infinite (open environments, unbounded data).
Trace-level questions — refinement condition 3, composition trace-set
equalities, soundness — are decided exactly over a *finite universe*: a
finite pool of values containing

* every object and data value *mentioned* by the specifications involved
  (their behaviour on mentioned values is special), plus
* a configurable number of fresh environment objects and fresh data values
  per data sort (their behaviour is uniform — the predicates definable in
  the notation quantify over sorts, so finitely many representatives
  exercise every distinguishable case).

Growing the universe is the convergence knob: the benchmarks sweep it, and
the checker reports which universe a verdict was established over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.alphabet import Alphabet
from repro.core.errors import UniverseError
from repro.core.events import Event
from repro.core.sorts import fresh_value
from repro.core.specification import Specification
from repro.core.values import DataVal, ObjectId, Value

__all__ = ["FiniteUniverse"]


@dataclass(frozen=True, slots=True)
class FiniteUniverse:
    """A finite, deterministic pool of values."""

    values: tuple[Value, ...]

    def __post_init__(self) -> None:
        if len(set(self.values)) != len(self.values):
            raise UniverseError("universe contains duplicate values")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def of(*values: Value) -> "FiniteUniverse":
        return FiniteUniverse(tuple(dict.fromkeys(values)))

    @staticmethod
    def for_alphabets(
        alphabets: Iterable[Alphabet],
        objects: Iterable[ObjectId] = (),
        env_objects: int = 2,
        data_values: int = 1,
        extra: Iterable[Value] = (),
        extra_bases: Iterable[str] = (),
    ) -> "FiniteUniverse":
        """Universe covering a set of alphabets plus explicit objects.

        Contains the given objects, all values mentioned in any alphabet,
        ``env_objects`` fresh object identities, and ``data_values`` fresh
        values of every data sort occurring in any alphabet or named in
        ``extra_bases`` (bases that only occur in hidden alphabets).
        """
        pool: dict[Value, None] = {}
        bases: set[str] = set(extra_bases)
        for o in sorted(set(objects)):
            pool[o] = None
        for a in alphabets:
            for v in sorted(a.mentioned_values(), key=repr):
                pool[v] = None
            bases |= set(a.base_names())
        for v in extra:
            pool[v] = None
        for base in sorted(bases):
            want = env_objects if base == "Obj" else data_values
            i = 0
            added = 0
            while added < want:
                v = fresh_value(base, i)
                i += 1
                if v in pool:
                    continue
                pool[v] = None
                added += 1
        return FiniteUniverse(tuple(pool))

    @staticmethod
    def for_specs(
        *specs: Specification,
        env_objects: int = 2,
        data_values: int = 1,
        extra: Iterable[Value] = (),
    ) -> "FiniteUniverse":
        """The canonical universe for a set of specifications."""
        objects: list[ObjectId] = []
        predicate_values: list[Value] = []
        hidden_bases: set[str] = set()
        for s in specs:
            objects.extend(s.objects)
            # Values named only in trace predicates (e.g. Example 4's
            # monitor o') must be in the universe too, and base sorts that
            # occur only in *hidden* alphabets (a composition whose
            # internal calls carry data) still need fresh representatives.
            predicate_values.extend(sorted(s.traces.mentioned_values(), key=repr))
            hidden_bases |= set(s.traces.base_names())
        return FiniteUniverse.for_alphabets(
            [s.alphabet for s in specs],
            objects=objects,
            env_objects=env_objects,
            data_values=data_values,
            extra=tuple(predicate_values) + tuple(extra),
            extra_bases=hidden_bases,
        )

    def extended(self, *values: Value) -> "FiniteUniverse":
        return FiniteUniverse.of(*self.values, *values)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def objects(self) -> tuple[ObjectId, ...]:
        return tuple(v for v in self.values if isinstance(v, ObjectId))

    def data(self, sort: str = "Data") -> tuple[DataVal, ...]:
        return tuple(
            v for v in self.values if isinstance(v, DataVal) and v.sort == sort
        )

    def events_for(self, alphabet: Alphabet) -> tuple[Event, ...]:
        """All concrete events of the alphabet over this pool, sorted."""
        return tuple(sorted(alphabet.events_over(self.values)))

    def size(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        objs = len(self.objects())
        return f"Universe({objs} objects, {len(self.values) - objs} data values)"
