"""Compiling specifications to DFAs over a finite universe.

``spec_dfa(Γ, U)`` returns a DFA over the instantiation of ``α(Γ)`` in the
universe ``U`` that accepts exactly the traces of ``T(Γ)`` built from
universe values.  For machine-defined trace sets this is reachable-state
exploration; for composed trace sets it is the ε-erasing subset
construction with the internal events instantiated over the universe.

Compilation is transparently memoised through the content-addressed
:class:`~repro.checker.cache.MachineCache` when one is active (passed
explicitly or installed ambiently via
:func:`~repro.checker.cache.use_cache`); the cache key covers the trace
set's definitional content, the universe, and the ``state_limit``
(DESIGN.md §8).  Trace sets without a stable fingerprint compile
uncached — the cache changes performance, never results.
"""

from __future__ import annotations

import functools
from typing import Sequence

from repro.automata.build import hidden_closure_dfa, machine_to_dfa
from repro.automata.dfa import DFA
from repro.automata.letters import LetterTable
from repro.obs.exploration import active_exploration_stats
from repro.obs.trace import span
from repro.checker.cache import MachineCache, active_cache
from repro.checker.universe import FiniteUniverse
from repro.core.alphabet import Alphabet
from repro.core.errors import SpecificationError
from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.tracesets import ComposedTraceSet, FullTraceSet, MachineTraceSet
from repro.machines.projection import FilterMachine

__all__ = [
    "spec_dfa",
    "composed_hidden_events",
    "traceset_dfa",
    "instantiated_letters",
]


@functools.lru_cache(maxsize=256)
def instantiated_letters(
    universe: FiniteUniverse, alphabet: Alphabet
) -> LetterTable:
    """The interned letter table for an alphabet over a universe.

    Enumerating ``universe.events_for(alphabet)`` walks every pattern over
    the full value pool — real work that used to repeat on every compile.
    Memoising on the (hashable, immutable) pair makes the derivation
    happen once per instantiation: the normalization pipeline preserves
    trace-set alphabets (enforced in :mod:`repro.passes.base`), so raw and
    normalized compiles of one spec, every obligation touching it, and
    the service registry all reuse one table instead of re-deriving the
    letters.
    """
    return LetterTable.intern(universe.events_for(alphabet))


def composed_hidden_events(
    ts: ComposedTraceSet, universe: FiniteUniverse
) -> tuple[Event, ...]:
    """The internal events of a composition, instantiated over a universe.

    Instantiates from ``ts.hidden_source()`` — ``combined`` unless the
    normalization pipeline pruned the hidden pool to the patterns some
    part alphabet can actually observe.
    """
    out: set[Event] = set()
    for p in ts.hidden_source().patterns:
        for a, b in ts.internal.ordered_pairs():
            if not (p.caller.contains(a) and p.callee.contains(b)):
                continue
            pools = [universe.values] * len(p.args)
            out.update(p.instantiate([a], [b], pools))
    return tuple(sorted(out))


def traceset_dfa(
    ts,
    universe: FiniteUniverse,
    state_limit: int = 100_000,
    cache: MachineCache | None = None,
    normalize: bool | None = None,
) -> DFA:
    """DFA for a trace set over the universe instantiation of its alphabet.

    The trace set is first normalized through the default pass pipeline
    (compile scope) — trace-equivalent, so the DFA's language is
    unchanged — and the cache key covers the *normalized* form, so
    syntactic variants of one spec share a cache entry.  ``normalize``
    overrides the ambient :func:`~repro.passes.use_normalization` toggle
    (``None`` = follow it).

    When a cache is supplied (or ambient via ``use_cache``), a previously
    compiled DFA for the same definitional content is returned instead of
    recompiling; fresh compilations are stored for later runs.
    """
    # Lazy import: repro.passes reaches back into this package
    # (fingerprint-based dedup), so a module-level import would cycle
    # through checker/__init__.
    from repro.passes import (
        COMPILE_SCOPE,
        default_pipeline,
        normalization_enabled,
    )

    with span("compile.traceset_dfa", traceset=type(ts).__name__) as sp:
        if normalize is None:
            normalize = normalization_enabled()
        if normalize:
            ts = default_pipeline().normalize_traceset(ts, COMPILE_SCOPE)
        if cache is None:
            cache = active_cache()
        key = None
        if cache is None:
            sp.set(cache="off")
        else:
            key = cache.key_for("traceset_dfa", ts, universe, state_limit)
            if key is None:
                sp.set(cache="uncacheable")
            else:
                cached = cache.get(key)
                if cached is not None:
                    sp.set(cache="hit", states=cached.n_states)
                    return cached
                sp.set(cache="miss")
        dfa = _compile_traceset(ts, universe, state_limit)
        sp.set(states=dfa.n_states, letters=dfa.n_letters)
        if cache is not None and key is not None:
            cache.put(key, dfa)
        return dfa


def _compile_traceset(
    ts, universe: FiniteUniverse, state_limit: int
) -> DFA:
    table = instantiated_letters(universe, ts.alphabet)
    events = table.letters
    if isinstance(ts, (FullTraceSet, MachineTraceSet)):
        return machine_to_dfa(
            ts.machine(), events, state_limit=state_limit, table=table
        )
    if isinstance(ts, ComposedTraceSet):
        machines = tuple(
            FilterMachine(p.alphabet, p.machine) for p in ts.parts
        )
        stats = active_exploration_stats()
        width = len(machines)

        if stats is None:

            def step(state, e):
                return tuple(m.step(s, e) for m, s in zip(machines, state))

        else:

            def step(state, e):
                stats.machine_steps += width
                return tuple(m.step(s, e) for m, s in zip(machines, state))

        def ok(state):
            return all(m.ok(s) for m, s in zip(machines, state))

        init = tuple(m.initial() for m in machines)
        hidden = composed_hidden_events(ts, universe)
        if stats is not None:
            stats.hidden_events += len(hidden)
        return hidden_closure_dfa(
            [init], step, ok, events, hidden, state_limit=state_limit,
            table=table,
        )
    raise SpecificationError(f"cannot compile trace set {ts!r} to a DFA")


def spec_dfa(
    spec: Specification,
    universe: FiniteUniverse,
    state_limit: int = 100_000,
    cache: MachineCache | None = None,
) -> DFA:
    """DFA for ``T(Γ)`` over the universe instantiation of ``α(Γ)``."""
    return traceset_dfa(
        spec.traces, universe, state_limit=state_limit, cache=cache
    )
