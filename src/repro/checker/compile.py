"""Compiling specifications to DFAs over a finite universe.

``spec_dfa(Γ, U)`` returns a DFA over the instantiation of ``α(Γ)`` in the
universe ``U`` that accepts exactly the traces of ``T(Γ)`` built from
universe values.  For machine-defined trace sets this is reachable-state
exploration; for composed trace sets it is the ε-erasing subset
construction with the internal events instantiated over the universe.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.build import hidden_closure_dfa, machine_to_dfa
from repro.automata.dfa import DFA
from repro.checker.universe import FiniteUniverse
from repro.core.errors import SpecificationError
from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.tracesets import ComposedTraceSet, FullTraceSet, MachineTraceSet
from repro.machines.projection import FilterMachine

__all__ = ["spec_dfa", "composed_hidden_events", "traceset_dfa"]


def composed_hidden_events(
    ts: ComposedTraceSet, universe: FiniteUniverse
) -> tuple[Event, ...]:
    """The internal events of a composition, instantiated over a universe."""
    out: set[Event] = set()
    for p in ts.combined.patterns:
        for a, b in ts.internal.ordered_pairs():
            if not (p.caller.contains(a) and p.callee.contains(b)):
                continue
            pools = [universe.values] * len(p.args)
            out.update(p.instantiate([a], [b], pools))
    return tuple(sorted(out))


def traceset_dfa(
    ts, universe: FiniteUniverse, state_limit: int = 100_000
) -> DFA:
    """DFA for a trace set over the universe instantiation of its alphabet."""
    events = universe.events_for(ts.alphabet)
    if isinstance(ts, (FullTraceSet, MachineTraceSet)):
        return machine_to_dfa(ts.machine(), events, state_limit=state_limit)
    if isinstance(ts, ComposedTraceSet):
        machines = tuple(
            FilterMachine(p.alphabet, p.machine) for p in ts.parts
        )

        def step(state, e):
            return tuple(m.step(s, e) for m, s in zip(machines, state))

        def ok(state):
            return all(m.ok(s) for m, s in zip(machines, state))

        init = tuple(m.initial() for m in machines)
        hidden = composed_hidden_events(ts, universe)
        return hidden_closure_dfa(
            [init], step, ok, events, hidden, state_limit=state_limit
        )
    raise SpecificationError(f"cannot compile trace set {ts!r} to a DFA")


def spec_dfa(
    spec: Specification,
    universe: FiniteUniverse,
    state_limit: int = 100_000,
) -> DFA:
    """DFA for ``T(Γ)`` over the universe instantiation of ``α(Γ)``."""
    return traceset_dfa(spec.traces, universe, state_limit=state_limit)
