"""Content-addressed on-disk cache for compiled machines.

Compiling a trace set to a :class:`~repro.automata.dfa.DFA` over a finite
universe (:mod:`repro.checker.compile`) is the dominant cost of every
exact check, and the same (trace set, universe) pairs recur constantly:
the claims suite rebuilds the paper's casts per obligation, the service
registry recompiles per session, and re-running ``repro check`` repeats
yesterday's work verbatim.  This module makes that work *content
addressed*: the cache key is a stable structural fingerprint
(:mod:`repro.checker.fingerprint`) of everything the compilation depends
on —

* the elaborated trace-set AST (machines expose their definitional
  content via ``cache_key_parts``; derived state such as compiled NFAs
  never enters the key),
* the universe values and the compiler's ``state_limit``, and
* a *code version salt* (:data:`ENGINE_CACHE_VERSION`), bumped whenever
  the compiler or machine semantics change, which invalidates every
  previously stored entry at once.

Design rules (DESIGN.md §8):

* **Misses are silent, errors are loud only in stats.**  A value without
  a stable fingerprint (:class:`~repro.core.errors.FingerprintError`)
  is *uncacheable* — compilation proceeds normally and the event is
  counted.  A corrupted or unreadable cache file is treated as a miss,
  counted as an error, and the entry is deleted; the cache can never
  make a check wrong, only slower.
* **Writes are atomic.**  Entries are pickled to a temporary file in the
  cache directory and ``os.replace``-d into place, so concurrent
  processes (the parallel engine's workers share one directory) never
  observe half-written entries.
* **Plumbing is ambient.**  ``use_cache(cache)`` installs the cache in a
  :class:`contextvars.ContextVar`; :func:`repro.checker.compile.traceset_dfa`
  consults :func:`active_cache`, so the laws/equality/soundness layers
  pick the cache up without signature churn.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.automata.dfa import DFA
from repro.core.errors import CacheError, FingerprintError

from repro.checker.fingerprint import fingerprint

__all__ = [
    "ENGINE_CACHE_VERSION",
    "CacheStats",
    "MachineCache",
    "active_cache",
    "use_cache",
]

#: Code-version salt mixed into every cache key.  Bump when the DFA
#: compiler, machine semantics, or the fingerprint encoding change in a
#: way that could alter compiled automata — every stored entry becomes
#: unreachable (a cold cache), never silently stale.
#: ``repro-engine-3``: the dense interned-alphabet automata core — DFAs
#: pickle as flat successor arrays and fingerprint their dense form, so
#: every ``repro-engine-2`` entry (per-state dict pickles) is retired.
ENGINE_CACHE_VERSION = "repro-engine-3"


@dataclass
class CacheStats:
    """Counters for one cache's lifetime (or a worker's delta)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    uncacheable: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "uncacheable": self.uncacheable,
        }

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.errors += other.errors
        self.uncacheable += other.uncacheable

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.uncacheable

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.uncacheable} uncacheable, {self.errors} errors"
        )


class MachineCache:
    """A content-addressed store of compiled DFAs under one directory."""

    def __init__(self, directory: str | os.PathLike, salt: str = ENGINE_CACHE_VERSION) -> None:
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise CacheError(f"cache path {self.directory} is not a directory")
        self.directory.mkdir(parents=True, exist_ok=True)
        self.salt = salt
        self.stats = CacheStats()

    # -- keys -----------------------------------------------------------

    def key_for(self, tag: str, *parts: object) -> str | None:
        """The content address for a compilation, or None if uncacheable."""
        try:
            return fingerprint((self.salt, tag) + parts)
        except FingerprintError:
            self.stats.uncacheable += 1
            return None

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings short for big caches.
        return self.directory / key[:2] / f"{key}.dfa.pickle"

    # -- lookup / store -------------------------------------------------

    def get(self, key: str) -> DFA | None:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                dfa = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Corrupted, truncated, or unpicklable entry: drop it and
            # recompile.  The cache must never be able to fail a check.
            self.stats.errors += 1
            self.stats.misses += 1
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        if not isinstance(dfa, DFA):
            self.stats.errors += 1
            self.stats.misses += 1
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        self.stats.hits += 1
        return dfa

    def put(self, key: str, dfa: DFA) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pickle"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(dfa, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError:
            self.stats.errors += 1
            return
        self.stats.stores += 1

    # -- maintenance ----------------------------------------------------

    def entries(self) -> int:
        return sum(1 for _ in self.directory.glob("??/*.dfa.pickle"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for p in self.directory.glob("??/*.dfa.pickle"):
            with contextlib.suppress(OSError):
                p.unlink()
                n += 1
        return n

    def __repr__(self) -> str:
        return f"MachineCache({str(self.directory)!r}, salt={self.salt!r})"


# ----------------------------------------------------------------------
# ambient cache plumbing
# ----------------------------------------------------------------------

_ACTIVE: contextvars.ContextVar[MachineCache | None] = contextvars.ContextVar(
    "repro_machine_cache", default=None
)


def active_cache() -> MachineCache | None:
    """The ambient cache consulted by the compiler, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use_cache(cache: MachineCache | None):
    """Install ``cache`` as the ambient compilation cache for a block."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)
