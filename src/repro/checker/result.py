"""Verdicts and result records shared by the checking strategies."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.refinement import StaticRefinementReport
from repro.core.traces import Trace

__all__ = ["Verdict", "CheckResult"]


class Verdict(enum.Enum):
    """Outcome of a checking question.

    ``PROVED`` — established exactly over the stated finite universe (the
    strategies are complete for the universe; adequacy of the universe for
    the infinite setting rests on the uniformity of notation-definable
    predicates, see DESIGN.md).
    ``REFUTED`` — a concrete counterexample trace/event was produced.
    ``BOUNDED_OK`` — no counterexample up to the stated depth (bounded
    strategy only; not a proof).
    ``STATIC_FAILED`` — an alphabet/object-set side condition failed.
    ``UNKNOWN`` — the strategy gave up (e.g. state budget exhausted).
    """

    PROVED = "proved"
    REFUTED = "refuted"
    BOUNDED_OK = "bounded-ok"
    STATIC_FAILED = "static-failed"
    UNKNOWN = "unknown"

    @property
    def is_positive(self) -> bool:
        return self in (Verdict.PROVED, Verdict.BOUNDED_OK)


@dataclass(frozen=True, slots=True)
class CheckResult:
    """A verdict with supporting evidence.

    ``counterexample`` is a trace of the *concrete/larger* side whose
    projection misbehaves (refinement/soundness) or that distinguishes two
    trace sets (equality checks).  ``stats`` carries strategy-dependent
    numbers (states explored, DFA sizes, depth reached).
    """

    verdict: Verdict
    note: str = ""
    counterexample: Trace | None = None
    static: StaticRefinementReport | None = None
    stats: dict = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        """Positive outcome (``PROVED`` or ``BOUNDED_OK``)."""
        return self.verdict.is_positive

    def explain(self) -> str:
        parts = [self.verdict.value]
        if self.note:
            parts.append(self.note)
        if self.counterexample is not None:
            parts.append(f"counterexample: {self.counterexample}")
        if self.static is not None and not self.static.ok:
            detail = self.static.explain()
            if detail not in self.note:
                parts.append(detail)
        return " — ".join(parts)

    def __str__(self) -> str:
        return self.explain()
