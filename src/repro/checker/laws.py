"""Executable replays of the paper's numbered claims.

Each function checks one lemma/theorem/property on *concrete instances*
(specifications, components, universes) and returns a
:class:`~repro.checker.result.CheckResult`.  Together with the randomised
instance families in the test suite, this is the Python analogue of the
authors' PVS verification: every claim of Sections 4–7 is mechanically
replayed, and the side conditions (composability, properness) can be
*dropped* to confirm that the conclusions genuinely depend on them.

The paper-to-function map (cross-referenced from DESIGN.md §3 and §8):

========================  ===========================  ====================
paper claim               statement (abbreviated)      function
========================  ===========================  ====================
Property 5                ``Γ‖Γ = Γ``                  :func:`law_property5`
Lemma 6                   ``Γ₁‖Γ₂`` is the weakest     :func:`law_lemma6`
                          common refinement
Theorem 7                 ``Γ'⊑Γ ⇒ Γ'‖Δ ⊑ Γ‖Δ``        :func:`law_theorem7`
                          (interface specs)
Property 12               ``‖`` commutative/assoc.     :func:`law_property12`
Lemma 13                  soundness closed under ``‖``  :func:`law_lemma13`
Lemma 15                  hiding stable under           :func:`law_lemma15`
                          properness (symbolic)
Theorem 16                Theorem 7 for general specs  :func:`law_theorem16`
                          (composable + proper)
Property 17               composability preserved      :func:`law_property17`
                          when no objects added
Theorem 18                ``Γ'⊑Γ ∧ O(Γ')=O(Γ)``        :func:`law_theorem18`
                          ``⇒ Γ'‖Δ ⊑ Γ‖Δ``
========================  ===========================  ====================

Functions raise :class:`~repro.core.errors.RefinementError` when a claim's
*premise* fails on the supplied instance — a failed premise means the
instance does not exercise the claim, which callers should know about
rather than read as confirmation.  The claims suite
(:func:`repro.paper.claims.build_obligations`) wraps these replays as
engine-runnable obligations.
"""

from __future__ import annotations

from repro.checker.equality import specs_equal, trace_sets_equal
from repro.checker.refinement import check_refinement
from repro.checker.result import CheckResult, Verdict
from repro.checker.soundness import check_soundness, universe_for_component
from repro.checker.universe import FiniteUniverse
from repro.core.component import Component
from repro.core.composition import check_composable, compose, properness_witness
from repro.core.errors import RefinementError
from repro.core.internal import InternalEvents
from repro.core.specification import Specification
from repro.core.traces import Trace

__all__ = [
    "law_property5",
    "law_lemma6",
    "law_theorem7",
    "law_property12",
    "law_lemma13",
    "law_lemma15",
    "law_theorem16",
    "law_property17",
    "law_theorem18",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RefinementError(f"premise failed: {message}")


def _combine(results: list[tuple[str, CheckResult]]) -> CheckResult:
    """Fold sub-results: first negative wins; weakest positive verdict kept."""
    verdict = Verdict.PROVED
    notes = []
    for label, r in results:
        if not r.holds:
            return CheckResult(
                r.verdict,
                note=f"{label}: {r.explain()}",
                counterexample=r.counterexample,
                stats=r.stats,
            )
        if r.verdict is Verdict.BOUNDED_OK:
            verdict = Verdict.BOUNDED_OK
        notes.append(f"{label}: {r.verdict.value}")
    return CheckResult(verdict, note="; ".join(notes))


# ----------------------------------------------------------------------
# Section 4: interface composition
# ----------------------------------------------------------------------


def law_property5(
    spec: Specification, universe: FiniteUniverse | None = None
) -> CheckResult:
    """Property 5: ``Γ‖Γ = Γ`` for an interface specification."""
    _require(spec.is_interface(), f"{spec.name} must be an interface spec")
    self_comp = compose(spec, spec)
    return specs_equal(self_comp, spec, universe)


def law_lemma6(
    g1: Specification,
    g2: Specification,
    universe: FiniteUniverse | None = None,
    candidates: tuple[Specification, ...] = (),
    **kwargs,
) -> CheckResult:
    """Lemma 6: ``Γ₁‖Γ₂`` is the weakest common refinement of ``Γ₁, Γ₂``.

    Part 1 (``Γ₁‖Γ₂ ⊑ Γᵢ``) is checked outright.  Part 2 is universally
    quantified over all specifications; it is exercised on the supplied
    ``candidates`` — for each ``Δ`` that refines both ``Γᵢ``, check
    ``Δ ⊑ Γ₁‖Γ₂``.
    """
    _require(
        g1.is_interface() and g2.is_interface() and g1.objects == g2.objects,
        "Lemma 6 concerns interface specifications of the same object",
    )
    comp = compose(g1, g2)
    results = [
        ("Γ₁‖Γ₂ ⊑ Γ₁", check_refinement(comp, g1, universe, **kwargs)),
        ("Γ₁‖Γ₂ ⊑ Γ₂", check_refinement(comp, g2, universe, **kwargs)),
    ]
    for i, delta in enumerate(candidates):
        r1 = check_refinement(delta, g1, universe, **kwargs)
        r2 = check_refinement(delta, g2, universe, **kwargs)
        if not (r1.holds and r2.holds):
            continue  # candidate does not satisfy part 2's premise
        results.append(
            (
                f"Δ{i}({delta.name}) ⊑ Γ₁‖Γ₂",
                check_refinement(delta, comp, universe, **kwargs),
            )
        )
    return _combine(results)


# ----------------------------------------------------------------------
# Section 5: compositional refinement for interface specifications
# ----------------------------------------------------------------------


def law_theorem7(
    gamma: Specification,
    gamma_p: Specification,
    delta: Specification,
    universe: FiniteUniverse | None = None,
    **kwargs,
) -> CheckResult:
    """Theorem 7: ``Γ' ⊑ Γ ⇒ Γ'‖Δ ⊑ Γ‖Δ`` (interface specifications)."""
    _require(
        gamma.is_interface() and gamma_p.is_interface() and delta.is_interface(),
        "Theorem 7 concerns interface specifications",
    )
    _require(
        gamma.objects == gamma_p.objects,
        "Γ and Γ' must specify the same object",
    )
    premise = check_refinement(gamma_p, gamma, universe, **kwargs)
    _require(premise.holds, f"Γ' ⊑ Γ does not hold: {premise.explain()}")
    conclusion = check_refinement(
        compose(gamma_p, delta), compose(gamma, delta), universe, **kwargs
    )
    return conclusion


# ----------------------------------------------------------------------
# Section 7: component specifications
# ----------------------------------------------------------------------


def law_property12(
    gamma: Specification,
    delta: Specification,
    theta: Specification | None = None,
    universe: FiniteUniverse | None = None,
) -> CheckResult:
    """Property 12: ‖ is commutative and (given ``theta``) associative."""
    _require(
        check_composable(gamma, delta).composable,
        f"{gamma.name} and {delta.name} must be composable",
    )
    results = [
        ("Γ‖Δ = Δ‖Γ", specs_equal(compose(gamma, delta), compose(delta, gamma), universe)),
    ]
    if theta is not None:
        gd = compose(gamma, delta)
        dt = compose(delta, theta)
        _require(
            check_composable(gd, theta).composable
            and check_composable(gamma, dt).composable
            and check_composable(delta, theta).composable,
            "all pairwise compositions must be composable for associativity",
        )
        results.append(
            (
                "(Γ‖Δ)‖Θ = Γ‖(Δ‖Θ)",
                specs_equal(compose(gd, theta), compose(gamma, dt), universe),
            )
        )
    return _combine(results)


def law_lemma13(
    gamma: Specification,
    delta: Specification,
    component: Component,
    universe: FiniteUniverse | None = None,
) -> CheckResult:
    """Lemma 13: if Γ and Δ are sound specifications of C, so is Γ‖Δ."""
    if universe is None:
        universe = universe_for_component(component, gamma, delta)
    p1 = check_soundness(gamma, component, universe)
    _require(p1.holds, f"{gamma.name} must be sound for the component: {p1.explain()}")
    p2 = check_soundness(delta, component, universe)
    _require(p2.holds, f"{delta.name} must be sound for the component: {p2.explain()}")
    return check_soundness(compose(gamma, delta), component, universe)


def law_lemma15(
    gamma: Specification,
    gamma_p: Specification,
    delta: Specification,
) -> CheckResult:
    """Lemma 15 (symbolic): hiding stability under properness.

    ``(α(Γ) ∪ α(Δ)) ∩ I(O(Γ'‖Δ)) = (α(Γ) ∪ α(Δ)) ∩ I(O(Γ‖Δ))``.

    ``I(O(Γ‖Δ)) ⊆ I(O(Γ'‖Δ))`` always, so equality reduces to: no event of
    the combined alphabet lies in the difference of the internal sets —
    decided exactly on patterns and endpoint pairs.
    """
    _require(
        check_composable(gamma_p, delta).composable,
        "Γ' and Δ must be composable",
    )
    w = properness_witness(gamma, gamma_p, delta)
    _require(
        w is None,
        f"Γ' must be a proper refinement of Γ w.r.t. Δ (violating event {w})",
    )
    big = InternalEvents.square(gamma_p.objects | delta.objects)
    small = InternalEvents.square(gamma.objects | delta.objects)
    diff = big.difference(small)
    combined = gamma.alphabet.union(delta.alphabet)
    witness = combined.internal_witness(diff)
    if witness is None:
        return CheckResult(
            Verdict.PROVED, note="hiding stability holds (symbolically exact)"
        )
    return CheckResult(
        Verdict.REFUTED,
        note="combined-alphabet event newly hidden by the refinement",
        counterexample=Trace.of(witness),
    )


def law_theorem16(
    gamma: Specification,
    gamma_p: Specification,
    delta: Specification,
    universe: FiniteUniverse | None = None,
    **kwargs,
) -> CheckResult:
    """Theorem 16: composable + proper + ``Γ' ⊑ Γ`` ⇒ ``Γ'‖Δ ⊑ Γ‖Δ``."""
    _require(
        check_composable(gamma_p, delta).composable,
        "Γ' and Δ must be composable",
    )
    w = properness_witness(gamma, gamma_p, delta)
    _require(
        w is None,
        f"Γ' must be a proper refinement of Γ w.r.t. Δ (violating event {w})",
    )
    premise = check_refinement(gamma_p, gamma, universe, **kwargs)
    _require(premise.holds, f"Γ' ⊑ Γ does not hold: {premise.explain()}")
    return check_refinement(
        compose(gamma_p, delta), compose(gamma, delta), universe, **kwargs
    )


def law_property17(
    gamma: Specification,
    gamma_p: Specification,
    delta: Specification,
) -> CheckResult:
    """Property 17: composability is preserved when no objects are added."""
    _require(
        gamma.objects == gamma_p.objects,
        "Property 17 requires O(Γ') = O(Γ)",
    )
    _require(
        check_composable(gamma, delta).composable,
        "Γ and Δ must be composable",
    )
    report = check_composable(gamma_p, delta)
    if report.composable:
        return CheckResult(Verdict.PROVED, note="Γ' and Δ are composable")
    witness = report.left_witness or report.right_witness
    return CheckResult(
        Verdict.REFUTED,
        note=report.explain(),
        counterexample=Trace.of(witness) if witness else None,
    )


def law_theorem18(
    gamma: Specification,
    gamma_p: Specification,
    delta: Specification,
    universe: FiniteUniverse | None = None,
    **kwargs,
) -> CheckResult:
    """Theorem 18: ``Γ' ⊑ Γ ∧ O(Γ') = O(Γ)`` ⇒ ``Γ'‖Δ ⊑ Γ‖Δ``."""
    _require(
        gamma.objects == gamma_p.objects,
        "Theorem 18 requires O(Γ') = O(Γ)",
    )
    premise = check_refinement(gamma_p, gamma, universe, **kwargs)
    _require(premise.holds, f"Γ' ⊑ Γ does not hold: {premise.explain()}")
    return check_refinement(
        compose(gamma_p, delta), compose(gamma, delta), universe, **kwargs
    )
