"""Stable content fingerprints for cache keys.

The content-addressed machine cache (:mod:`repro.checker.cache`) needs a
hash of "the elaborated specification" that is identical across *processes*
and *runs* whenever the specification denotes the same trace set, and
different whenever anything semantically relevant changed.  Python's
built-in ``hash``/``repr`` cannot provide this: string hashing is salted
per process (``PYTHONHASHSEED``), so ``frozenset`` iteration order — and
hence any repr containing one — varies between runs.

:func:`fingerprint` therefore walks values *structurally* and feeds a
canonical byte encoding to SHA-256:

* primitives are tagged and encoded directly;
* sequences preserve order; sets and dicts are sorted into a canonical
  order by a content-only encoding of their entries *before* the shared
  walk encodes them (order-independent and salt-independent even when
  entries share substructure — back-reference indices are assigned in
  canonical order, never in salted iteration order);
* dataclasses encode their qualified class name plus every field in
  declaration order — this covers the whole core layer (sorts, values,
  events, patterns, alphabets, traces, trace sets, internal-event sets,
  regex ASTs);
* objects exposing ``cache_key_parts()`` (the trace machines, which hold
  compiled NFAs, memo tables, and closures that must not leak into the
  key) encode their class name plus the returned parts;
* plain functions encode module, qualname, bytecode, defaults, and
  closure-cell contents — enough for the rare machine that is
  parameterised by a callable; bytecode drift across interpreter versions
  is absorbed by the cache salt, which includes ``sys.version_info``.

Shared substructure and cycles are handled with a pickle-style memo:
revisited objects encode as a back-reference to their first visit index.

Anything else raises :class:`~repro.core.errors.FingerprintError`; callers
treat that value as *uncacheable* rather than guessing a key.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import types

from repro.core.errors import FingerprintError

__all__ = ["fingerprint", "fingerprint_bytes"]


def _tag(kind: bytes, payload: bytes = b"") -> bytes:
    return kind + len(payload).to_bytes(8, "big") + payload


class _Memo:
    """Identity memo for shared substructure and cycles.

    ``keep`` pins every memoised object for the duration of the walk —
    temporaries produced by ``cache_key_parts()`` must not be collected
    mid-walk, or a recycled ``id`` would alias two distinct objects.
    """

    __slots__ = ("index", "keep")

    def __init__(self) -> None:
        self.index: dict[int, int] = {}
        self.keep: list = []


def _content_sorted(values) -> list:
    """Sort a salted-iteration container into a canonical order.

    Sort keys are computed with a *fresh* memo so they depend only on each
    element's content, never on where shared substructure happened to be
    visited first in the enclosing walk.
    """
    try:
        return sorted(values, key=lambda x: _encode(x, _Memo()))
    except RecursionError as exc:
        raise FingerprintError(
            "cyclic structure through a set/dict cannot be canonically ordered"
        ) from exc


def _encode(obj, memo: _Memo) -> bytes:
    # -- primitives (never memoised: small ints/strs may be interned) ------
    if obj is None:
        return _tag(b"N")
    if obj is True:
        return _tag(b"T")
    if obj is False:
        return _tag(b"F")
    if isinstance(obj, int):
        return _tag(b"i", str(obj).encode())
    if isinstance(obj, float):
        return _tag(b"f", repr(obj).encode())
    if isinstance(obj, str):
        return _tag(b"s", obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return _tag(b"b", obj)
    if isinstance(obj, enum.Enum):
        cls = type(obj)
        return _tag(b"E", f"{cls.__module__}.{cls.__qualname__}.{obj.name}".encode())
    if isinstance(obj, type):
        return _tag(b"C", f"{obj.__module__}.{obj.__qualname__}".encode())

    # -- containers and objects: memoise on identity -----------------------
    ref = memo.index.get(id(obj))
    if ref is not None:
        return _tag(b"R", str(ref).encode())
    memo.index[id(obj)] = len(memo.index)
    memo.keep.append(obj)

    if isinstance(obj, (tuple, list)):
        kind = b"t" if isinstance(obj, tuple) else b"l"
        return _tag(kind, b"".join(_encode(x, memo) for x in obj))
    if isinstance(obj, (set, frozenset)):
        # Canonicalise the order BEFORE touching the shared memo: encoding
        # elements in salted iteration order would assign back-reference
        # indices for shared substructure in that order, leaking the salt
        # into the sorted output (two events sharing one ObjectId encode
        # differently depending on which is walked first).
        return _tag(
            b"S", b"".join(_encode(x, memo) for x in _content_sorted(obj))
        )
    if isinstance(obj, dict):
        items = _content_sorted(obj.items())
        return _tag(
            b"d",
            b"".join(_encode(k, memo) + _encode(v, memo) for k, v in items),
        )

    parts = getattr(obj, "cache_key_parts", None)
    if parts is not None and callable(parts):
        cls = type(obj)
        body = _encode(parts(), memo)
        return _tag(b"M", _tag(b"s", f"{cls.__module__}.{cls.__qualname__}".encode()) + body)

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        body = [_tag(b"s", f"{cls.__module__}.{cls.__qualname__}".encode())]
        for f in dataclasses.fields(obj):
            body.append(_tag(b"s", f.name.encode()))
            body.append(_encode(getattr(obj, f.name), memo))
        return _tag(b"D", b"".join(body))

    if isinstance(obj, functools.partial):
        return _tag(
            b"P",
            _encode(obj.func, memo)
            + _encode(obj.args, memo)
            + _encode(dict(obj.keywords), memo),
        )
    if isinstance(obj, types.MethodType):
        return _tag(
            b"m", _encode(obj.__func__, memo) + _encode(obj.__self__, memo)
        )
    if isinstance(obj, types.FunctionType):
        try:
            cells = tuple(c.cell_contents for c in (obj.__closure__ or ()))
        except ValueError as exc:  # unfilled cell: recursion still being set up
            raise FingerprintError(
                f"function {obj.__qualname__} has an unfilled closure cell"
            ) from exc
        body = [
            _tag(b"s", f"{obj.__module__}.{obj.__qualname__}".encode()),
            _encode(obj.__code__, memo),
            _encode(obj.__defaults__, memo),
            _encode(cells, memo),
        ]
        return _tag(b"L", b"".join(body))
    if isinstance(obj, types.CodeType):
        return _tag(
            b"c",
            _tag(b"b", obj.co_code)
            + _encode(obj.co_names, memo)
            + _encode(obj.co_consts, memo),
        )

    raise FingerprintError(
        f"no stable fingerprint for {type(obj).__module__}."
        f"{type(obj).__qualname__} instance {obj!r}"
    )


def fingerprint_bytes(obj) -> bytes:
    """The canonical byte encoding of ``obj`` (mainly for tests)."""
    return _encode(obj, _Memo())


def fingerprint(obj) -> str:
    """Hex SHA-256 of the canonical encoding of ``obj``.

    Stable across processes and hash seeds; raises
    :class:`~repro.core.errors.FingerprintError` for values outside the
    encodable fragment.
    """
    return hashlib.sha256(fingerprint_bytes(obj)).hexdigest()
