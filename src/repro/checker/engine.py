"""The parallel obligation engine.

Proof obligations (:mod:`repro.checker.obligations`) are independent by
construction — each closes over its own specifications and universe — so
a session of them is embarrassingly parallel.  This module fans a list of
obligations out to a :class:`concurrent.futures.ProcessPoolExecutor` and
collects the outcomes **in submission order**, so a parallel run is
indistinguishable from a sequential one except for wall time (the
*parallel-determinism invariant*, DESIGN.md §8).

The one wrinkle is picklability: obligations carry closures (the claims
suite builds them over shared cast objects), so :class:`Obligation`
values cannot cross a process boundary.  Instead, the unit of work is an
:class:`ObligationSource` — a ``"module:function"`` reference plus
keyword arguments, both picklable — and every worker *rebuilds* the full
obligation list once at pool start-up, then runs obligations by index.
Workers ship back only picklable payloads (:class:`CheckResult`, error
strings, timings, cache-stat deltas); the parent re-attaches its own
:class:`Obligation` objects to the outcomes.

Workers share one content-addressed :class:`~repro.checker.cache.MachineCache`
directory when the engine is configured with one; the cache's atomic
writes make concurrent sharing safe, and each worker reports its
hit/miss delta for the parent's :class:`CheckerMetrics`.  DFAs cross both
boundaries — worker pickles and on-disk cache entries — in their dense
form: a letter tuple plus the flat successor array's bytes
(:meth:`~repro.automata.dfa.DFA.__getstate__`), with the interned
:class:`~repro.automata.letters.LetterTable` re-attached on load.

Timeouts are enforced per obligation in parallel runs by bounding
``Future.result``.  A process-pool task cannot be cancelled once running,
so on the first timeout the engine hard-terminates the pool: completed
obligations keep their results, the timed-out one and any still
unfinished are recorded as errors.  Inline runs (``jobs<=1``) execute in
the calling process and therefore cannot enforce timeouts; the
configuration is accepted but inert there.
"""

from __future__ import annotations

import contextlib
import importlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.checker.cache import ENGINE_CACHE_VERSION, MachineCache, use_cache
from repro.checker.obligations import (
    Obligation,
    ObligationOutcome,
    ProofSession,
)
from repro.checker.result import CheckResult
from repro.core.errors import EngineError, ReproError
from repro.obs.metrics import CheckerMetrics
from repro.obs.trace import (
    SpanRecord,
    adopt_parent,
    current_span_id,
    replay,
    span,
    tracing_enabled,
    use_sink,
)

__all__ = [
    "ObligationSource",
    "EngineConfig",
    "EngineRun",
    "ObligationEngine",
]


@dataclass(frozen=True, slots=True)
class ObligationSource:
    """A picklable recipe for an obligation list.

    ``factory`` names a callable as ``"package.module:function"``; calling
    it with ``kwargs`` must yield an iterable of :class:`Obligation`.
    The same source builds the same obligations (same idents, same order)
    in every process — that is what lets workers address work by index.
    """

    factory: str
    kwargs: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def of(factory: str, **kwargs: object) -> "ObligationSource":
        return ObligationSource(factory, tuple(sorted(kwargs.items())))

    def build(self) -> list[Obligation]:
        """Import the factory and materialise the obligation list."""
        mod_name, sep, func_name = self.factory.partition(":")
        if not sep or not mod_name or not func_name:
            raise EngineError(
                f"obligation factory must be 'module:function', got "
                f"{self.factory!r}"
            )
        try:
            module = importlib.import_module(mod_name)
        except ImportError as exc:
            raise EngineError(
                f"cannot import obligation factory module {mod_name!r}: {exc}"
            ) from exc
        factory = getattr(module, func_name, None)
        if not callable(factory):
            raise EngineError(
                f"{mod_name!r} has no callable {func_name!r}"
            )
        try:
            obligations = list(factory(**dict(self.kwargs)))
        except TypeError as exc:
            raise EngineError(
                f"obligation factory {self.factory!r} rejected its arguments "
                f"or returned a non-iterable: {exc}"
            ) from exc
        for ob in obligations:
            if not isinstance(ob, Obligation):
                raise EngineError(
                    f"factory {self.factory!r} produced {type(ob).__name__}, "
                    f"expected Obligation"
                )
        return obligations


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """How to run an obligation session.

    ``jobs <= 1`` runs inline (no worker processes, no timeout
    enforcement).  ``timeout`` is seconds per obligation, parallel runs
    only.  ``cache_dir`` enables the shared machine cache; ``salt``
    versions its keys.  ``normalize`` controls the trace-set
    normalization pipeline in the compiler (on by default; the CLI's
    ``--no-normalize`` turns it off) — installed ambiently in the parent
    *and* in every worker, so parallel runs compile exactly what an
    inline run would.
    """

    jobs: int = 1
    timeout: float | None = None
    cache_dir: str | None = None
    salt: str = ENGINE_CACHE_VERSION
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise EngineError(f"jobs must be >= 0, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise EngineError(f"timeout must be positive, got {self.timeout}")


@dataclass
class EngineRun:
    """The outcome of one engine invocation."""

    session: ProofSession
    metrics: CheckerMetrics
    wall_seconds: float
    jobs: int

    @property
    def all_agree(self) -> bool:
        return self.session.all_agree


@dataclass(frozen=True, slots=True)
class _TaskResult:
    """What a worker ships back for one obligation (all picklable)."""

    index: int
    result: CheckResult | None
    error: str | None
    seconds: float
    cache_delta: dict[str, int] = field(default_factory=dict)
    spans: tuple[SpanRecord, ...] = ()


def _run_obligation(ob: Obligation) -> tuple[CheckResult | None, str | None, float]:
    """Run one obligation with ProofSession's exact error discipline."""
    start = time.perf_counter()
    result: CheckResult | None = None
    error: str | None = None
    try:
        result = ob.check()
    except ReproError as exc:  # premise failures, budget exhaustion
        error = f"{type(exc).__name__}: {exc}"
    return result, error, time.perf_counter() - start


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

_WORKER_OBLIGATIONS: list[Obligation] | None = None
_WORKER_CACHE: MachineCache | None = None
_WORKER_NORMALIZE: bool = True


def _worker_init(
    source: ObligationSource,
    cache_dir: str | None,
    salt: str,
    normalize: bool = True,
) -> None:
    """Pool initializer: rebuild obligations, open the shared cache."""
    global _WORKER_OBLIGATIONS, _WORKER_CACHE, _WORKER_NORMALIZE
    _WORKER_OBLIGATIONS = source.build()
    _WORKER_CACHE = MachineCache(cache_dir, salt) if cache_dir else None
    _WORKER_NORMALIZE = normalize


def _worker_run(index: int, parent_span_id: str | None = None) -> _TaskResult:
    from repro.passes import use_normalization

    obligations = _WORKER_OBLIGATIONS
    if obligations is None:
        raise EngineError("worker used before initialisation")
    ob = obligations[index]
    cache = _WORKER_CACHE
    before = cache.stats.as_dict() if cache is not None else {}
    # When the parent is tracing it ships its ambient span id with the
    # job; the worker records its own spans into a private collector and
    # ships the finished records back in the _TaskResult, where the
    # parent replays them — re-parented — into its sinks.
    collector = None
    with contextlib.ExitStack() as stack:
        if parent_span_id is not None:
            from repro.obs.export import InMemoryCollector

            collector = stack.enter_context(use_sink(InMemoryCollector()))
            stack.enter_context(adopt_parent(parent_span_id))
            sp = stack.enter_context(
                span("engine.obligation", ident=ob.ident, worker=os.getpid())
            )
        stack.enter_context(use_normalization(_WORKER_NORMALIZE))
        if cache is not None:
            stack.enter_context(use_cache(cache))
        result, error, seconds = _run_obligation(ob)
        if collector is not None and error is not None:
            sp.set(error=error)
    delta: dict[str, int] = {}
    if cache is not None:
        after = cache.stats.as_dict()
        delta = {k: after[k] - before[k] for k in after}
    spans = tuple(collector.records) if collector is not None else ()
    return _TaskResult(index, result, error, seconds, delta, spans)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class ObligationEngine:
    """Runs an :class:`ObligationSource` under an :class:`EngineConfig`."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()

    def run(self, source: ObligationSource) -> EngineRun:
        # Build in the parent first: a bad factory or unknown spec name
        # must raise here, before any worker process is spawned.
        obligations = source.build()
        metrics = CheckerMetrics()
        start = time.perf_counter()
        with span(
            "engine.run",
            obligations=len(obligations),
            jobs=max(1, self.config.jobs),
        ) as sp:
            if self.config.jobs <= 1:
                outcomes = self._run_inline(obligations, metrics)
            else:
                outcomes = self._run_parallel(source, obligations, metrics)
            wall = time.perf_counter() - start
            session = ProofSession(outcomes=outcomes)
            sp.set(agree=session.all_agree)
        for outcome in outcomes:
            metrics.record_outcome(outcome)
        return EngineRun(
            session=session,
            metrics=metrics,
            wall_seconds=wall,
            jobs=max(1, self.config.jobs),
        )

    # -- inline ---------------------------------------------------------

    def _run_inline(
        self, obligations: list[Obligation], metrics: CheckerMetrics
    ) -> list[ObligationOutcome]:
        from repro.passes import use_normalization

        cache = (
            MachineCache(self.config.cache_dir, self.config.salt)
            if self.config.cache_dir
            else None
        )
        outcomes = []
        with use_normalization(self.config.normalize):
            with use_cache(cache) if cache is not None else contextlib.nullcontext():
                for ob in obligations:
                    with span("engine.obligation", ident=ob.ident) as sp:
                        result, error, seconds = _run_obligation(ob)
                        if error is not None:
                            sp.set(error=error)
                    outcomes.append(ObligationOutcome(ob, result, error, seconds))
        if cache is not None:
            metrics.record_cache(**cache.stats.as_dict())
        return outcomes

    # -- parallel --------------------------------------------------------

    def _run_parallel(
        self,
        source: ObligationSource,
        obligations: list[Obligation],
        metrics: CheckerMetrics,
    ) -> list[ObligationOutcome]:
        n = len(obligations)
        outcomes: list[ObligationOutcome | None] = [None] * n
        workers = min(self.config.jobs, max(1, n))
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(
                source,
                self.config.cache_dir,
                self.config.salt,
                self.config.normalize,
            ),
        )
        aborted_after: str | None = None
        parent_span = current_span_id() if tracing_enabled() else None
        try:
            futures = [pool.submit(_worker_run, i, parent_span) for i in range(n)]
            # Collect in submission order: outcome i is always obligation
            # i's, whatever order the workers finished in.
            for i, future in enumerate(futures):
                ob = obligations[i]
                if aborted_after is not None:
                    # The pool was torn down; salvage tasks that had
                    # already finished, mark the rest as aborted.
                    outcomes[i] = self._salvage(ob, future, aborted_after)
                    continue
                try:
                    task = future.result(timeout=self.config.timeout)
                except FutureTimeout:
                    self._terminate(pool)
                    aborted_after = ob.ident
                    outcomes[i] = ObligationOutcome(
                        ob,
                        None,
                        f"EngineTimeout: exceeded {self.config.timeout}s",
                        self.config.timeout or 0.0,
                    )
                    continue
                except BrokenProcessPool as exc:
                    raise EngineError(
                        f"worker pool died while running {ob.ident}: {exc}"
                    ) from exc
                metrics.record_cache(**task.cache_delta)
                if task.spans:
                    replay(task.spans)
                outcomes[i] = ObligationOutcome(
                    ob, task.result, task.error, task.seconds
                )
        finally:
            # Waiting is safe even after a hard abort: terminated workers
            # mark the pool broken and shutdown returns promptly.  Not
            # waiting leaks the management thread into interpreter exit.
            pool.shutdown(wait=True, cancel_futures=True)
        return [o for o in outcomes if o is not None]

    @staticmethod
    def _salvage(
        ob: Obligation, future, aborted_after: str
    ) -> ObligationOutcome:
        if future.done() and not future.cancelled():
            with contextlib.suppress(BaseException):
                task = future.result(timeout=0)
                if task.spans:
                    replay(task.spans)
                return ObligationOutcome(
                    ob, task.result, task.error, task.seconds
                )
        return ObligationOutcome(
            ob,
            None,
            f"EngineAborted: pool stopped after {aborted_after} timed out",
            0.0,
        )

    @staticmethod
    def _terminate(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool whose running tasks cannot be cancelled."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            with contextlib.suppress(Exception):
                proc.terminate()
