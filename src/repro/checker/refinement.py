"""Refinement checking strategies (paper Definition 2).

Definition 2 of the paper declares ``Γ' ⊑ Γ`` — specification ``Γ'``
*refines* ``Γ`` — when three conditions hold:

1. ``Obj(Γ) ⊆ Obj(Γ')`` — the refining specification speaks for at least
   the same objects;
2. ``α(Γ) ⊆ α(Γ')`` — its alphabet extends the abstract one;
3. ``∀h ∈ T(Γ') : h/α(Γ) ∈ T(Γ)`` — every concrete trace, projected to
   the abstract alphabet, is an abstract trace.

``check_refinement(Γ', Γ)`` decides all three.  Conditions 1–2 are
*static*: decided exactly and symbolically over the infinite alphabets
by :func:`repro.core.refinement.check_static` (a failure yields verdict
``STATIC_FAILED`` with the violated condition named).  Condition 3 is a
trace-set inclusion, decided over a finite universe by strategy:

* ``"automata"`` — compile both trace sets to DFAs
  (:func:`repro.checker.compile.spec_dfa`, cache-aware per DESIGN.md
  §8), lift the abstract side through the projection
  (:func:`~repro.automata.build.lift_dfa`), and decide language
  inclusion with a shortest counterexample.  Exact over the universe:
  verdict ``PROVED`` or ``REFUTED`` with a witness trace.
* ``"bounded"`` — breadth-first enumeration of ``T(Γ')``
  (:func:`repro.checker.bounded.enumerate_traces`) up to a depth bound,
  checking the projection of each trace.  Refutation-complete up to the
  bound; never proves (verdict ``BOUNDED_OK`` at best).
* ``"auto"`` — automata, falling back to bounded when the state budget
  (:class:`~repro.core.errors.StateSpaceLimitExceeded`) is exhausted.

The paper's laws about refinement — Theorem 7 (for interface
specifications, ``Γ' ⊑ Γ ⇒ Γ'‖Δ ⊑ Γ‖Δ``) and Theorem 16 (the same
congruence for general specifications, under composability and
properness side conditions) — are replayed on top of this checker by
:mod:`repro.checker.laws`.  DESIGN.md §3 situates this module in the
checker layer; §8 documents how the obligation engine parallelises and
caches calls into it.
"""

from __future__ import annotations

from repro.automata.build import lift_dfa
from repro.automata.ops import inclusion_counterexample, minimize
from repro.checker.bounded import find_violation
from repro.checker.compile import spec_dfa
from repro.checker.result import CheckResult, Verdict
from repro.checker.universe import FiniteUniverse
from repro.core.errors import RefinementError, StateSpaceLimitExceeded
from repro.core.refinement import check_static, trace_condition_holds_for
from repro.core.specification import Specification
from repro.core.traces import Trace

__all__ = ["check_refinement", "check_conformance", "refines"]


def _automata_condition3(
    concrete: Specification,
    abstract: Specification,
    universe: FiniteUniverse,
    state_limit: int,
    use_minimize: bool,
) -> CheckResult:
    a = spec_dfa(concrete, universe, state_limit=state_limit)
    b0 = spec_dfa(abstract, universe, state_limit=state_limit)
    if use_minimize:
        a = minimize(a)
        b0 = minimize(b0)
    b = lift_dfa(b0, a.letters, abstract.alphabet)
    cex = inclusion_counterexample(a, b)
    stats = {
        "universe": universe.size(),
        "concrete_dfa_states": a.n_states,
        "abstract_dfa_states": b0.n_states,
        "events": len(a.letters),
    }
    if cex is None:
        return CheckResult(
            Verdict.PROVED,
            note=f"language inclusion over {universe}",
            stats=stats,
        )
    return CheckResult(
        Verdict.REFUTED,
        note="trace of the concrete spec whose projection escapes the abstract",
        counterexample=Trace(tuple(cex)),
        stats=stats,
    )


def _bounded_condition3(
    concrete: Specification,
    abstract: Specification,
    universe: FiniteUniverse,
    depth: int,
    max_traces: int | None,
) -> CheckResult:
    cex = find_violation(
        concrete,
        universe,
        lambda h: trace_condition_holds_for(h, concrete, abstract),
        depth=depth,
        max_traces=max_traces,
    )
    stats = {"universe": universe.size(), "depth": depth}
    if cex is None:
        return CheckResult(
            Verdict.BOUNDED_OK,
            note=f"no counterexample up to depth {depth} over {universe}",
            stats=stats,
        )
    return CheckResult(
        Verdict.REFUTED,
        note="trace of the concrete spec whose projection escapes the abstract",
        counterexample=cex,
        stats=stats,
    )


def check_refinement(
    concrete: Specification,
    abstract: Specification,
    universe: FiniteUniverse | None = None,
    strategy: str = "auto",
    depth: int = 8,
    max_traces: int | None = 200_000,
    state_limit: int = 100_000,
    use_minimize: bool = False,
) -> CheckResult:
    """Decide ``concrete ⊑ abstract`` (see module docstring)."""
    static = check_static(concrete, abstract)
    if not static.ok:
        cex = None
        if static.alphabet_witness is not None:
            cex = Trace.of(static.alphabet_witness)
        return CheckResult(
            Verdict.STATIC_FAILED,
            note=static.explain(),
            counterexample=cex,
            static=static,
        )
    if universe is None:
        universe = FiniteUniverse.for_specs(concrete, abstract)
    if strategy == "automata":
        result = _automata_condition3(
            concrete, abstract, universe, state_limit, use_minimize
        )
    elif strategy == "bounded":
        result = _bounded_condition3(
            concrete, abstract, universe, depth, max_traces
        )
    elif strategy == "auto":
        try:
            result = _automata_condition3(
                concrete, abstract, universe, state_limit, use_minimize
            )
        except StateSpaceLimitExceeded:
            result = _bounded_condition3(
                concrete, abstract, universe, depth, max_traces
            )
    else:
        raise RefinementError(f"unknown strategy {strategy!r}")
    return CheckResult(
        result.verdict,
        note=result.note,
        counterexample=result.counterexample,
        static=static,
        stats=result.stats,
    )


def check_conformance(
    spec: Specification,
    view: Specification,
    universe: FiniteUniverse | None = None,
    strategy: str = "auto",
    depth: int = 8,
    max_traces: int | None = 200_000,
    state_limit: int = 100_000,
) -> CheckResult:
    """Decide ``∀h ∈ T(spec) : h/α(view) ∈ T(view)`` — condition 3 alone.

    Refinement (Definition 2) additionally demands object-set and alphabet
    inclusion; *conformance* drops them, asking only that the spec's
    behaviour, projected onto the view's alphabet, stays within the view.
    This is the right question between specifications of *different*
    objects — e.g. "does the coordinator's protocol respect each
    participant's own view of the exchange?" — and it is also the
    soundness condition of Section 2 with a specification in place of a
    semantic object.
    """
    if universe is None:
        universe = FiniteUniverse.for_specs(spec, view)
    if strategy == "bounded":
        return _bounded_condition3(spec, view, universe, depth, max_traces)
    try:
        return _automata_condition3(spec, view, universe, state_limit, False)
    except StateSpaceLimitExceeded:
        if strategy == "automata":
            raise
        return _bounded_condition3(spec, view, universe, depth, max_traces)


def refines(
    concrete: Specification,
    abstract: Specification,
    universe: FiniteUniverse | None = None,
    **kwargs,
) -> bool:
    """Boolean convenience wrapper: positive verdict of :func:`check_refinement`."""
    return check_refinement(concrete, abstract, universe, **kwargs).holds
