"""Bounded trace exploration.

The fallback strategy when exact compilation is unavailable (unbounded
counters, enormous universes): enumerate the traces of a trace set
breadth-first up to a depth bound.  Prefix closure makes the enumeration
prunable — once a prefix leaves the trace set, no extension can re-enter
it — so the frontier only ever contains members.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

from repro.checker.universe import FiniteUniverse
from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.traces import Trace
from repro.core.tracesets import ComposedTraceSet, FullTraceSet, MachineTraceSet

__all__ = ["enumerate_traces", "find_violation"]


def enumerate_traces(
    spec: Specification,
    universe: FiniteUniverse,
    depth: int,
    max_traces: int | None = None,
) -> Iterator[Trace]:
    """Yield the traces of ``T(Γ)`` over the universe, up to ``depth`` events.

    Breadth-first: all traces of length *n* before any of length *n+1*.
    For machine trace sets the machine state rides along the frontier; for
    composed trace sets each candidate extension re-runs the hidden-event
    search (complete but slower — measured in the benchmarks).
    """
    events = universe.events_for(spec.alphabet)
    ts = spec.traces
    count = 0
    if isinstance(ts, (FullTraceSet, MachineTraceSet)):
        machine = ts.machine()
        init = machine.initial()
        if not machine.ok(init):
            return
        queue: deque[tuple[Trace, object]] = deque([(Trace.empty(), init)])
        while queue:
            trace, state = queue.popleft()
            yield trace
            count += 1
            if max_traces is not None and count >= max_traces:
                return
            if len(trace) >= depth:
                continue
            for e in events:
                nxt = machine.step(state, e)
                if machine.ok(nxt):
                    queue.append((trace.append(e), nxt))
        return
    if isinstance(ts, ComposedTraceSet):
        queue2: deque[Trace] = deque([Trace.empty()])
        if not ts.contains(Trace.empty()):
            return
        while queue2:
            trace = queue2.popleft()
            yield trace
            count += 1
            if max_traces is not None and count >= max_traces:
                return
            if len(trace) >= depth:
                continue
            for e in events:
                cand = trace.append(e)
                if ts.contains(cand):
                    queue2.append(cand)
        return
    raise TypeError(f"cannot enumerate trace set {ts!r}")


def find_violation(
    spec: Specification,
    universe: FiniteUniverse,
    predicate: Callable[[Trace], bool],
    depth: int,
    max_traces: int | None = None,
) -> Trace | None:
    """First enumerated trace of ``T(Γ)`` violating ``predicate``, if any."""
    for h in enumerate_traces(spec, universe, depth, max_traces):
        if not predicate(h):
            return h
    return None
