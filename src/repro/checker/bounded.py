"""Bounded trace exploration.

The fallback strategy when exact compilation is unavailable (unbounded
counters, enormous universes): enumerate the traces of a trace set
breadth-first up to a depth bound.  Prefix closure makes the enumeration
prunable — once a prefix leaves the trace set, no extension can re-enter
it — so the frontier only ever contains members.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

from repro.checker.universe import FiniteUniverse
from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.traces import Trace
from repro.core.tracesets import ComposedTraceSet, FullTraceSet, MachineTraceSet

__all__ = ["enumerate_traces", "find_violation"]


def _bounded_bfs(
    seed,
    trace_of: Callable,
    successors: Callable,
    depth: int,
    max_traces: int | None,
) -> Iterator[Trace]:
    """The shared breadth-first driver behind :func:`enumerate_traces`.

    ``seed`` is the frontier entry for the empty trace (or None when the
    empty trace is not in the set), ``trace_of`` extracts the trace from
    a frontier entry, and ``successors`` yields the entries for its
    one-event extensions.  Both trace-set representations enumerate
    through this one loop, so counting against ``max_traces`` cannot
    drift between them: every yield — and nothing else — consumes budget,
    and expansion stops as soon as the queued frontier already covers the
    remaining budget (``successors`` can be expensive for composed trace
    sets, so never-yielded entries are never computed).
    """
    if seed is None:
        return
    queue: deque = deque([seed])
    count = 0
    while queue:
        entry = queue.popleft()
        yield trace_of(entry)
        count += 1
        if max_traces is not None:
            if count >= max_traces:
                return
            if count + len(queue) >= max_traces:
                continue  # frontier already covers the budget
        if len(trace_of(entry)) >= depth:
            continue
        queue.extend(successors(entry))


def enumerate_traces(
    spec: Specification,
    universe: FiniteUniverse,
    depth: int,
    max_traces: int | None = None,
) -> Iterator[Trace]:
    """Yield the traces of ``T(Γ)`` over the universe, up to ``depth`` events.

    Breadth-first: all traces of length *n* before any of length *n+1*,
    at most ``max_traces`` in total.  For machine trace sets the machine
    state rides along the frontier; for composed trace sets each candidate
    extension re-runs the hidden-event search (complete but slower —
    measured in the benchmarks).  Both branches share one driver, so the
    enumeration order and the ``max_traces`` accounting are identical
    whichever representation a specification uses.
    """
    events = universe.events_for(spec.alphabet)
    ts = spec.traces
    if isinstance(ts, (FullTraceSet, MachineTraceSet)):
        machine = ts.machine()
        init = machine.initial()

        def machine_successors(entry):
            trace, state = entry
            for e in events:
                nxt = machine.step(state, e)
                if machine.ok(nxt):
                    yield (trace.append(e), nxt)

        seed = (Trace.empty(), init) if machine.ok(init) else None
        yield from _bounded_bfs(
            seed, lambda entry: entry[0], machine_successors, depth, max_traces
        )
        return
    if isinstance(ts, ComposedTraceSet):

        def composed_successors(trace):
            for e in events:
                cand = trace.append(e)
                if ts.contains(cand):
                    yield cand

        seed2 = Trace.empty() if ts.contains(Trace.empty()) else None
        yield from _bounded_bfs(
            seed2, lambda trace: trace, composed_successors, depth, max_traces
        )
        return
    raise TypeError(f"cannot enumerate trace set {ts!r}")


def find_violation(
    spec: Specification,
    universe: FiniteUniverse,
    predicate: Callable[[Trace], bool],
    depth: int,
    max_traces: int | None = None,
) -> Trace | None:
    """First enumerated trace of ``T(Γ)`` violating ``predicate``, if any."""
    for h in enumerate_traces(spec, universe, depth, max_traces):
        if not predicate(h):
            return h
    return None
