"""Randomised trace sampling: the statistical fallback strategy.

For universes or machines too large even for bounded breadth-first
enumeration, random walks through the trace set still hunt for
counterexamples: from the current machine state, pick uniformly among the
events that keep the machine ``ok`` and recurse.  Sampling can only
*refute*; a clean run yields ``UNKNOWN`` with the sampling parameters in
the note (unlike ``BOUNDED_OK`` there is no exhaustiveness up to a depth).

Walks are seeded and reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.checker.result import CheckResult, Verdict
from repro.checker.universe import FiniteUniverse
from repro.core.refinement import check_static, trace_condition_holds_for
from repro.core.specification import Specification
from repro.core.traces import Trace
from repro.core.tracesets import ComposedTraceSet, FullTraceSet, MachineTraceSet

__all__ = ["random_traces", "sample_refinement"]


def random_traces(
    spec: Specification,
    universe: FiniteUniverse,
    n_walks: int,
    max_len: int,
    seed: int = 0,
) -> Iterator[Trace]:
    """Yield ``n_walks`` random members of ``T(Γ)`` over the universe.

    Each walk extends the empty trace by uniformly chosen admitted events
    until ``max_len`` or a dead end; the (possibly shorter) reached trace
    is yielded.  Prefix closure guarantees every yielded trace is a
    member.
    """
    rng = random.Random(seed)
    events = universe.events_for(spec.alphabet)
    ts = spec.traces
    if isinstance(ts, (FullTraceSet, MachineTraceSet)):
        machine = ts.machine()
        for _ in range(n_walks):
            state = machine.initial()
            if not machine.ok(state):
                return
            trace = Trace.empty()
            for _ in range(max_len):
                candidates = []
                for e in events:
                    nxt = machine.step(state, e)
                    if machine.ok(nxt):
                        candidates.append((e, nxt))
                if not candidates:
                    break
                e, state = candidates[rng.randrange(len(candidates))]
                trace = trace.append(e)
            yield trace
        return
    if isinstance(ts, ComposedTraceSet):
        for _ in range(n_walks):
            trace = Trace.empty()
            if not ts.contains(trace):
                return
            for _ in range(max_len):
                candidates = [
                    e for e in events if ts.contains(trace.append(e))
                ]
                if not candidates:
                    break
                trace = trace.append(candidates[rng.randrange(len(candidates))])
            yield trace
        return
    raise TypeError(f"cannot sample trace set {ts!r}")


def sample_refinement(
    concrete: Specification,
    abstract: Specification,
    universe: FiniteUniverse | None = None,
    n_walks: int = 50,
    max_len: int = 12,
    seed: int = 0,
) -> CheckResult:
    """Hunt for a refinement-condition-3 counterexample by random walks.

    Checks the projection of every *prefix* of each walk (the shortest
    violating prefix is reported), so one deep walk tests many traces.
    """
    static = check_static(concrete, abstract)
    if not static.ok:
        cex = (
            Trace.of(static.alphabet_witness)
            if static.alphabet_witness is not None
            else None
        )
        return CheckResult(
            Verdict.STATIC_FAILED, note=static.explain(),
            counterexample=cex, static=static,
        )
    if universe is None:
        universe = FiniteUniverse.for_specs(concrete, abstract)
    tested = 0
    for walk in random_traces(concrete, universe, n_walks, max_len, seed):
        # binary-search-free shortest violation scan: prefixes in order
        for prefix in walk.prefixes():
            tested += 1
            if not trace_condition_holds_for(prefix, concrete, abstract):
                return CheckResult(
                    Verdict.REFUTED,
                    note=f"violating trace found by sampling "
                    f"(seed {seed}, {tested} prefixes tested)",
                    counterexample=prefix,
                    static=static,
                    stats={"prefixes_tested": tested, "universe": universe.size()},
                )
    return CheckResult(
        Verdict.UNKNOWN,
        note=f"no counterexample in {n_walks} walks × ≤{max_len} events "
        f"(seed {seed}; sampling cannot prove)",
        static=static,
        stats={"prefixes_tested": tested, "universe": universe.size()},
    )
