"""Reports: the pairwise refinement lattice of a family of specifications.

Viewpoint development revolves around which partial specifications refine
which (the paper's Examples 1–3 form a small lattice).  ``refinement_matrix``
computes all pairwise refinement verdicts and renders them as a table;
``hasse_edges`` extracts the transitive reduction — the edges one would
draw in the development diagram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.checker.refinement import check_refinement
from repro.checker.result import CheckResult
from repro.checker.universe import FiniteUniverse
from repro.core.specification import Specification

__all__ = ["RefinementMatrix", "refinement_matrix"]


@dataclass(frozen=True, slots=True)
class RefinementMatrix:
    """All pairwise refinement verdicts among ``specs``.

    ``results[i][j]`` answers ``specs[i] ⊑ specs[j]`` (``None`` on the
    diagonal — reflexivity is a theorem, not worth a DFA).
    """

    specs: tuple[Specification, ...]
    results: tuple[tuple[CheckResult | None, ...], ...]

    def holds(self, i: int, j: int) -> bool:
        if i == j:
            return True
        result = self.results[i][j]
        return result is not None and result.holds

    def hasse_edges(self) -> list[tuple[str, str]]:
        """Transitive reduction of the refinement order: (concrete, abstract).

        An edge i→j survives iff i ⊑ j strictly and no distinct k sits
        between them (i ⊑ k ⊑ j).  Mutually-refining specifications
        (extensionally equal) produce no edges.
        """
        n = len(self.specs)
        edges = []
        for i in range(n):
            for j in range(n):
                if i == j or not self.holds(i, j) or self.holds(j, i):
                    continue
                between = any(
                    k not in (i, j)
                    and self.holds(i, k)
                    and self.holds(k, j)
                    and not self.holds(k, i)
                    and not self.holds(j, k)
                    for k in range(n)
                )
                if not between:
                    edges.append((self.specs[i].name, self.specs[j].name))
        return sorted(edges)

    def format_table(self) -> str:
        """Markdown matrix: row ⊑ column?"""
        names = [s.name for s in self.specs]
        header = "| ⊑ | " + " | ".join(names) + " |"
        sep = "|---" * (len(names) + 1) + "|"
        rows = [header, sep]
        for i, name in enumerate(names):
            cells = []
            for j in range(len(names)):
                if i == j:
                    cells.append("·")
                else:
                    cells.append("✓" if self.holds(i, j) else "✗")
            rows.append(f"| **{name}** | " + " | ".join(cells) + " |")
        return "\n".join(rows)


def refinement_matrix(
    specs: Sequence[Specification],
    universe: FiniteUniverse | None = None,
    **kwargs,
) -> RefinementMatrix:
    """Compute all pairwise refinement checks among ``specs``."""
    if universe is None:
        universe = FiniteUniverse.for_specs(*specs)
    results: list[tuple[CheckResult | None, ...]] = []
    for i, concrete in enumerate(specs):
        row: list[CheckResult | None] = []
        for j, abstract in enumerate(specs):
            if i == j:
                row.append(None)
            else:
                row.append(
                    check_refinement(concrete, abstract, universe, **kwargs)
                )
        results.append(tuple(row))
    return RefinementMatrix(tuple(specs), tuple(results))
