"""Soundness of specifications with respect to semantic components.

Section 2 of the paper: an interface specification ``Γ`` of an object
``o`` is *sound* when every trace the object can actually produce is
admitted by the specification after projection —
``∀h ∈ T^o : h/α(Γ) ∈ T(Γ)``.  The component generalisation relates the
traces of a semantic component ``C`` (Definition 9: a set of objects
with their machines and an alphabet hint) to the specification's trace
set.  Soundness is what ties the partial-specification discipline to
reality: a spec may say *less* than the component does (partiality),
never *other* than it does.

:func:`check_soundness` decides the condition over a finite universe as
a DFA language inclusion, exactly like refinement condition 3 — the
component's trace DFA (:func:`repro.checker.compile.traceset_dfa`)
against the specification's, lifted through the alphabet projection.
:func:`universe_for_component` builds the canonical universe covering
the component's and the specifications' mentioned values.

Lemma 13 — if ``Γ`` and ``Δ`` are sound specifications of ``C``, so is
``Γ‖Δ`` — is replayed on concrete components by
:func:`repro.checker.laws.law_lemma13`, with this module discharging
both premises and the conclusion.  DESIGN.md §3 places this module in
the checker layer; the obligation engine (§8) runs soundness obligations
in parallel with the rest, with both DFA compilations served by the
machine cache.
"""

from __future__ import annotations

from repro.automata.build import lift_dfa
from repro.automata.ops import inclusion_counterexample
from repro.checker.compile import spec_dfa, traceset_dfa
from repro.checker.result import CheckResult, Verdict
from repro.checker.universe import FiniteUniverse
from repro.core.component import Component
from repro.core.specification import Specification
from repro.core.traces import Trace

__all__ = ["universe_for_component", "check_soundness"]


def universe_for_component(
    component: Component,
    *specs: Specification,
    env_objects: int = 2,
    data_values: int = 1,
) -> FiniteUniverse:
    """Universe covering a component's hint and the given specifications."""
    alphabets = [component.alphabet_hint] + [s.alphabet for s in specs]
    objects = set(component.object_set())
    extra: list = []
    for member in component.members:
        extra.extend(sorted(member.machine.mentioned_values(), key=repr))
    for s in specs:
        objects |= set(s.objects)
        extra.extend(sorted(s.traces.mentioned_values(), key=repr))
    return FiniteUniverse.for_alphabets(
        alphabets,
        objects=objects,
        env_objects=env_objects,
        data_values=data_values,
        extra=extra,
    )


def check_soundness(
    spec: Specification,
    component: Component,
    universe: FiniteUniverse | None = None,
    state_limit: int = 100_000,
) -> CheckResult:
    """Decide ``∀h ∈ T^C : h/α(Γ) ∈ T(Γ)`` over a finite universe.

    The component's trace set compiles through the hidden-closure subset
    construction; the specification is lifted through the projection; the
    question becomes language inclusion with a shortest counterexample.
    """
    if universe is None:
        universe = universe_for_component(component, spec)
    c_dfa = traceset_dfa(component.trace_set(), universe, state_limit)
    s_dfa = spec_dfa(spec, universe, state_limit)
    lifted = lift_dfa(s_dfa, c_dfa.letters, spec.alphabet)
    cex = inclusion_counterexample(c_dfa, lifted)
    stats = {
        "universe": universe.size(),
        "component_dfa_states": c_dfa.n_states,
        "spec_dfa_states": s_dfa.n_states,
    }
    if cex is None:
        return CheckResult(
            Verdict.PROVED,
            note=f"{spec.name} is a sound specification of {component!r} "
            f"over {universe}",
            stats=stats,
        )
    return CheckResult(
        Verdict.REFUTED,
        note=f"component trace whose projection escapes T({spec.name})",
        counterexample=Trace(tuple(cex)),
        stats=stats,
    )
