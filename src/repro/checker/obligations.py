"""Proof obligations: named, reproducible checking tasks with a log.

The paper (Johnsen & Owe, *Composition and Refinement for Partial
Object Specifications*) verifies its claims in PVS; this repository
replays them as a list of :class:`Obligation` values — one per numbered
claim and worked example — run by a :class:`ProofSession` that collects
verdicts, timings, and counterexamples, and renders them as a table (the
content of EXPERIMENTS.md is generated from such a session).

An obligation is a *closed* checking task: its ``check`` thunk captures
the specifications, universe, and strategy it needs, takes no arguments,
and returns a :class:`~repro.checker.result.CheckResult`.  ``expected``
records what the paper claims (``True`` for theorems, ``False`` for
deliberate non-examples such as "RW does not refine Read2"), so a
session reports *agreement with the paper*, not bare verdicts.  The
claims discharged per obligation map onto the paper as follows (see
DESIGN.md §3 for the architecture and §8 for how the engine runs them):

* refinement obligations decide Definition 2 via
  :func:`repro.checker.refinement.check_refinement`;
* law obligations replay Lemma 6, Theorem 7, Theorem 16 and the other
  numbered claims via the ``law_*`` functions of
  :mod:`repro.checker.laws`;
* soundness obligations decide the Section 2 condition via
  :func:`repro.checker.soundness.check_soundness` (Lemma 13 is the
  composition-preserves-soundness law).

Because obligations never share mutable state, a session of them is
embarrassingly parallel; :mod:`repro.checker.engine` exploits exactly
this, producing sessions indistinguishable from :meth:`ProofSession.run`
up to wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.checker.result import CheckResult, Verdict
from repro.core.errors import ReproError

__all__ = ["Obligation", "ObligationOutcome", "ProofSession"]


@dataclass(frozen=True, slots=True)
class Obligation:
    """One named check.

    ``expected`` records the paper's claim (``True`` for theorems, ``False``
    for deliberate non-examples such as "RW does not refine Read2") so the
    session can mark agreement rather than bare verdicts.
    """

    ident: str
    title: str
    check: Callable[[], CheckResult]
    expected: bool = True
    source: str = ""


@dataclass(frozen=True, slots=True)
class ObligationOutcome:
    obligation: Obligation
    result: CheckResult | None
    error: str | None
    seconds: float

    @property
    def agrees(self) -> bool:
        """Did the verdict agree with the paper's claim?"""
        if self.result is None:
            return False
        if self.obligation.expected:
            return self.result.holds
        return self.result.verdict in (Verdict.REFUTED, Verdict.STATIC_FAILED)

    def status(self) -> str:
        if self.error is not None:
            return "ERROR"
        return "agree" if self.agrees else "DISAGREE"


@dataclass
class ProofSession:
    """Runs obligations and accumulates outcomes."""

    outcomes: list[ObligationOutcome] = field(default_factory=list)

    def run(self, obligations: Iterable[Obligation]) -> "ProofSession":
        for ob in obligations:
            start = time.perf_counter()
            result: CheckResult | None = None
            error: str | None = None
            try:
                result = ob.check()
            except ReproError as exc:  # premise failures, budget exhaustion
                error = f"{type(exc).__name__}: {exc}"
            elapsed = time.perf_counter() - start
            self.outcomes.append(ObligationOutcome(ob, result, error, elapsed))
        return self

    @property
    def all_agree(self) -> bool:
        return all(o.agrees for o in self.outcomes)

    def failures(self) -> Sequence[ObligationOutcome]:
        return [o for o in self.outcomes if not o.agrees]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def format_table(self) -> str:
        """Markdown table of the session's outcomes."""
        header = (
            "| id | claim | paper says | verdict | status | time (s) |\n"
            "|---|---|---|---|---|---|"
        )
        rows = [header]
        for o in self.outcomes:
            claim = "holds" if o.obligation.expected else "fails"
            verdict = (
                o.result.verdict.value if o.result is not None else "error"
            )
            rows.append(
                f"| {o.obligation.ident} | {o.obligation.title} | {claim} "
                f"| {verdict} | {o.status()} | {o.seconds:.3f} |"
            )
        return "\n".join(rows)

    def format_details(self) -> str:
        lines = []
        for o in self.outcomes:
            lines.append(f"== {o.obligation.ident}: {o.obligation.title}")
            if o.obligation.source:
                lines.append(f"   source: {o.obligation.source}")
            if o.error is not None:
                lines.append(f"   ERROR: {o.error}")
            elif o.result is not None:
                lines.append(f"   {o.result.explain()}")
            lines.append(f"   status: {o.status()}  ({o.seconds:.3f}s)")
        return "\n".join(lines)
