"""The checking environment: finite universes, DFA compilation, refinement
and soundness strategies, trace-set equality, law replays, obligations —
plus the parallel obligation engine and the content-addressed machine
cache that back ``repro claims``/``check``/``verify`` (DESIGN.md §8)."""

from repro.checker.bounded import enumerate_traces, find_violation
from repro.checker.cache import (
    ENGINE_CACHE_VERSION,
    CacheStats,
    MachineCache,
    active_cache,
    use_cache,
)
from repro.checker.compile import composed_hidden_events, spec_dfa, traceset_dfa
from repro.checker.engine import (
    EngineConfig,
    EngineRun,
    ObligationEngine,
    ObligationSource,
)
from repro.checker.equality import alphabets_equal, specs_equal, trace_sets_equal
from repro.checker.fingerprint import fingerprint, fingerprint_bytes
from repro.checker.laws import (
    law_lemma6,
    law_lemma13,
    law_lemma15,
    law_property5,
    law_property12,
    law_property17,
    law_theorem7,
    law_theorem16,
    law_theorem18,
)
from repro.checker.obligations import Obligation, ObligationOutcome, ProofSession
from repro.checker.refinement import check_conformance, check_refinement, refines
from repro.checker.report import RefinementMatrix, refinement_matrix
from repro.checker.result import CheckResult, Verdict
from repro.checker.sampling import random_traces, sample_refinement
from repro.checker.soundness import check_soundness, universe_for_component
from repro.checker.universe import FiniteUniverse

__all__ = [
    "enumerate_traces",
    "find_violation",
    "ENGINE_CACHE_VERSION",
    "CacheStats",
    "MachineCache",
    "active_cache",
    "use_cache",
    "EngineConfig",
    "EngineRun",
    "ObligationEngine",
    "ObligationSource",
    "fingerprint",
    "fingerprint_bytes",
    "composed_hidden_events",
    "spec_dfa",
    "traceset_dfa",
    "alphabets_equal",
    "specs_equal",
    "trace_sets_equal",
    "law_lemma6",
    "law_lemma13",
    "law_lemma15",
    "law_property5",
    "law_property12",
    "law_property17",
    "law_theorem7",
    "law_theorem16",
    "law_theorem18",
    "Obligation",
    "ObligationOutcome",
    "ProofSession",
    "check_conformance",
    "check_refinement",
    "refines",
    "CheckResult",
    "Verdict",
    "random_traces",
    "sample_refinement",
    "RefinementMatrix",
    "refinement_matrix",
    "check_soundness",
    "universe_for_component",
    "FiniteUniverse",
]
