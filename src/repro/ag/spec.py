"""Assumption/guarantee specifications.

Section 9 of the paper situates the formalism as the semantic basis of
OUN, which "relies on input/output driven assumption guarantee
specifications of generic behavioral interfaces".  This module provides
that layer on top of the core formalism.

For an object ``o``, events split into *inputs* (calls **to** ``o``) and
*outputs* (calls **from** ``o``).  An :class:`AGSpec` pairs

* an **assumption** ``A`` — a trace predicate on the input projection,
  describing how the environment is expected to drive the object, and
* a **guarantee** ``G`` — a trace predicate on the full (or output)
  trace, describing what the object promises in return.

The induced trace set follows the standard rely/guarantee reading: a
trace is admitted iff the guarantee holds on every prefix whose *strict
past* satisfies the assumption — once the environment breaks the
assumption, the object is off the hook from the next event onward::

    h ∈ T(A ▷ G)  ⟺  ∀ prefixes g of h :
        (∀ proper prefixes g' of g : A(g'/inputs))  ⇒  G(g)

This is itself a prefix-closed trace set, so an :class:`AGSpec` converts
to an ordinary :class:`~repro.core.specification.Specification`
(:meth:`AGSpec.to_specification`) and everything in the library —
refinement, composition, the checker — applies unchanged.

Refinement of AG specifications follows the classic contract order,
*weaken the assumption, strengthen the guarantee*; the tests confirm that
this implies refinement of the induced specifications (Definition 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.alphabet import Alphabet
from repro.core.errors import SpecificationError
from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.tracesets import MachineTraceSet
from repro.core.values import ObjectId
from repro.machines.base import TraceMachine

__all__ = ["AGSpec", "AGMachine", "inputs_of", "outputs_of"]


def inputs_of(o: ObjectId):
    """Membership predicate for the input events of ``o`` (calls to it)."""

    def pred(e: Event) -> bool:
        return e.callee == o

    return pred


def outputs_of(o: ObjectId):
    """Membership predicate for the output events of ``o`` (calls by it)."""

    def pred(e: Event) -> bool:
        return e.caller == o

    return pred


class AGMachine(TraceMachine):
    """The rely/guarantee trace machine (see module docstring).

    State is ``(assumption_state, assumption_alive, guarantee_state)``
    where ``assumption_alive`` records whether the assumption held on the
    *strict past*'s inputs.  ``ok`` demands the guarantee only while the
    assumption is alive.
    """

    def __init__(
        self,
        obj: ObjectId,
        assumption: TraceMachine,
        guarantee: TraceMachine,
    ) -> None:
        self.obj = obj
        self.assumption = assumption
        self.guarantee = guarantee
        self._is_input = inputs_of(obj)

    def initial(self) -> Hashable:
        a0 = self.assumption.initial()
        return (a0, True, self.guarantee.initial())

    def step(self, state: Hashable, event: Event) -> Hashable:
        a_state, alive, g_state = state
        # The assumption judges the past *before* this event, so first
        # decide liveness from the current assumption state, then advance.
        alive = alive and self.assumption.ok(a_state)
        if self._is_input(event):
            a_state = self.assumption.step(a_state, event)
        g_state = self.guarantee.step(g_state, event)
        return (a_state, alive, g_state)

    def ok(self, state: Hashable) -> bool:
        _a_state, alive, g_state = state
        if not alive:
            return True  # environment broke the contract first
        return self.guarantee.ok(g_state)

    def mentioned_values(self) -> frozenset:
        return (
            frozenset((self.obj,))
            | self.assumption.mentioned_values()
            | self.guarantee.mentioned_values()
        )

    def cache_key_parts(self):
        return (self.obj, self.assumption, self.guarantee)

    def __repr__(self) -> str:
        return f"AGMachine({self.obj}, A={self.assumption!r}, G={self.guarantee!r})"


@dataclass(frozen=True, slots=True, eq=False)
class AGSpec:
    """An assumption/guarantee interface specification of one object."""

    name: str
    obj: ObjectId
    alphabet: Alphabet
    assumption: TraceMachine
    guarantee: TraceMachine

    def machine(self) -> AGMachine:
        return AGMachine(self.obj, self.assumption, self.guarantee)

    def to_specification(self) -> Specification:
        """The induced ordinary specification (Definition 1 triple)."""
        spec = Specification(
            self.name,
            frozenset((self.obj,)),
            self.alphabet,
            MachineTraceSet(self.alphabet, self.machine()),
        )
        spec.validate(require_infinite=True)
        return spec

    def contract(self, assumption: TraceMachine | None = None,
                 guarantee: TraceMachine | None = None,
                 name: str | None = None) -> "AGSpec":
        """Derive a variant with a replaced assumption and/or guarantee."""
        return AGSpec(
            name or self.name,
            self.obj,
            self.alphabet,
            assumption if assumption is not None else self.assumption,
            guarantee if guarantee is not None else self.guarantee,
        )

    def __repr__(self) -> str:
        return f"AGSpec({self.name}, obj={self.obj})"
