"""Assumption/guarantee specifications (the OUN layer of Section 9)."""

from repro.ag.spec import AGMachine, AGSpec, inputs_of, outputs_of

__all__ = ["AGMachine", "AGSpec", "inputs_of", "outputs_of"]
