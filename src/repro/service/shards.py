"""Sharded monitor workers: parallel checking with per-callee order.

Events are routed to one of ``n`` workers by a *stable* hash of the
callee :class:`~repro.core.values.ObjectId` (CRC-32 of the name — Python's
``hash`` is salted per process and would re-shard on restart).  Each
worker drains its own FIFO queue, so:

* all events with the same callee are checked in arrival order (the
  paper's per-object projection ``h/o`` is order-preserving), while
* events on distinct callees check in parallel, exactly as ``Γ‖Δ``
  composes trace sets over interleaved streams.

The pool is workload-agnostic: it executes submitted thunks. Sessions
submit "feed event to my monitor for this shard" closures and use
:meth:`ShardPool.flush` as a barrier before reporting status.

A :class:`ShardRouter` memoises the callee → shard mapping for one event
stream: the key formatting and CRC run once per *distinct* callee instead
of once per event, which matters on the server's hot path where a session
streams thousands of events at a handful of objects.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.obs.registry import get_registry

__all__ = ["shard_index", "BatchTask", "ShardPool", "ShardRouter"]

DEFAULT_QUEUE_SIZE = 1024


def shard_index(callee_name: str, shards: int) -> int:
    """Stable shard of a callee name: identical across runs and processes."""
    if shards < 1:
        raise ValueError("shard count must be positive")
    if shards == 1:
        return 0
    return zlib.crc32(callee_name.encode("utf-8")) % shards


@dataclass(slots=True)
class _Flush:
    """Queue sentinel: resolves its future once the worker reaches it."""

    future: asyncio.Future


@dataclass(slots=True)
class BatchTask:
    """One queue unit carrying a whole batch of ``size`` events.

    The binary protocol's ``EVENTS`` verb submits one of these per frame
    instead of one thunk per event, so queue traffic (put/get, task_done,
    backpressure checks) is paid once per batch.  Workers account the
    carried event count separately from the task count — the ratio of
    ``repro_shard_batched_events_total`` to ``repro_shard_tasks_total``
    is the realised amortisation factor.
    """

    thunk: Callable[[], None]
    size: int


class ShardPool:
    """``n`` single-consumer FIFO workers keyed by callee hash."""

    def __init__(self, shards: int, *, queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        if shards < 1:
            raise ValueError("shard count must be positive")
        self.shards = shards
        self._queues: list[asyncio.Queue] = [
            asyncio.Queue(maxsize=queue_size) for _ in range(shards)
        ]
        self._workers: list[asyncio.Task] = []
        self.tasks_run = 0
        self.task_errors = 0
        registry = get_registry()
        self._c_tasks = registry.counter(
            "repro_shard_tasks_total", help="Thunks executed by shard workers."
        )
        self._c_errors = registry.counter(
            "repro_shard_task_errors_total",
            help="Shard thunks that raised (the worker survives).",
        )
        self._c_batched = registry.counter(
            "repro_shard_batched_events_total",
            help="Events carried by BatchTask queue units.",
        )

    def shard_of(self, callee_name: str) -> int:
        return shard_index(callee_name, self.shards)

    async def start(self) -> None:
        if self._workers:
            return
        self._workers = [
            asyncio.create_task(self._run(q), name=f"repro-shard-{i}")
            for i, q in enumerate(self._queues)
        ]

    async def _run(self, queue: asyncio.Queue) -> None:
        while True:
            item = await queue.get()
            try:
                if item is None:
                    return
                if isinstance(item, _Flush):
                    if not item.future.done():
                        item.future.set_result(None)
                    continue
                if isinstance(item, BatchTask):
                    self._c_batched.inc(item.size)
                    item = item.thunk
                self.tasks_run += 1
                self._c_tasks.inc()
                try:
                    item()
                except Exception:
                    # a failing thunk must not kill the shard; sessions
                    # account their own errors inside the thunk
                    self.task_errors += 1
                    self._c_errors.inc()
            finally:
                queue.task_done()

    async def submit(self, callee_name: str, thunk: Callable[[], None]) -> int:
        """Enqueue a thunk on the callee's shard; returns the shard index.

        ``await`` blocks when the shard queue is full — natural
        backpressure toward the submitting session.
        """
        shard = self.shard_of(callee_name)
        await self.submit_to(shard, thunk)
        return shard

    async def submit_to(self, shard: int, thunk: Callable[[], None]) -> None:
        """Enqueue a thunk on an already-resolved shard (same backpressure)."""
        await self._queues[shard].put(thunk)

    def router(self, prefix: str = "") -> "ShardRouter":
        """A memoising router over this pool namespaced by ``prefix``."""
        return ShardRouter(self, prefix)

    async def flush(self, shard_ids: Iterable[int] | None = None) -> None:
        """Barrier: resolves once every prior item on the shards is done."""
        ids = range(self.shards) if shard_ids is None else sorted(set(shard_ids))
        flushes = []
        for i in ids:
            loop = asyncio.get_running_loop()
            sentinel = _Flush(loop.create_future())
            await self._queues[i].put(sentinel)
            flushes.append(sentinel.future)
        if flushes:
            await asyncio.gather(*flushes)

    async def stop(self) -> None:
        """Drain every queue and stop the workers."""
        if not self._workers:
            return
        for q in self._queues:
            await q.put(None)
        await asyncio.gather(*self._workers)
        self._workers = []

    def __repr__(self) -> str:
        return f"ShardPool(shards={self.shards}, run={self.tasks_run})"


class ShardRouter:
    """Memoised callee → shard routing for one event stream.

    ``prefix`` is the stream's namespace (the server uses the session
    sequence number): independent sessions spread across the workers even
    when every session's spec talks to the same object names, while the
    mapping for one stream stays stable across the stream's lifetime.
    """

    __slots__ = ("pool", "prefix", "_shards", "_c_routed")

    def __init__(self, pool: ShardPool, prefix: str = "") -> None:
        self.pool = pool
        self.prefix = prefix
        self._shards: dict[str, int] = {}
        self._c_routed = get_registry().counter(
            "repro_shard_routed_callees_total",
            help="Distinct callees resolved to a shard (router cache fills).",
        )

    def shard_of(self, callee_name: str) -> int:
        shard = self._shards.get(callee_name)
        if shard is None:
            shard = self._shards[callee_name] = shard_index(
                self.prefix + callee_name, self.pool.shards
            )
            self._c_routed.inc()
        return shard

    async def submit(self, callee_name: str, thunk: Callable[[], None]) -> int:
        """Enqueue on the callee's shard; returns the shard index."""
        shard = self.shard_of(callee_name)
        await self.pool.submit_to(shard, thunk)
        return shard

    def __repr__(self) -> str:
        return (
            f"ShardRouter(prefix={self.prefix!r}, "
            f"callees={len(self._shards)})"
        )
