"""Asyncio TCP server: many concurrent monitoring sessions.

Each connection is one session — an event stream checked online against
one registered specification (the paper's soundness condition
``h/α(Γ) ∈ T(Γ)`` per connection).  Events of a single-callee spec are
routed to the shard pool by callee, so one session's independent objects
check in parallel while per-object order is preserved; a *coupled* spec
(alphabet addressing several callees — see
:func:`~repro.service.registry._coupled_callees`) pins each session to
one shard, preserving cross-callee order while different sessions still
spread over the pool.  The first violation (smallest session-global
index among the shard monitors) is what ``STATUS`` reports.

The server is single-loop: shard workers are tasks, not threads, so
monitor state and metrics need no locks.
"""

from __future__ import annotations

import asyncio
from array import array
from pathlib import Path

from repro.core.errors import ReproError
from repro.obs.metrics import ServiceMetrics, declare_cache_counters
from repro.obs.registry import get_registry
from repro.obs.trace import span
from repro.runtime import tracefile
from repro.runtime.monitor import SpecMonitor, Violation
from repro.service import durability, wire
from repro.service.protocol import (
    Command,
    ProtocolError,
    SessionStatus,
    format_status,
    parse_command,
    parse_hello,
)
from repro.service.registry import CompiledSpec, SpecRegistry
from repro.service.shards import DEFAULT_QUEUE_SIZE, BatchTask, ShardPool

__all__ = ["MonitorServer"]

#: Router key pinning a coupled spec's session to one shard.  The NUL
#: byte cannot occur in an object name parsed off the wire, so the key
#: never collides with a real callee.
_COUPLED_KEY = "\x00session"


class _Session:
    """Per-connection state: bound spec, per-shard monitors, counters."""

    __slots__ = (
        "seq",
        "router",
        "proto",
        "compiled",
        "monitors",
        "touched",
        "events",
        "skipped",
        "errors",
        "violation",
        "key",
        "received",
        "lsn",
        "since_snapshot",
        "restored_violation",
    )

    def __init__(self, seq: int, router) -> None:
        self.seq = seq
        self.router = router
        self.proto = 1
        self.compiled: CompiledSpec | None = None
        self.monitors: dict[int, SpecMonitor] = {}
        self.touched: set[int] = set()
        self.events = 0
        self.skipped = 0
        self.errors = 0
        self.violation: Violation | None = None
        #: Durable-session state.  ``key`` is the client's idempotency
        #: key (None on plain sessions); ``received`` the monotonic input
        #: watermark (every EVENT line and every EVENTS id counts one,
        #: never reset — it is what ``applied=`` reports); ``lsn`` the
        #: next log sequence number.  ``restored_violation`` carries a
        #: violation recovered from the log as ``(index, line)`` — the
        #: Violation object itself cannot be rebuilt because the bounded
        #: history that produced it is gone.
        self.key: str | None = None
        self.received = 0
        self.lsn = 0
        self.since_snapshot = 0
        self.restored_violation: tuple[int, str] | None = None

    def shard_for(self, callee_name: str) -> int:
        """The shard an event routes to, honouring the session's proto.

        A binary (proto>=2) session is pinned whole to one shard — batch
        stepping interleaves with out-of-table fallback events, and the
        relative order of the two streams is only preserved when both
        land on the same FIFO (DESIGN.md §13).  Coupled specs pin in
        every proto, as before, and so do durable sessions: replay
        applies the log in lsn order, which is only the order the
        monitor saw when the whole session drained through one FIFO.
        """
        if (
            self.proto >= 2
            or self.key is not None
            or (self.compiled is not None and self.compiled.coupled)
        ):
            return self.router.shard_of(_COUPLED_KEY)
        return self.router.shard_of(callee_name)

    def reset(self) -> None:
        for monitor in self.monitors.values():
            monitor.reset()
        self.touched.clear()
        self.events = 0
        self.skipped = 0
        self.errors = 0
        self.violation = None
        # ``received``/``lsn`` survive on purpose: the idempotency
        # watermark counts inputs consumed, not monitor state, and must
        # stay monotonic across RESET for resend dedup to stay sound.
        self.restored_violation = None

    def status(self) -> SessionStatus:
        violation = self.violation
        index = violation.index if violation else None
        line = tracefile.format_event(violation.event) if violation else None
        if violation is None and self.restored_violation is not None:
            index, line = self.restored_violation
        return SessionStatus(
            spec=self.compiled.name if self.compiled else None,
            events=self.events,
            skipped=self.skipped,
            errors=self.errors,
            violation_index=index,
            violation_event=line,
            applied=self.received if self.key is not None else None,
        )


class MonitorServer:
    """The monitoring service: registry + shard pool + metrics + TCP front."""

    def __init__(
        self,
        registry: SpecRegistry,
        *,
        shards: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: ServiceMetrics | None = None,
        metrics_interval: float | None = None,
        metrics_out=None,
        metrics_port: int | None = None,
        direct_port: int | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        max_proto: int = wire.WIRE_VERSION,
        data_dir: str | Path | None = None,
        worker_id: int = 0,
        fsync_every: int = durability.DEFAULT_FSYNC_EVERY,
        snapshot_every: int = durability.DEFAULT_SNAPSHOT_EVERY,
        watch: str | Path | None = None,
        watch_interval: float = 0.5,
        sock=None,
        listen: bool = True,
    ) -> None:
        self.registry = registry
        self.pool = ShardPool(shards, queue_size=queue_size)
        #: Durable-session support: with a data directory the server
        #: write-ahead logs every input of a keyed session and replays
        #: the log on the session's next attach (same or later process).
        #: One connection per key at a time is the operator's contract —
        #: the server does not arbitrate concurrent writers of one key.
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self._store = (
            durability.WorkerStore(
                self.data_dir, worker_id, fsync_every=fsync_every
            )
            if self.data_dir is not None
            else None
        )
        self.snapshot_every = snapshot_every
        self._watch = Path(watch) if watch is not None else None
        self._watch_interval = watch_interval
        self._watch_task: asyncio.Task | None = None
        #: ``sock``: serve an externally prepared listening socket (the
        #: SO_REUSEPORT workers of :mod:`~repro.service.topology`).
        #: ``listen=False``: no acceptor at all — handoff workers feed
        #: :meth:`_handle_connection` with sockets received over a pipe.
        self._sock = sock
        self._listen = listen
        #: Highest protocol version this server negotiates up to.
        #: ``max_proto=1`` emulates a pre-binary server (interop tests).
        self.max_proto = max_proto
        #: Pre-packed OP_LETTERS frames keyed by (spec name, version):
        #: a hot swap bumps the version, so rebinding sessions always
        #: sync the *current* table while the stale frame is purged.
        self._letters_frames: dict[tuple[str, int], bytes] = {}
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.host = host
        self.port = port
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self._session_seq = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._dump_task: asyncio.Task | None = None
        self._metrics_interval = metrics_interval
        self._metrics_out = metrics_out
        self.metrics_port = metrics_port
        self._metrics_server: asyncio.AbstractServer | None = None
        #: Optional second listener on the *same* connection handler.
        #: Scale-out workers share one advertised port (SO_REUSEPORT or
        #: descriptor handoff), which makes an individual worker
        #: unaddressable; ``direct_port=0`` gives each one a private
        #: ephemeral port so the gateway can fan in per-worker METRICS.
        self.direct_port = direct_port
        self._direct_server: asyncio.AbstractServer | None = None
        # Pre-declare the engine's cache counter families so a scrape of a
        # fresh server exposes them at zero instead of omitting them.
        declare_cache_counters(get_registry())

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the shard workers.

        With ``port=0`` the OS picks an ephemeral port; :attr:`port` holds
        the actual one afterwards (tests and benchmarks rely on this).
        """
        await self.pool.start()
        if not self._listen:
            pass  # handoff worker: connections arrive by file descriptor
        elif self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
            self.port = self._server.sockets[0].getsockname()[1]
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if self.direct_port is not None:
            self._direct_server = await asyncio.start_server(
                self._handle_connection, self.host, self.direct_port
            )
            self.direct_port = (
                self._direct_server.sockets[0].getsockname()[1]
            )
        if self._watch is not None:
            self._watch_task = asyncio.create_task(self._watch_loop())
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_scrape, self.host, self.metrics_port
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        if self._metrics_interval:
            self._dump_task = asyncio.create_task(
                self.metrics.periodic_dump(self._metrics_interval, self._metrics_out)
            )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except asyncio.CancelledError:
                pass
            self._watch_task = None
        if self._dump_task is not None:
            self._dump_task.cancel()
            try:
                await self._dump_task
            except asyncio.CancelledError:
                pass
            self._dump_task = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._direct_server is not None:
            self._direct_server.close()
            await self._direct_server.wait_closed()
            self._direct_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Sever live connections and let their handlers finish (they
        # drain through the still-running pool, durable sessions write a
        # farewell snapshot) *before* the shard workers go away.
        for conn_writer in list(self._conn_writers):
            conn_writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.pool.stop()
        if self._store is not None:
            self._store.close()

    async def __aenter__(self) -> "MonitorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.session_opened()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        self._session_seq += 1
        # Sessions are independent trace universes, so only per-callee
        # order *within* a session must be preserved — the seq-number
        # prefix spreads sessions over the workers even when every
        # session's spec talks to the same objects.
        session = _Session(
            self._session_seq, self.pool.router(prefix=f"{self._session_seq}:")
        )
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    command = parse_command(line)
                except ProtocolError as exc:
                    await self._reply(writer, f"ERR {exc}")
                    continue
                if command.verb == "EVENT":
                    await self._handle_event(session, command.arg)
                    continue
                if command.verb == "UPDATE":
                    # Handled here, not in _handle_sync: the lines=<n>
                    # form reads its document body off the same reader.
                    ok = await self._handle_update_text(
                        command.arg, reader, writer
                    )
                    if not ok:
                        break  # EOF inside the announced body
                    continue
                done = await self._handle_sync(session, command, writer)
                if done:
                    break
                if session.proto >= 2:
                    # HELLO agreed on the binary framing: the negotiation
                    # reply above was the last text line on this wire.
                    await self._binary_loop(session, reader, writer)
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.metrics.session_closed()
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            if self._durable(session):
                try:
                    await self._snapshot_session(session)
                except Exception:
                    pass  # the log already has everything; replay covers it
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reply(self, writer: asyncio.StreamWriter, line: str) -> None:
        writer.write(line.encode("utf-8") + b"\n")
        await writer.drain()

    # -- document watching (--watch) -----------------------------------------

    @staticmethod
    def _watch_stamp(path: Path) -> tuple[int, int] | None:
        try:
            st = path.stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    async def _watch_loop(self) -> None:
        """Poll the watched document and hot-swap on change.

        Polling (mtime + size) keeps this dependency-free; a failed
        reload — the classic half-saved document — counts an error and
        leaves the registry on the last good build, exactly like a
        rejected ``UPDATE``.  Bound sessions drain on their pinned
        machines either way.
        """
        reg = get_registry()
        reloads = reg.counter(
            "repro_watch_reloads_total",
            help="Successful --watch document hot-swaps.",
        )
        failures = reg.counter(
            "repro_watch_errors_total",
            help="--watch reloads rejected (unreadable or invalid document).",
        )
        last = self._watch_stamp(self._watch)
        while True:
            await asyncio.sleep(self._watch_interval)
            stamp = self._watch_stamp(self._watch)
            if stamp is None or stamp == last:
                continue
            last = stamp
            try:
                text = self._watch.read_text(encoding="utf-8")
                self._apply_update(text=text)
            except (OSError, ReproError):
                failures.inc()
                continue
            reloads.inc()

    # -- durable sessions ----------------------------------------------------

    def _durable(self, session: _Session) -> bool:
        return session.key is not None and self._store is not None

    def _append_record(
        self, session: _Session, opcode: int, body: bytes, inputs: int
    ) -> None:
        """Write-ahead log one record and advance the session watermark."""
        record = durability.encode_record(
            opcode, session.key, session.lsn, session.received, body
        )
        shard = session.router.shard_of(_COUPLED_KEY)
        self._store.append(shard, record)
        session.lsn += 1
        session.received += inputs
        session.since_snapshot += inputs

    def _snapshot_payload(self, session: _Session) -> dict | None:
        """The session's snapshot, or None when it cannot be snapshotted.

        A deoptimised monitor (alive but fallen off the dense table) has
        no stable integer state to persist — recovery replays more log
        instead, which is always correct, just slower.
        """
        monitor_state = None
        shard = session.router.shard_of(_COUPLED_KEY)
        monitor = session.monitors.get(shard)
        if monitor is not None:
            if monitor.alive and monitor._dstate is None:
                return None
            monitor_state = {"alive": monitor.alive, "dstate": monitor._dstate}
        violation = None
        if session.violation is not None:
            violation = {
                "index": session.violation.index,
                "event": tracefile.format_event(session.violation.event),
            }
        elif session.restored_violation is not None:
            violation = {
                "index": session.restored_violation[0],
                "event": session.restored_violation[1],
            }
        return {
            "key": session.key,
            "spec": session.compiled.name if session.compiled else None,
            "lsn": session.lsn,
            "received": session.received,
            "events": session.events,
            "skipped": session.skipped,
            "errors": session.errors,
            "violation": violation,
            "monitor": monitor_state,
        }

    async def _snapshot_session(self, session: _Session) -> None:
        """Checkpoint a durable session so recovery can skip log prefix.

        Order matters: flush the shard (the monitor must have applied
        everything the snapshot claims), fsync the log (a snapshot must
        never cover records that could still be lost), then write.
        """
        session.since_snapshot = 0
        await self.pool.flush(session.touched)
        self._store.sync()
        payload = self._snapshot_payload(session)
        if payload is not None:
            self._store.write_snapshot(payload)

    def _install_recovery(
        self, session: _Session, recovered: durability.RecoveredSession
    ) -> None:
        """Adopt a recovered session's counters, monitor and watermark."""
        session.received = recovered.received
        session.lsn = recovered.next_lsn
        session.since_snapshot = 0
        session.events = recovered.events
        session.skipped = recovered.skipped
        session.errors = recovered.errors
        session.compiled = recovered.compiled
        session.monitors = {}
        session.violation = None
        session.restored_violation = None
        if recovered.monitor is not None:
            shard = session.router.shard_of(_COUPLED_KEY)
            session.monitors[shard] = recovered.monitor
            session.touched.add(shard)
        if recovered.violation_index is not None:
            session.restored_violation = (
                recovered.violation_index,
                recovered.violation_line or "",
            )

    async def _bind_session(
        self, session: _Session, compiled: CompiledSpec
    ) -> int | None:
        """Bind (or durable re-attach) a spec; the ``applied=`` watermark.

        On a plain session SPEC means "fresh stream" and returns None.
        On a durable session re-binding the *already attached* spec it is
        an idempotent attach — the reconnecting client resumes the same
        logical stream, so nothing resets and no record is written; only
        a bind to a *different* spec starts over (logged as REC_BIND, the
        input watermark still monotonic).
        """
        await self.pool.flush(session.touched)
        durable = self._durable(session)
        if (
            durable
            and session.compiled is not None
            and session.compiled.name == compiled.name
        ):
            return session.received
        session.reset()
        session.compiled = compiled
        session.monitors = {}
        if durable:
            self._append_record(
                session,
                durability.REC_BIND,
                compiled.name.encode("utf-8"),
                0,
            )
            return session.received
        return None

    # -- Prometheus scrape endpoint ------------------------------------------

    async def _handle_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP scrape with the Prometheus text exposition.

        A deliberately minimal HTTP/1.0 responder — every path returns the
        full dump, the connection closes after one response — which is all
        a Prometheus scraper (or ``curl``) needs.
        """
        try:
            while True:  # drain the request head; body-less GETs only
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = get_registry().format_prometheus().encode("utf-8")
            head = (
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n".encode("ascii")
                + b"Connection: close\r\n\r\n"
            )
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_sync(
        self, session: _Session, command: Command, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle a reply-bearing verb; returns True when the session ends."""
        if command.verb == "HELLO":
            proto, key = parse_hello(command.arg)
            agreed = min(proto, self.max_proto)
            durable = ""
            if key is not None and self._store is not None:
                # Recover before the reply: ``durable=1`` promises the
                # log is attached, so the watermark must already be
                # loaded when the client's SPEC asks for ``applied=``.
                session.key = key
                self._install_recovery(
                    session,
                    durability.recover(self.data_dir, key, self.registry),
                )
                durable = " durable=1"
            names = ",".join(self.registry.names())
            await self._reply(
                writer,
                f"OK repro-service {agreed}{durable} specs={names}",
            )
            # The switch happens *after* this reply: negotiation is
            # always text, everything past it is framed when agreed >= 2.
            session.proto = agreed
            return False
        if command.verb == "SPEC":
            try:
                compiled = self.registry.get(command.arg)
            except ReproError as exc:
                await self._reply(writer, f"ERR {exc}")
                return False
            applied = await self._bind_session(session, compiled)
            suffix = "" if applied is None else f" applied={applied}"
            await self._reply(
                writer,
                f"OK spec {compiled.name} shards={self.pool.shards}{suffix}",
            )
            return False
        if command.verb == "STATUS":
            await self.pool.flush(session.touched)
            await self._reply(writer, format_status(session.status()))
            return False
        if command.verb == "METRICS":
            # Flush first so counters include every event already fed on
            # this session, then frame the multi-line Prometheus dump with
            # an up-front line count.
            await self.pool.flush(session.touched)
            text = get_registry().format_prometheus()
            lines = text.splitlines()
            await self._reply(writer, f"OK metrics lines={len(lines)}")
            for line in lines:
                await self._reply(writer, line)
            return False
        if command.verb == "RESET":
            await self.pool.flush(session.touched)
            if self._durable(session):
                self._append_record(session, durability.REC_RESET, b"", 0)
            session.reset()
            await self._reply(writer, "OK reset")
            return False
        if command.verb == "BYE":
            await self.pool.flush(session.touched)
            if self._durable(session):
                await self._snapshot_session(session)
            await self._reply(writer, f"OK bye events={session.events}")
            return True
        raise AssertionError(f"unhandled verb {command.verb}")  # pragma: no cover

    # -- hot updates ---------------------------------------------------------

    def _apply_update(
        self,
        *,
        scenario: str | None = None,
        text: str | None = None,
        force: bool = False,
    ) -> str:
        """Hot-swap the registry from a scenario or document; OK detail.

        Existing sessions keep draining on the ``CompiledSpec`` they
        bound (monitors are pinned — see :meth:`_handle_event`); new
        binds pick up the swapped machines, and the purge below makes a
        binary rebind sync the new letter table instead of a stale
        frame.  Raises :class:`ReproError` on unknown scenarios or
        documents that fail to parse/elaborate — the registry is left
        untouched in that case.
        """
        if scenario is not None:
            from repro.workload.scenarios import get_scenario

            specs = get_scenario(scenario).specifications()
            report = self.registry.update(specs, force=force)
        else:
            report = self.registry.update_from_text(text or "", force=force)
        touched = set(report.changed) | set(report.added)
        for key in [k for k in self._letters_frames if k[0] in touched]:
            del self._letters_frames[key]
        names = ",".join(sorted(touched)) or "-"
        return (
            f"update changed={len(report.changed)} "
            f"unchanged={len(report.unchanged)} added={len(report.added)} "
            f"specs={names}"
        )

    async def _handle_update_text(
        self,
        arg: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Handle a text ``UPDATE``; False when EOF truncated the body.

        ``UPDATE scenario=<name> [force=1]`` is self-contained;
        ``UPDATE lines=<n> [force=1]`` reads exactly n raw document
        lines (blank lines included — they are body, not commands)
        before replying, mirroring the ``METRICS`` reply framing.
        """
        scenario: str | None = None
        count: int | None = None
        force = False
        for token in arg.split():
            key, eq, value = token.partition("=")
            if key == "scenario" and eq:
                scenario = value
            elif key == "lines" and eq:
                try:
                    count = int(value)
                except ValueError:
                    await self._reply(writer, f"ERR malformed lines={value!r}")
                    return True
                if count < 0:
                    await self._reply(writer, f"ERR malformed lines={value!r}")
                    return True
            elif key == "force" and eq:
                force = value == "1"
            else:
                await self._reply(writer, f"ERR malformed UPDATE field {token!r}")
                return True
        if (scenario is None) == (count is None):
            await self._reply(
                writer, "ERR UPDATE needs exactly one of scenario=/lines="
            )
            return True
        text: str | None = None
        if count is not None:
            body: list[str] = []
            for _ in range(count):
                raw = await reader.readline()
                if not raw:
                    return False  # client vanished mid-body
                body.append(
                    raw.decode("utf-8", errors="replace").rstrip("\r\n")
                )
            text = "\n".join(body)
        try:
            detail = self._apply_update(
                scenario=scenario, text=text, force=force
            )
        except ReproError as exc:
            await self._reply(writer, f"ERR {exc}")
            return True
        await self._reply(writer, f"OK {detail}")
        return True

    # -- binary framing (proto >= 2) -----------------------------------------

    async def _send_frame(
        self, writer: asyncio.StreamWriter, opcode: int, payload: bytes = b""
    ) -> None:
        writer.write(wire.encode_frame(opcode, payload))
        await writer.drain()

    def _letters_frame(self, compiled: CompiledSpec) -> bytes:
        """The spec's pre-packed ``OP_LETTERS`` frame (cached per version).

        A compiled spec's table is immutable, so one encoding serves
        every session that binds it; the cache key carries the spec's
        hot-swap ``version`` because an update may change the interned
        alphabet, and a rebind after the swap must sync the new table,
        not a stale frame.
        """
        key = (compiled.name, compiled.version)
        frame = self._letters_frames.get(key)
        if frame is None:
            lines = self.registry.letter_lines(compiled.name)
            frame = wire.encode_frame(wire.OP_LETTERS, wire.pack_letters(lines))
            self._letters_frames[key] = frame
        return frame

    async def _binary_loop(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve framed requests until ``BYE``, EOF, or an unsyncable frame.

        Error handling mirrors the framing guarantees: a malformed
        *payload* of a well-framed message elicits an ``ERR`` frame and
        the session continues (the stream is still in sync), while a
        bogus *length field* cannot be skipped past, so the error is
        reported and the connection closed.
        """
        while True:
            try:
                opcode, payload = await wire.read_frame(reader)
            except asyncio.IncompleteReadError:
                return  # clean EOF between frames: client vanished
            except wire.FrameError as exc:
                await self._send_frame(writer, wire.OP_ERR, str(exc).encode())
                return
            try:
                done = await self._handle_frame(session, opcode, payload, writer)
            except wire.FrameError as exc:
                await self._send_frame(writer, wire.OP_ERR, str(exc).encode())
                continue
            if done:
                return

    async def _handle_frame(
        self,
        session: _Session,
        opcode: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Dispatch one request frame; returns True when the session ends."""
        if opcode == wire.OP_EVENTS:
            await self._handle_events(session, payload)
            return False
        if opcode == wire.OP_EVENT:
            await self._handle_event(
                session, payload.decode("utf-8", errors="replace")
            )
            return False
        if opcode == wire.OP_SPEC:
            name = payload.decode("utf-8", errors="replace").strip()
            try:
                compiled = self.registry.get(name)
            except ReproError as exc:
                await self._send_frame(writer, wire.OP_ERR, str(exc).encode())
                return False
            applied = await self._bind_session(session, compiled)
            # A durable re-attach keeps the recovered pinned build; sync
            # the letter table of *that* build, not a post-swap one.
            compiled = session.compiled
            suffix = "" if applied is None else f" applied={applied}"
            count = len(self.registry.letter_lines(compiled.name))
            detail = (
                f"spec {compiled.name} shards={self.pool.shards}"
                f"{suffix} letters={count}"
            )
            # The OK reply and the letter table travel back to back: the
            # client knows from ``letters=<k>`` (k > 0) that exactly one
            # OP_LETTERS frame follows before any other reply.
            writer.write(wire.encode_frame(wire.OP_OK, detail.encode()))
            if count:
                writer.write(self._letters_frame(compiled))
            await writer.drain()
            return False
        if opcode == wire.OP_UPDATE:
            # utf-8 payload: a header line then the optional body.
            # ``scenario=<name> [force=1]`` or ``doc [force=1]\n<text>``.
            text = payload.decode("utf-8", errors="replace")
            header, _, body = text.partition("\n")
            tokens = header.split()
            force = "force=1" in tokens[1:]
            detail = None
            try:
                if tokens and tokens[0].startswith("scenario="):
                    detail = self._apply_update(
                        scenario=tokens[0][len("scenario="):], force=force
                    )
                elif tokens and tokens[0] == "doc":
                    detail = self._apply_update(text=body, force=force)
            except ReproError as exc:
                await self._send_frame(writer, wire.OP_ERR, str(exc).encode())
                return False
            if detail is None:
                await self._send_frame(
                    writer, wire.OP_ERR, b"malformed UPDATE header"
                )
                return False
            await self._send_frame(writer, wire.OP_OK, detail.encode())
            return False
        if opcode == wire.OP_STATUS:
            await self.pool.flush(session.touched)
            await self._send_status_frame(writer, session)
            return False
        if opcode == wire.OP_METRICS:
            await self.pool.flush(session.touched)
            text = get_registry().format_prometheus()
            await self._send_frame(
                writer, wire.OP_OK, b"metrics\n" + text.encode("utf-8")
            )
            return False
        if opcode == wire.OP_RESET:
            await self.pool.flush(session.touched)
            if self._durable(session):
                self._append_record(session, durability.REC_RESET, b"", 0)
            session.reset()
            await self._send_frame(writer, wire.OP_OK, b"reset")
            return False
        if opcode == wire.OP_BYE:
            await self.pool.flush(session.touched)
            if self._durable(session):
                await self._snapshot_session(session)
            await self._send_frame(
                writer, wire.OP_OK, f"bye events={session.events}".encode()
            )
            return True
        # Unknown opcode: the frame boundary is intact, so report and
        # continue — the binary analogue of the text ``ERR`` for an
        # unknown verb.
        await self._send_frame(
            writer, wire.OP_ERR, f"unknown opcode 0x{opcode:02x}".encode()
        )
        return False

    async def _send_status_frame(
        self, writer: asyncio.StreamWriter, session: _Session
    ) -> None:
        """The status reply as a frame: text keyword → opcode, rest → payload."""
        reply = format_status(session.status())
        keyword, _, detail = reply.partition(" ")
        op = wire.OP_OK if keyword == "OK" else wire.OP_VIOLATION
        await self._send_frame(writer, op, detail.encode("utf-8"))

    async def _handle_events(self, session: _Session, payload: bytes) -> None:
        """Feed one ``EVENTS`` batch: silent on success, like text ``EVENT``.

        A structurally malformed payload raises
        :class:`~repro.service.wire.FrameError` (the loop answers with an
        ``ERR`` frame); ids outside the letter table are dropped and
        counted as errors per id, so valid events keep consecutive
        session-global indices exactly as if the bad ids had been
        malformed text lines.  The whole batch becomes *one* shard-queue
        unit and one monitor call — the amortisation the binary protocol
        exists for.
        """
        ids = wire.unpack_event_ids(payload)
        n = len(ids)
        if n == 0:
            return
        if self._durable(session):
            # Log the payload verbatim *before* validation: replay then
            # re-runs the identical validation, so dropped/invalid ids
            # are re-counted as errors exactly as they were live.
            if session.since_snapshot >= self.snapshot_every:
                await self._snapshot_session(session)
            self._append_record(session, durability.REC_IDS, payload, n)
        compiled = session.compiled
        if compiled is None or compiled.dense is None:
            # No spec bound, or a spec the registry could not tabulate —
            # either way no letter table was ever sent, so the ids cannot
            # mean anything.
            session.errors += n
            self.metrics.record_malformed(n)
            return
        k = compiled.dense.dfa.n_letters
        if min(ids) < 0 or max(ids) >= k:
            valid = array("i", (lid for lid in ids if 0 <= lid < k))
            bad = n - len(valid)
            session.errors += bad
            self.metrics.record_malformed(bad)
            ids = valid
            n = len(ids)
            if n == 0:
                return
        base = session.events
        session.events += n
        # EVENTS exists only on binary sessions, which are always pinned
        # (see _Session.shard_for) — route on the pinned key directly.
        shard = session.router.shard_of(_COUPLED_KEY)
        monitor = session.monitors.get(shard)
        if monitor is None:
            # Pin to the session's CompiledSpec, not a name lookup: a
            # concurrent hot swap must not mix machines mid-session.
            monitor = self.registry.new_monitor_for(compiled)
            session.monitors[shard] = monitor
        session.touched.add(shard)
        spec_name = compiled.name
        metrics = self.metrics

        def check() -> None:
            with span("service.batch", spec=spec_name, events=n):
                start = metrics.clock()
                was_ok = not monitor.violations
                monitor.observe_ids(ids, base_index=base)
                metrics.record_batch(spec_name, n, metrics.clock() - start)
                if was_ok and monitor.violations:
                    metrics.record_violation()
                    violation = monitor.violations[-1]
                    if (
                        session.violation is None
                        or violation.index < session.violation.index
                    ):
                        session.violation = violation

        await self.pool.submit_to(shard, BatchTask(check, n))

    async def _handle_event(self, session: _Session, arg: str) -> None:
        """Feed one event: silent on success, counted on failure.

        Problems never elicit a reply (events pipeline without per-event
        round-trips); they are surfaced by the next synchronising verb.
        """
        if self._durable(session):
            # Write-ahead: the raw line (malformed or not) is one input.
            # The snapshot check runs first so the checkpoint covers
            # exactly the records before this one, all already applied.
            if session.since_snapshot >= self.snapshot_every:
                await self._snapshot_session(session)
            self._append_record(
                session, durability.REC_LINE, arg.encode("utf-8"), 1
            )
        try:
            event = tracefile.parse_line(arg)
        except ReproError:
            session.errors += 1
            self.metrics.record_malformed()
            return
        if event is None:  # comment / blank payload
            return
        if session.compiled is None:
            session.errors += 1
            self.metrics.record_malformed()
            return
        index = session.events
        session.events += 1
        # The session router resolves (session, callee) → shard with the
        # key formatting and CRC paid once per distinct callee.  Coupled
        # specs constrain the order *across* callees, and binary sessions
        # interleave batches with fallback events, so both route on one
        # constant key instead of splitting per callee.
        shard = session.shard_for(event.callee.name)
        monitor = session.monitors.get(shard)
        if monitor is None:
            # Pinned like the batch path: sessions drain on the machine
            # they bound even while an UPDATE swaps the registry entry.
            monitor = self.registry.new_monitor_for(session.compiled)
            session.monitors[shard] = monitor
        session.touched.add(shard)
        spec_name = session.compiled.name
        metrics = self.metrics

        def check() -> None:
            start = metrics.clock()
            skipped = not monitor.spec.alphabet.contains(event)
            was_ok = not monitor.violations
            monitor.observe(event, index=index)
            metrics.record_event(spec_name, metrics.clock() - start, skipped=skipped)
            if skipped:
                session.skipped += 1
            if was_ok and monitor.violations:
                metrics.record_violation()
                violation = monitor.violations[-1]
                if session.violation is None or violation.index < session.violation.index:
                    session.violation = violation

        await self.pool.submit_to(shard, check)
