"""Asyncio TCP server: many concurrent monitoring sessions.

Each connection is one session — an event stream checked online against
one registered specification (the paper's soundness condition
``h/α(Γ) ∈ T(Γ)`` per connection).  Events of a single-callee spec are
routed to the shard pool by callee, so one session's independent objects
check in parallel while per-object order is preserved; a *coupled* spec
(alphabet addressing several callees — see
:func:`~repro.service.registry._coupled_callees`) pins each session to
one shard, preserving cross-callee order while different sessions still
spread over the pool.  The first violation (smallest session-global
index among the shard monitors) is what ``STATUS`` reports.

The server is single-loop: shard workers are tasks, not threads, so
monitor state and metrics need no locks.
"""

from __future__ import annotations

import asyncio

from repro.core.errors import ReproError
from repro.obs.metrics import ServiceMetrics, declare_cache_counters
from repro.obs.registry import get_registry
from repro.runtime import tracefile
from repro.runtime.monitor import SpecMonitor, Violation
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Command,
    ProtocolError,
    SessionStatus,
    format_status,
    parse_command,
)
from repro.service.registry import CompiledSpec, SpecRegistry
from repro.service.shards import DEFAULT_QUEUE_SIZE, ShardPool

__all__ = ["MonitorServer"]

#: Router key pinning a coupled spec's session to one shard.  The NUL
#: byte cannot occur in an object name parsed off the wire, so the key
#: never collides with a real callee.
_COUPLED_KEY = "\x00session"


class _Session:
    """Per-connection state: bound spec, per-shard monitors, counters."""

    __slots__ = (
        "seq",
        "router",
        "compiled",
        "monitors",
        "touched",
        "events",
        "skipped",
        "errors",
        "violation",
    )

    def __init__(self, seq: int, router) -> None:
        self.seq = seq
        self.router = router
        self.compiled: CompiledSpec | None = None
        self.monitors: dict[int, SpecMonitor] = {}
        self.touched: set[int] = set()
        self.events = 0
        self.skipped = 0
        self.errors = 0
        self.violation: Violation | None = None

    def reset(self) -> None:
        for monitor in self.monitors.values():
            monitor.reset()
        self.touched.clear()
        self.events = 0
        self.skipped = 0
        self.errors = 0
        self.violation = None

    def status(self) -> SessionStatus:
        violation = self.violation
        return SessionStatus(
            spec=self.compiled.name if self.compiled else None,
            events=self.events,
            skipped=self.skipped,
            errors=self.errors,
            violation_index=violation.index if violation else None,
            violation_event=(
                tracefile.format_event(violation.event) if violation else None
            ),
        )


class MonitorServer:
    """The monitoring service: registry + shard pool + metrics + TCP front."""

    def __init__(
        self,
        registry: SpecRegistry,
        *,
        shards: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: ServiceMetrics | None = None,
        metrics_interval: float | None = None,
        metrics_out=None,
        metrics_port: int | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
    ) -> None:
        self.registry = registry
        self.pool = ShardPool(shards, queue_size=queue_size)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.host = host
        self.port = port
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self._session_seq = 0
        self._dump_task: asyncio.Task | None = None
        self._metrics_interval = metrics_interval
        self._metrics_out = metrics_out
        self.metrics_port = metrics_port
        self._metrics_server: asyncio.AbstractServer | None = None
        # Pre-declare the engine's cache counter families so a scrape of a
        # fresh server exposes them at zero instead of omitting them.
        declare_cache_counters(get_registry())

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the shard workers.

        With ``port=0`` the OS picks an ephemeral port; :attr:`port` holds
        the actual one afterwards (tests and benchmarks rely on this).
        """
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_scrape, self.host, self.metrics_port
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        if self._metrics_interval:
            self._dump_task = asyncio.create_task(
                self.metrics.periodic_dump(self._metrics_interval, self._metrics_out)
            )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._dump_task is not None:
            self._dump_task.cancel()
            try:
                await self._dump_task
            except asyncio.CancelledError:
                pass
            self._dump_task = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.pool.stop()

    async def __aenter__(self) -> "MonitorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.session_opened()
        self._session_seq += 1
        # Sessions are independent trace universes, so only per-callee
        # order *within* a session must be preserved — the seq-number
        # prefix spreads sessions over the workers even when every
        # session's spec talks to the same objects.
        session = _Session(
            self._session_seq, self.pool.router(prefix=f"{self._session_seq}:")
        )
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    command = parse_command(line)
                except ProtocolError as exc:
                    await self._reply(writer, f"ERR {exc}")
                    continue
                if command.verb == "EVENT":
                    await self._handle_event(session, command.arg)
                    continue
                done = await self._handle_sync(session, command, writer)
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.metrics.session_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reply(self, writer: asyncio.StreamWriter, line: str) -> None:
        writer.write(line.encode("utf-8") + b"\n")
        await writer.drain()

    # -- Prometheus scrape endpoint ------------------------------------------

    async def _handle_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP scrape with the Prometheus text exposition.

        A deliberately minimal HTTP/1.0 responder — every path returns the
        full dump, the connection closes after one response — which is all
        a Prometheus scraper (or ``curl``) needs.
        """
        try:
            while True:  # drain the request head; body-less GETs only
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = get_registry().format_prometheus().encode("utf-8")
            head = (
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n".encode("ascii")
                + b"Connection: close\r\n\r\n"
            )
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_sync(
        self, session: _Session, command: Command, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle a reply-bearing verb; returns True when the session ends."""
        if command.verb == "HELLO":
            names = ",".join(self.registry.names())
            await self._reply(
                writer,
                f"OK repro-service {PROTOCOL_VERSION} specs={names}",
            )
            return False
        if command.verb == "SPEC":
            try:
                compiled = self.registry.get(command.arg)
            except ReproError as exc:
                await self._reply(writer, f"ERR {exc}")
                return False
            await self.pool.flush(session.touched)
            session.reset()
            session.compiled = compiled
            session.monitors = {}
            await self._reply(
                writer, f"OK spec {compiled.name} shards={self.pool.shards}"
            )
            return False
        if command.verb == "STATUS":
            await self.pool.flush(session.touched)
            await self._reply(writer, format_status(session.status()))
            return False
        if command.verb == "METRICS":
            # Flush first so counters include every event already fed on
            # this session, then frame the multi-line Prometheus dump with
            # an up-front line count.
            await self.pool.flush(session.touched)
            text = get_registry().format_prometheus()
            lines = text.splitlines()
            await self._reply(writer, f"OK metrics lines={len(lines)}")
            for line in lines:
                await self._reply(writer, line)
            return False
        if command.verb == "RESET":
            await self.pool.flush(session.touched)
            session.reset()
            await self._reply(writer, "OK reset")
            return False
        if command.verb == "BYE":
            await self.pool.flush(session.touched)
            await self._reply(writer, f"OK bye events={session.events}")
            return True
        raise AssertionError(f"unhandled verb {command.verb}")  # pragma: no cover

    async def _handle_event(self, session: _Session, arg: str) -> None:
        """Feed one event: silent on success, counted on failure.

        Problems never elicit a reply (events pipeline without per-event
        round-trips); they are surfaced by the next synchronising verb.
        """
        try:
            event = tracefile.parse_line(arg)
        except ReproError:
            session.errors += 1
            self.metrics.record_malformed()
            return
        if event is None:  # comment / blank payload
            return
        if session.compiled is None:
            session.errors += 1
            self.metrics.record_malformed()
            return
        index = session.events
        session.events += 1
        # The session router resolves (session, callee) → shard with the
        # key formatting and CRC paid once per distinct callee.  Coupled
        # specs constrain the order *across* callees, so their sessions
        # route on one constant key instead of splitting per callee.
        shard = session.router.shard_of(
            _COUPLED_KEY if session.compiled.coupled else event.callee.name
        )
        monitor = session.monitors.get(shard)
        if monitor is None:
            monitor = self.registry.new_monitor(session.compiled.name)
            session.monitors[shard] = monitor
        session.touched.add(shard)
        spec_name = session.compiled.name
        metrics = self.metrics

        def check() -> None:
            start = metrics.clock()
            skipped = not monitor.spec.alphabet.contains(event)
            was_ok = not monitor.violations
            monitor.observe(event, index=index)
            metrics.record_event(spec_name, metrics.clock() - start, skipped=skipped)
            if skipped:
                session.skipped += 1
            if was_ok and monitor.violations:
                metrics.record_violation()
                violation = monitor.violations[-1]
                if session.violation is None or violation.index < session.violation.index:
                    session.violation = violation

        await self.pool.submit_to(shard, check)
