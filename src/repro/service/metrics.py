"""Deprecated shim: service metrics moved to :mod:`repro.obs`.

.. deprecated:: 1.1
   Every class here now lives in the unified observability layer —
   :class:`~repro.obs.metrics.ServiceMetrics`,
   :class:`~repro.obs.metrics.CheckerMetrics` and
   :class:`~repro.obs.metrics.NormalizationMetrics` in
   ``repro.obs.metrics``; :class:`~repro.obs.registry.LatencyHistogram`
   (now also ``Histogram``) and the bucket presets in
   ``repro.obs.registry`` — and mirrors every increment into the
   process-wide :class:`~repro.obs.registry.MetricsRegistry`.  Import
   from ``repro.obs`` instead; this module will be removed one release
   after 1.1.  Each name warns with ``DeprecationWarning`` exactly once
   per process on first access.
"""

from __future__ import annotations

from repro.obs.compat import deprecated_module_attrs

__all__ = [
    "LatencyHistogram",
    "ServiceMetrics",
    "CheckerMetrics",
    "NormalizationMetrics",
    "DEFAULT_BUCKETS",
    "OBLIGATION_BUCKETS",
]

__getattr__ = deprecated_module_attrs(
    __name__,
    {
        "LatencyHistogram": "repro.obs.registry",
        "DEFAULT_BUCKETS": "repro.obs.registry",
        "OBLIGATION_BUCKETS": "repro.obs.registry",
        "ServiceMetrics": "repro.obs.metrics",
        "CheckerMetrics": "repro.obs.metrics",
        "NormalizationMetrics": "repro.obs.metrics",
    },
)
