"""Removed: service metrics live in :mod:`repro.obs`.

.. deprecated:: 1.1
   The per-name forwarding shim that lived here served its one release
   and was deleted; this stub warns once on import and raises a pointed
   ``AttributeError`` for every name lookup, and will itself be removed
   next release.  Import :class:`~repro.obs.metrics.ServiceMetrics`,
   :class:`~repro.obs.metrics.CheckerMetrics` and
   :class:`~repro.obs.metrics.NormalizationMetrics` from
   ``repro.obs.metrics``, and
   :class:`~repro.obs.registry.LatencyHistogram` (also ``Histogram``)
   plus the bucket presets from ``repro.obs.registry`` — all re-exported
   by ``repro.obs``.
"""

from __future__ import annotations

from repro.obs.compat import warn_deprecated_module

__all__: list[str] = []

warn_deprecated_module(__name__, "repro.obs")


def __getattr__(name: str):
    raise AttributeError(
        f"{__name__}.{name} no longer exists; the service metrics "
        f"classes moved to repro.obs (see repro.obs.metrics and "
        f"repro.obs.registry)"
    )
