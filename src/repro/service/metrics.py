"""Service metrics: monotonic counters and per-spec latency histograms.

All mutation happens on the server's single event loop (shard workers are
tasks, not threads), so plain integers are race-free; the point of this
module is a *stable snapshot shape* for tests, benchmarks, and the
optional periodic text dump — not a client library for some external
metrics system.
"""

from __future__ import annotations

import asyncio
import bisect
import time

__all__ = [
    "LatencyHistogram",
    "ServiceMetrics",
    "CheckerMetrics",
    "NormalizationMetrics",
    "DEFAULT_BUCKETS",
    "OBLIGATION_BUCKETS",
]

#: Upper bounds (seconds) of the latency buckets: 1µs … ~1s, log-spaced.
DEFAULT_BUCKETS = tuple(1e-6 * 4**i for i in range(11))

#: Buckets for whole proof obligations: 1ms … ~1000s, log-spaced.  One
#: obligation compiles DFAs and runs automaton products, so it lives three
#: orders of magnitude above a single online event check.
OBLIGATION_BUCKETS = tuple(1e-3 * 4**i for i in range(11))


class LatencyHistogram:
    """A fixed-bucket histogram of per-event check latencies (seconds)."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        # one overflow bucket past the last bound
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "buckets": {
                f"le_{bound:g}": n
                for bound, n in zip(self.bounds, self.counts)
            }
            | {"overflow": self.counts[-1]},
        }


class CheckerMetrics:
    """Counters and wall-time histogram for one obligation-engine run.

    Mirrors :class:`ServiceMetrics` in shape (monotonic counters + the
    shared :class:`LatencyHistogram` type + a stable ``snapshot()``) but
    measures the *offline* checker: whole proof obligations instead of
    single events, plus the machine cache's hit/miss/store/error and
    uncacheable counts.  Mutation happens either on one thread (inline
    runs) or by merging per-worker deltas on the parent (parallel runs),
    so plain integers are race-free here too.
    """

    def __init__(self) -> None:
        self.obligations_run = 0
        self.agreements = 0
        self.disagreements = 0
        self.errors = 0
        self.timeouts = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.cache_errors = 0
        self.cache_uncacheable = 0
        self.wall = LatencyHistogram(OBLIGATION_BUCKETS)

    # -- recording -----------------------------------------------------------

    def record_outcome(self, outcome) -> None:
        """One finished :class:`~repro.checker.obligations.ObligationOutcome`."""
        self.obligations_run += 1
        self.wall.observe(outcome.seconds)
        if outcome.error is not None:
            self.errors += 1
            if "timeout" in outcome.error.lower():
                self.timeouts += 1
        elif outcome.agrees:
            self.agreements += 1
        else:
            self.disagreements += 1

    def record_cache(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        stores: int = 0,
        errors: int = 0,
        uncacheable: int = 0,
    ) -> None:
        """Merge a cache-stats delta (one worker's, or a whole run's)."""
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_stores += stores
        self.cache_errors += errors
        self.cache_uncacheable += uncacheable

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses + self.cache_uncacheable

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; keys are stable for tests and dumps."""
        return {
            "obligations_run": self.obligations_run,
            "agreements": self.agreements,
            "disagreements": self.disagreements,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "cache_errors": self.cache_errors,
            "cache_uncacheable": self.cache_uncacheable,
            "wall": self.wall.snapshot(),
        }

    def format_text(self) -> str:
        """A compact human-readable dump (one counter per line)."""
        snap = self.snapshot()
        lines = [
            f"{key}={snap[key]}"
            for key in (
                "obligations_run",
                "agreements",
                "disagreements",
                "errors",
                "timeouts",
                "cache_hits",
                "cache_misses",
                "cache_stores",
                "cache_errors",
                "cache_uncacheable",
            )
        ]
        lines.append(
            f"wall: count={self.wall.count} mean={self.wall.mean:.3f}s "
            f"total={self.wall.total:.3f}s"
        )
        return "\n".join(lines)


class NormalizationMetrics:
    """Per-pass rewrite counts and wall time for a normalization pipeline.

    One instance lives on each :class:`~repro.passes.base.PassPipeline`
    (the process-wide default pipeline accumulates across every
    normalization the process runs).  Same conventions as the sibling
    classes: monotonic counters mutated from one thread, a stable
    ``snapshot()`` shape, a compact ``format_text()``.  Kept out of
    :meth:`ServiceMetrics.snapshot` so the service snapshot shape stays
    what existing tests and dashboards pin.
    """

    def __init__(self) -> None:
        self.normalizations = 0
        self.rewrites = 0
        self.pass_rewrites: dict[str, int] = {}
        self.pass_seconds: dict[str, float] = {}

    # -- recording -----------------------------------------------------------

    def record_pass(self, name: str, rewrites: int, seconds: float) -> None:
        """One application of one pass (possibly zero rewrites)."""
        self.pass_rewrites[name] = self.pass_rewrites.get(name, 0) + rewrites
        self.pass_seconds[name] = self.pass_seconds.get(name, 0.0) + seconds

    def record_run(self, rewrites: int) -> None:
        """One whole pipeline run over one trace set."""
        self.normalizations += 1
        self.rewrites += rewrites

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; keys are stable for tests and dumps."""
        return {
            "normalizations": self.normalizations,
            "rewrites": self.rewrites,
            "passes": {
                name: {
                    "rewrites": self.pass_rewrites.get(name, 0),
                    "seconds": self.pass_seconds.get(name, 0.0),
                }
                for name in sorted(
                    set(self.pass_rewrites) | set(self.pass_seconds)
                )
            },
        }

    def format_text(self) -> str:
        """A compact human-readable dump (one counter per line)."""
        snap = self.snapshot()
        lines = [
            f"normalizations={snap['normalizations']}",
            f"rewrites={snap['rewrites']}",
        ]
        for name, entry in snap["passes"].items():
            lines.append(
                f"pass[{name}]: rewrites={entry['rewrites']} "
                f"seconds={entry['seconds']:.4f}"
            )
        return "\n".join(lines)


class ServiceMetrics:
    """Counters and per-spec histograms for one server instance."""

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.events_observed = 0
        self.events_skipped = 0
        self.events_malformed = 0
        self.violations = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.latency: dict[str, LatencyHistogram] = {}

    # -- recording -----------------------------------------------------------

    def record_event(self, spec: str, seconds: float, *, skipped: bool) -> None:
        """One event checked (or projected away) for ``spec``."""
        self.events_observed += 1
        if skipped:
            self.events_skipped += 1
        hist = self.latency.get(spec)
        if hist is None:
            hist = self.latency[spec] = LatencyHistogram()
        hist.observe(seconds)

    def record_malformed(self) -> None:
        self.events_malformed += 1

    def record_violation(self) -> None:
        self.violations += 1

    def session_opened(self) -> None:
        self.sessions_opened += 1

    def session_closed(self) -> None:
        self.sessions_closed += 1

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; keys are stable for tests and dumps."""
        return {
            "events_observed": self.events_observed,
            "events_skipped": self.events_skipped,
            "events_malformed": self.events_malformed,
            "violations": self.violations,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "latency": {
                name: hist.snapshot() for name, hist in sorted(self.latency.items())
            },
        }

    def format_text(self) -> str:
        """A compact human-readable dump (one counter per line)."""
        snap = self.snapshot()
        lines = [
            f"{key}={snap[key]}"
            for key in (
                "events_observed",
                "events_skipped",
                "events_malformed",
                "violations",
                "sessions_opened",
                "sessions_closed",
            )
        ]
        for name, hist in snap["latency"].items():
            lines.append(
                f"latency[{name}]: count={hist['count']} "
                f"mean={hist['mean_seconds'] * 1e6:.1f}µs"
            )
        return "\n".join(lines)

    async def periodic_dump(self, interval: float, out=None) -> None:
        """Print :meth:`format_text` every ``interval`` seconds until cancelled."""
        import sys

        out = out if out is not None else sys.stderr
        try:
            while True:
                await asyncio.sleep(interval)
                print(f"-- metrics --\n{self.format_text()}", file=out, flush=True)
        except asyncio.CancelledError:
            pass
