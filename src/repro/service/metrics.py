"""Service metrics: monotonic counters and per-spec latency histograms.

All mutation happens on the server's single event loop (shard workers are
tasks, not threads), so plain integers are race-free; the point of this
module is a *stable snapshot shape* for tests, benchmarks, and the
optional periodic text dump — not a client library for some external
metrics system.
"""

from __future__ import annotations

import asyncio
import bisect
import time

__all__ = ["LatencyHistogram", "ServiceMetrics", "DEFAULT_BUCKETS"]

#: Upper bounds (seconds) of the latency buckets: 1µs … ~1s, log-spaced.
DEFAULT_BUCKETS = tuple(1e-6 * 4**i for i in range(11))


class LatencyHistogram:
    """A fixed-bucket histogram of per-event check latencies (seconds)."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        # one overflow bucket past the last bound
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "buckets": {
                f"le_{bound:g}": n
                for bound, n in zip(self.bounds, self.counts)
            }
            | {"overflow": self.counts[-1]},
        }


class ServiceMetrics:
    """Counters and per-spec histograms for one server instance."""

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.events_observed = 0
        self.events_skipped = 0
        self.events_malformed = 0
        self.violations = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.latency: dict[str, LatencyHistogram] = {}

    # -- recording -----------------------------------------------------------

    def record_event(self, spec: str, seconds: float, *, skipped: bool) -> None:
        """One event checked (or projected away) for ``spec``."""
        self.events_observed += 1
        if skipped:
            self.events_skipped += 1
        hist = self.latency.get(spec)
        if hist is None:
            hist = self.latency[spec] = LatencyHistogram()
        hist.observe(seconds)

    def record_malformed(self) -> None:
        self.events_malformed += 1

    def record_violation(self) -> None:
        self.violations += 1

    def session_opened(self) -> None:
        self.sessions_opened += 1

    def session_closed(self) -> None:
        self.sessions_closed += 1

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; keys are stable for tests and dumps."""
        return {
            "events_observed": self.events_observed,
            "events_skipped": self.events_skipped,
            "events_malformed": self.events_malformed,
            "violations": self.violations,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "latency": {
                name: hist.snapshot() for name, hist in sorted(self.latency.items())
            },
        }

    def format_text(self) -> str:
        """A compact human-readable dump (one counter per line)."""
        snap = self.snapshot()
        lines = [
            f"{key}={snap[key]}"
            for key in (
                "events_observed",
                "events_skipped",
                "events_malformed",
                "violations",
                "sessions_opened",
                "sessions_closed",
            )
        ]
        for name, hist in snap["latency"].items():
            lines.append(
                f"latency[{name}]: count={hist['count']} "
                f"mean={hist['mean_seconds'] * 1e6:.1f}µs"
            )
        return "\n".join(lines)

    async def periodic_dump(self, interval: float, out=None) -> None:
        """Print :meth:`format_text` every ``interval`` seconds until cancelled."""
        import sys

        out = out if out is not None else sys.stderr
        try:
            while True:
                await asyncio.sleep(interval)
                print(f"-- metrics --\n{self.format_text()}", file=out, flush=True)
        except asyncio.CancelledError:
            pass
