"""Spec registry: compile specifications once, share machines everywhere.

Trace machines are pure (``step`` never mutates — see
:mod:`repro.machines.base`), so one compiled machine can drive every
session monitor concurrently; only the per-monitor *state* is private.
The registry is the single place the service pays elaboration and
compilation cost: sessions then spawn monitors in O(1).

Specifications whose trace sets are not machine-defined (compositions
involve existential hiding) are recorded as *unmonitorable* with the
reason, so a session binding to one gets a precise error instead of a
missing name.

Machines are additionally *interned* process-wide by content fingerprint
(:mod:`repro.checker.fingerprint`): two registries — or two specs within
one registry — whose trace sets have identical definitional content
share one machine object, so repeated document loads (service restarts
mid-process, tests, the engine's workers) reuse prior builds.  Machines
hold closures and cannot live in the on-disk DFA cache; interning is the
in-process analogue keyed by the same fingerprints (DESIGN.md §8), and
it doubles as the **compile stage** of the incremental build graph
(:mod:`repro.pipeline`): when a registry is built from document text,
per-node memo hits are reported as ``repro_pipeline_stage_*{stage=
"compile"}``.

Interned entries are *refcounted* by the registries that pin them:
:meth:`SpecRegistry.update` releases a replaced spec's machine and
dense image, and the last release evicts the entry so hot-swapping a
spec under the same name cannot leak the old build.  (A registry that
is simply garbage-collected keeps its pins — eviction triggers on
re-registration, which is the only path that previously leaked without
bound; the ``repro_interned_*`` gauges always reflect live table
sizes.)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.automata.build import MachineImage, machine_to_dense
from repro.checker.fingerprint import fingerprint
from repro.core.errors import FingerprintError, ReproError, RuntimeModelError
from repro.core.sorts import Sort
from repro.core.specification import Specification
from repro.core.tracesets import FullTraceSet, MachineTraceSet
from repro.machines.base import TraceMachine
from repro.obs.registry import get_registry
from repro.runtime.monitor import DEFAULT_HISTORY_LIMIT, SpecMonitor

__all__ = [
    "CompiledSpec",
    "SpecRegistry",
    "UpdateReport",
    "shared_machine_count",
    "shared_image_count",
    "DEFAULT_DENSE_STATE_LIMIT",
]

#: State budget for the registry's dense pre-compilation.  Deliberately
#: far below the checker's default: a spec whose reachable space is this
#: large is cheaper to monitor by machine stepping than to tabulate.
DEFAULT_DENSE_STATE_LIMIT = 20_000

#: Process-wide machine interning table: trace-set fingerprint → machine.
_SHARED_MACHINES: dict[str, TraceMachine] = {}

#: Process-wide dense-image interning table, keyed by the fingerprint of
#: (normalized trace set, universe, state limit) — the full input of
#: :func:`~repro.automata.build.machine_to_dense`.
_SHARED_IMAGES: dict[str, MachineImage] = {}

#: Pin counts per interned key: how many registry entries currently
#: reference the machine/image.  An entry whose count reaches zero on
#: release is evicted from the table above.
_MACHINE_REFS: dict[str, int] = {}
_IMAGE_REFS: dict[str, int] = {}

#: Compile-stage memo of the incremental build graph: node key (from
#: :mod:`repro.oun.identity`) + build options → the compiled parts.
#: Lets a document reload skip fingerprinting entirely for unchanged
#: specs; entries are purged when their machine/image is evicted.
_COMPILED_BY_NODE: dict[tuple, "_CompiledParts"] = {}


def _sync_intern_gauges() -> None:
    """Mirror the intern-table sizes into the unified metrics registry."""
    registry = get_registry()
    registry.gauge(
        "repro_interned_machines",
        help="Distinct machines in the process-wide intern table.",
    ).set(len(_SHARED_MACHINES))
    registry.gauge(
        "repro_interned_images",
        help="Distinct dense images in the process-wide intern table.",
    ).set(len(_SHARED_IMAGES))


def _normalized(traces):
    """The trace set in canonical (spec-scope) normalized form.

    Interning after normalization means syntactic variants of one spec
    — an unfused rename, a redundant ``True`` conjunct — land on one
    fingerprint and share one machine.  Spec-scope passes are monitor-safe:
    monitors project events to the specification alphabet before stepping.
    Respects the ambient :func:`~repro.passes.use_normalization` toggle.
    """
    from repro.passes import SPEC_SCOPE, normalize_traceset

    return normalize_traceset(traces, SPEC_SCOPE)


def shared_machine_count() -> int:
    """How many distinct machines the process-wide intern table holds."""
    return len(_SHARED_MACHINES)


def shared_image_count() -> int:
    """How many distinct dense images the process-wide table holds."""
    return len(_SHARED_IMAGES)


def _acquire(machine_key: str | None, image_key: str | None) -> None:
    """Pin interned entries for one registry slot."""
    if machine_key is not None:
        _MACHINE_REFS[machine_key] = _MACHINE_REFS.get(machine_key, 0) + 1
    if image_key is not None:
        _IMAGE_REFS[image_key] = _IMAGE_REFS.get(image_key, 0) + 1


def _release(machine_key: str | None, image_key: str | None) -> None:
    """Unpin interned entries; the last pin out evicts them.

    Draining sessions keep the evicted objects alive through their own
    references — eviction only forgets the *table* entry, so a future
    build of identical content compiles afresh instead of resurrecting
    a retired machine.
    """
    evicted = False
    for key, refs, table in (
        (machine_key, _MACHINE_REFS, _SHARED_MACHINES),
        (image_key, _IMAGE_REFS, _SHARED_IMAGES),
    ):
        if key is None or key not in refs:
            continue
        refs[key] -= 1
        if refs[key] <= 0:
            del refs[key]
            table.pop(key, None)
            evicted = True
    if evicted:
        stale = [
            node_key
            for node_key, parts in _COMPILED_BY_NODE.items()
            if parts.machine_key == machine_key
            or (image_key is not None and parts.image_key == image_key)
        ]
        for node_key in stale:
            del _COMPILED_BY_NODE[node_key]
        _sync_intern_gauges()


def _reset_shared_state() -> None:
    """Forget every process-wide table (bench/test isolation only)."""
    _SHARED_MACHINES.clear()
    _SHARED_IMAGES.clear()
    _MACHINE_REFS.clear()
    _IMAGE_REFS.clear()
    _COMPILED_BY_NODE.clear()
    _sync_intern_gauges()


@dataclass(frozen=True, slots=True)
class _CompiledParts:
    """The shareable output of one compile: machine + optional image."""

    machine: TraceMachine
    image: MachineImage | None
    machine_key: str | None
    image_key: str | None


def _build_machine_part(
    traces, *, share: bool
) -> tuple[TraceMachine, str | None]:
    """The (possibly shared) machine for a trace set, plus its pin key."""
    traces = _normalized(traces)
    key = None
    if share:
        try:
            key = fingerprint(traces)
        except FingerprintError:
            key = None  # no stable identity: private machine
    if key is not None:
        machine = _SHARED_MACHINES.get(key)
        if machine is None:
            machine = _SHARED_MACHINES[key] = traces.machine()
            _sync_intern_gauges()
        return machine, key
    return traces.machine(), None


def _build_image_part(
    spec: Specification,
    machine: TraceMachine,
    state_limit: int,
    *,
    share: bool,
) -> tuple[MachineImage | None, str | None]:
    """Pre-compile a spec's machine to a dense image, or ``None``.

    ``None`` means "monitor by machine stepping": the spec's universe
    cannot be derived, the reachable space exceeds ``state_limit``, or the
    compilation fails for any model-level reason.  Dense monitoring is an
    optimisation, never a requirement.
    """
    # Lazy imports: the checker layer reaches back into passes/service
    # metrics, so module-level imports would cycle.
    from repro.checker.compile import instantiated_letters
    from repro.checker.universe import FiniteUniverse

    try:
        universe = FiniteUniverse.for_specs(spec)
        table = instantiated_letters(universe, spec.alphabet)
    except ReproError:
        return None, None
    key = None
    if share:
        try:
            key = fingerprint((_normalized(spec.traces), universe, state_limit))
        except FingerprintError:
            key = None
        if key is not None:
            cached = _SHARED_IMAGES.get(key)
            if cached is not None:
                return cached, key
    try:
        image = machine_to_dense(
            machine, table.letters, state_limit=state_limit, table=table
        )
    except ReproError:
        return None, None
    if key is not None:
        _SHARED_IMAGES[key] = image
        _sync_intern_gauges()
    return image, key


def _coupled_callees(spec: Specification) -> bool:
    """Whether the spec constrains the *order across* distinct callees.

    The server shards a session's events by callee, which is sound only
    when the spec's alphabet addresses a single callee (every event then
    lands on one monitor that sees the whole projected stream).  A spec
    whose patterns range over several callees — a coordinator driving
    participants, a broker fanning out to subscribers — couples their
    relative order, so its sessions must be routed as a unit.  This is a
    conservative syntactic test: a multi-callee spec that happened to be
    order-insensitive would merely lose parallelism, never soundness.
    """
    callees = Sort.empty()
    for p in spec.alphabet.patterns:
        callees = callees.union(p.callee)
    return not callees.is_singleton()


@dataclass(frozen=True, slots=True)
class CompiledSpec:
    """One monitorable specification with its shared compiled machine.

    ``dense`` is the machine's pre-compiled
    :class:`~repro.automata.build.MachineImage` when the registry could
    tabulate it within its state budget (``None`` otherwise); monitors
    step through it by letter id and fall back to ``machine`` for events
    outside the instantiated universe.  ``coupled`` records whether the
    spec's alphabet addresses more than one callee, in which case the
    server routes each session's whole stream to one shard (cross-callee
    order matters) instead of spreading it per callee.  ``version``
    counts hot swaps of the name: a live update that actually changes
    the compiled machine installs a new ``CompiledSpec`` with the next
    version, while sessions bound to the old one keep draining on it.
    """

    name: str
    spec: Specification
    machine: TraceMachine
    dense: MachineImage | None = None
    coupled: bool = False
    version: int = 0


@dataclass(frozen=True, slots=True)
class UpdateReport:
    """What a live registry update actually did, by spec name."""

    changed: tuple[str, ...]
    unchanged: tuple[str, ...]
    added: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"changed={len(self.changed)} unchanged={len(self.unchanged)} "
            f"added={len(self.added)}"
        )


class SpecRegistry:
    """Registry of monitorable specifications.

    Construction compiles every spec; afterwards the only mutation path
    is :meth:`update` (the service's hot-swap), which atomically
    replaces whole :class:`CompiledSpec` entries — readers holding a
    ``CompiledSpec`` never observe a half-updated spec.
    """

    def __init__(
        self,
        specs: Iterable[Specification],
        *,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
        share_machines: bool = True,
        dense: bool = True,
        dense_state_limit: int = DEFAULT_DENSE_STATE_LIMIT,
        keys: Mapping[str, str] | None = None,
    ) -> None:
        self.history_limit = history_limit
        self._share = share_machines
        self._dense = dense
        self._dense_state_limit = dense_state_limit
        self._compiled: dict[str, CompiledSpec] = {}
        self._unmonitorable: dict[str, str] = {}
        self._letter_lines: dict[str, tuple[str, ...]] = {}
        #: name → interned keys currently pinned by that name's entry.
        self._pins: dict[str, tuple[str | None, str | None]] = {}
        self.update(specs, keys=keys)
        # Refresh even when everything hit the intern tables: a scrape
        # after a registry build should always see current table sizes.
        _sync_intern_gauges()

    @classmethod
    def from_text(cls, text: str, **kwargs) -> "SpecRegistry":
        """Build a registry from OUN document text.

        Loads through the shared incremental pipeline
        (:func:`repro.pipeline.shared_pipeline`) and passes the node
        keys down so the compile stage is memoized per document node.
        """
        from repro.pipeline import shared_pipeline

        build = shared_pipeline().load(text)
        return cls(
            build.specifications().values(), keys=build.keys(), **kwargs
        )

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "SpecRegistry":
        """Build a registry from an OUN document file."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        return cls.from_text(text, **kwargs)

    # -- compile stage ---------------------------------------------------

    def _compile_parts(
        self, spec: Specification, node_key: str | None, force: bool
    ) -> _CompiledParts:
        """Compile one spec's machine/image, through the node memo.

        The memo is only consulted for shared, node-keyed builds (i.e.
        document loads); those record ``stage="compile"`` hit/miss in
        the pipeline counter family.  ``force=True`` bypasses both the
        memo and the intern tables, producing fresh private objects —
        the hot-reload path uses it to swap in a rebuilt machine even
        when the document text is unchanged.
        """
        from repro.passes import normalization_enabled
        from repro.pipeline import record_stage

        memo_key = None
        if node_key is not None and self._share and not force:
            memo_key = (
                node_key,
                normalization_enabled(),
                self._dense,
                self._dense_state_limit,
            )
            parts = _COMPILED_BY_NODE.get(memo_key)
            if parts is not None:
                record_stage("compile", hit=True)
                return parts
        share = self._share and not force
        machine, machine_key = _build_machine_part(spec.traces, share=share)
        image, image_key = (
            _build_image_part(
                spec, machine, self._dense_state_limit, share=share
            )
            if self._dense
            else (None, None)
        )
        parts = _CompiledParts(machine, image, machine_key, image_key)
        if node_key is not None:
            record_stage("compile", hit=False)
        if memo_key is not None:
            _COMPILED_BY_NODE[memo_key] = parts
        return parts

    def update(
        self,
        specs: Iterable[Specification],
        *,
        keys: Mapping[str, str] | None = None,
        force: bool = False,
    ) -> UpdateReport:
        """Register or hot-swap specs; report what actually changed.

        A spec is *unchanged* when compilation lands on the very same
        machine and dense image objects (interning guarantees this for
        definitionally identical content) — its existing entry, version,
        and letter table stay untouched, so bound sessions see nothing.
        A *changed* spec atomically gets a new :class:`CompiledSpec`
        with a bumped ``version``; the replaced entry's interned pins
        are released (evicting them when this was the last pin) and its
        cached letter lines dropped.  Sessions already bound to the old
        ``CompiledSpec`` drain on it undisturbed.
        """
        keys = keys or {}
        changed: list[str] = []
        unchanged: list[str] = []
        added: list[str] = []
        for spec in specs:
            name = spec.name
            old = self._compiled.get(name)
            if not isinstance(spec.traces, (MachineTraceSet, FullTraceSet)):
                self._unmonitorable[name] = (
                    "composed trace sets involve existential hiding and are "
                    "checked offline, not monitored online"
                )
                if old is not None:
                    # the name stopped being monitorable: retire it
                    del self._compiled[name]
                    self._letter_lines.pop(name, None)
                    pins = self._pins.pop(name, None)
                    if pins is not None:
                        _release(*pins)
                    changed.append(name)
                continue
            parts = self._compile_parts(spec, keys.get(name), force)
            if (
                old is not None
                and old.machine is parts.machine
                and old.dense is parts.image
            ):
                unchanged.append(name)
                continue
            version = 0 if old is None else old.version + 1
            self._compiled[name] = CompiledSpec(
                name,
                spec,
                parts.machine,
                parts.image,
                _coupled_callees(spec),
                version,
            )
            self._unmonitorable.pop(name, None)
            self._letter_lines.pop(name, None)
            old_pins = self._pins.get(name)
            self._pins[name] = (parts.machine_key, parts.image_key)
            _acquire(parts.machine_key, parts.image_key)
            if old_pins is not None:
                _release(*old_pins)
            (added if old is None else changed).append(name)
        return UpdateReport(tuple(changed), tuple(unchanged), tuple(added))

    def update_from_text(
        self, text: str, *, force: bool = False
    ) -> UpdateReport:
        """Hot-swap from OUN document text via the incremental pipeline."""
        from repro.pipeline import shared_pipeline

        build = shared_pipeline().load(text)
        return self.update(
            build.specifications().values(), keys=build.keys(), force=force
        )

    # -- lookups ---------------------------------------------------------

    def names(self) -> list[str]:
        """Monitorable specification names, sorted."""
        return sorted(self._compiled)

    def __contains__(self, name: str) -> bool:
        return name in self._compiled

    def __len__(self) -> int:
        return len(self._compiled)

    def get(self, name: str) -> CompiledSpec:
        """Look up a compiled spec; raise a precise error if absent."""
        compiled = self._compiled.get(name)
        if compiled is not None:
            return compiled
        if name in self._unmonitorable:
            raise RuntimeModelError(
                f"specification {name!r} is not monitorable: "
                f"{self._unmonitorable[name]}"
            )
        known = ", ".join(self.names()) or "none"
        raise ReproError(f"no specification named {name!r} (have: {known})")

    def letter_lines(self, name: str) -> tuple[str, ...]:
        """The spec's interned alphabet as wire lines, indexed by letter id.

        This is the per-connection letter table the binary protocol syncs
        after ``SPEC``: entry ``i`` is the canonical trace-file line of
        the dense image's letter ``i``, so a client can encode events to
        ``array('i')`` ids and the server can step them without any text
        parsing.  Empty when the spec has no dense image (state space
        above the registry budget) — such sessions fall back to per-event
        text frames.  Cached per spec and invalidated by :meth:`update`
        when a swap changes the compiled machine, so a rebind after a
        hot reload always syncs the *current* table.
        """
        lines = self._letter_lines.get(name)
        if lines is None:
            from repro.runtime.tracefile import format_event

            compiled = self.get(name)
            if compiled.dense is None:
                lines = ()
            else:
                lines = tuple(
                    format_event(letter)
                    for letter in compiled.dense.dfa.table.letters
                )
            self._letter_lines[name] = lines
        return lines

    def new_monitor_for(self, compiled: CompiledSpec) -> SpecMonitor:
        """A fresh monitor pinned to one *specific* compiled spec.

        Sessions use this rather than :meth:`new_monitor` so a hot swap
        cannot mix machines mid-session: the session holds its
        ``CompiledSpec`` and every monitor it spawns steps that exact
        machine/image pair until the session rebinds.
        """
        return SpecMonitor(
            compiled.spec,
            machine=compiled.machine,
            dense=compiled.dense,
            history_limit=self.history_limit,
        )

    def new_monitor(self, name: str) -> SpecMonitor:
        """A fresh monitor over the *current* compiled machine and image."""
        return self.new_monitor_for(self.get(name))
