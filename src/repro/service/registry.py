"""Spec registry: compile specifications once, share machines everywhere.

Trace machines are pure (``step`` never mutates — see
:mod:`repro.machines.base`), so one compiled machine can drive every
session monitor concurrently; only the per-monitor *state* is private.
The registry is the single place the service pays elaboration and
compilation cost: sessions then spawn monitors in O(1).

Specifications whose trace sets are not machine-defined (compositions
involve existential hiding) are recorded as *unmonitorable* with the
reason, so a session binding to one gets a precise error instead of a
missing name.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.errors import ReproError, RuntimeModelError
from repro.core.specification import Specification
from repro.core.tracesets import FullTraceSet, MachineTraceSet
from repro.machines.base import TraceMachine
from repro.runtime.monitor import DEFAULT_HISTORY_LIMIT, SpecMonitor

__all__ = ["CompiledSpec", "SpecRegistry"]


@dataclass(frozen=True, slots=True)
class CompiledSpec:
    """One monitorable specification with its shared compiled machine."""

    name: str
    spec: Specification
    machine: TraceMachine


class SpecRegistry:
    """Immutable-after-construction registry of monitorable specifications."""

    def __init__(
        self,
        specs: Iterable[Specification],
        *,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self.history_limit = history_limit
        self._compiled: dict[str, CompiledSpec] = {}
        self._unmonitorable: dict[str, str] = {}
        for spec in specs:
            if isinstance(spec.traces, (MachineTraceSet, FullTraceSet)):
                self._compiled[spec.name] = CompiledSpec(
                    spec.name, spec, spec.traces.machine()
                )
            else:
                self._unmonitorable[spec.name] = (
                    "composed trace sets involve existential hiding and are "
                    "checked offline, not monitored online"
                )

    @classmethod
    def from_text(cls, text: str, **kwargs) -> "SpecRegistry":
        """Build a registry from OUN document text."""
        from repro.oun import load_specifications

        return cls(load_specifications(text).values(), **kwargs)

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "SpecRegistry":
        """Build a registry from an OUN document file."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        return cls.from_text(text, **kwargs)

    def names(self) -> list[str]:
        """Monitorable specification names, sorted."""
        return sorted(self._compiled)

    def __contains__(self, name: str) -> bool:
        return name in self._compiled

    def __len__(self) -> int:
        return len(self._compiled)

    def get(self, name: str) -> CompiledSpec:
        """Look up a compiled spec; raise a precise error if absent."""
        compiled = self._compiled.get(name)
        if compiled is not None:
            return compiled
        if name in self._unmonitorable:
            raise RuntimeModelError(
                f"specification {name!r} is not monitorable: "
                f"{self._unmonitorable[name]}"
            )
        known = ", ".join(self.names()) or "none"
        raise ReproError(f"no specification named {name!r} (have: {known})")

    def new_monitor(self, name: str) -> SpecMonitor:
        """A fresh monitor over the shared compiled machine."""
        compiled = self.get(name)
        return SpecMonitor(
            compiled.spec,
            machine=compiled.machine,
            history_limit=self.history_limit,
        )
