"""Spec registry: compile specifications once, share machines everywhere.

Trace machines are pure (``step`` never mutates — see
:mod:`repro.machines.base`), so one compiled machine can drive every
session monitor concurrently; only the per-monitor *state* is private.
The registry is the single place the service pays elaboration and
compilation cost: sessions then spawn monitors in O(1).

Specifications whose trace sets are not machine-defined (compositions
involve existential hiding) are recorded as *unmonitorable* with the
reason, so a session binding to one gets a precise error instead of a
missing name.

Machines are additionally *interned* process-wide by content fingerprint
(:mod:`repro.checker.fingerprint`): two registries — or two specs within
one registry — whose trace sets have identical definitional content
share one machine object, so repeated document loads (service restarts
mid-process, tests, the engine's workers) reuse prior builds.  Machines
hold closures and cannot live in the on-disk DFA cache; interning is the
in-process analogue keyed by the same fingerprints (DESIGN.md §8).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.automata.build import MachineImage, machine_to_dense
from repro.checker.fingerprint import fingerprint
from repro.core.errors import FingerprintError, ReproError, RuntimeModelError
from repro.core.sorts import Sort
from repro.core.specification import Specification
from repro.core.tracesets import FullTraceSet, MachineTraceSet
from repro.machines.base import TraceMachine
from repro.obs.registry import get_registry
from repro.runtime.monitor import DEFAULT_HISTORY_LIMIT, SpecMonitor

__all__ = [
    "CompiledSpec",
    "SpecRegistry",
    "shared_machine_count",
    "shared_image_count",
    "DEFAULT_DENSE_STATE_LIMIT",
]

#: State budget for the registry's dense pre-compilation.  Deliberately
#: far below the checker's default: a spec whose reachable space is this
#: large is cheaper to monitor by machine stepping than to tabulate.
DEFAULT_DENSE_STATE_LIMIT = 20_000

#: Process-wide machine interning table: trace-set fingerprint → machine.
_SHARED_MACHINES: dict[str, TraceMachine] = {}

#: Process-wide dense-image interning table, keyed by the fingerprint of
#: (normalized trace set, universe, state limit) — the full input of
#: :func:`~repro.automata.build.machine_to_dense`.
_SHARED_IMAGES: dict[str, MachineImage] = {}


def _sync_intern_gauges() -> None:
    """Mirror the intern-table sizes into the unified metrics registry."""
    registry = get_registry()
    registry.gauge(
        "repro_interned_machines",
        help="Distinct machines in the process-wide intern table.",
    ).set(len(_SHARED_MACHINES))
    registry.gauge(
        "repro_interned_images",
        help="Distinct dense images in the process-wide intern table.",
    ).set(len(_SHARED_IMAGES))


def _normalized(traces):
    """The trace set in canonical (spec-scope) normalized form.

    Interning after normalization means syntactic variants of one spec
    — an unfused rename, a redundant ``True`` conjunct — land on one
    fingerprint and share one machine.  Spec-scope passes are monitor-safe:
    monitors project events to the specification alphabet before stepping.
    Respects the ambient :func:`~repro.passes.use_normalization` toggle.
    """
    from repro.passes import SPEC_SCOPE, normalize_traceset

    return normalize_traceset(traces, SPEC_SCOPE)


def _intern_machine(traces) -> TraceMachine:
    """The shared machine for a trace set, building it on first sight."""
    traces = _normalized(traces)
    try:
        key = fingerprint(traces)
    except FingerprintError:
        return traces.machine()  # no stable identity: private machine
    machine = _SHARED_MACHINES.get(key)
    if machine is None:
        machine = _SHARED_MACHINES[key] = traces.machine()
        _sync_intern_gauges()
    return machine


def shared_machine_count() -> int:
    """How many distinct machines the process-wide intern table holds."""
    return len(_SHARED_MACHINES)


def shared_image_count() -> int:
    """How many distinct dense images the process-wide table holds."""
    return len(_SHARED_IMAGES)


def _dense_image(
    spec: Specification,
    machine: TraceMachine,
    state_limit: int,
    share: bool,
) -> MachineImage | None:
    """Pre-compile a spec's machine to a dense image, or ``None``.

    ``None`` means "monitor by machine stepping": the spec's universe
    cannot be derived, the reachable space exceeds ``state_limit``, or the
    compilation fails for any model-level reason.  Dense monitoring is an
    optimisation, never a requirement.
    """
    # Lazy imports: the checker layer reaches back into passes/service
    # metrics, so module-level imports would cycle.
    from repro.checker.compile import instantiated_letters
    from repro.checker.universe import FiniteUniverse

    try:
        universe = FiniteUniverse.for_specs(spec)
        table = instantiated_letters(universe, spec.alphabet)
    except ReproError:
        return None
    key = None
    if share:
        try:
            key = fingerprint((_normalized(spec.traces), universe, state_limit))
        except FingerprintError:
            key = None
        if key is not None:
            cached = _SHARED_IMAGES.get(key)
            if cached is not None:
                return cached
    try:
        image = machine_to_dense(
            machine, table.letters, state_limit=state_limit, table=table
        )
    except ReproError:
        return None
    if key is not None:
        _SHARED_IMAGES[key] = image
        _sync_intern_gauges()
    return image


def _coupled_callees(spec: Specification) -> bool:
    """Whether the spec constrains the *order across* distinct callees.

    The server shards a session's events by callee, which is sound only
    when the spec's alphabet addresses a single callee (every event then
    lands on one monitor that sees the whole projected stream).  A spec
    whose patterns range over several callees — a coordinator driving
    participants, a broker fanning out to subscribers — couples their
    relative order, so its sessions must be routed as a unit.  This is a
    conservative syntactic test: a multi-callee spec that happened to be
    order-insensitive would merely lose parallelism, never soundness.
    """
    callees = Sort.empty()
    for p in spec.alphabet.patterns:
        callees = callees.union(p.callee)
    return not callees.is_singleton()


@dataclass(frozen=True, slots=True)
class CompiledSpec:
    """One monitorable specification with its shared compiled machine.

    ``dense`` is the machine's pre-compiled
    :class:`~repro.automata.build.MachineImage` when the registry could
    tabulate it within its state budget (``None`` otherwise); monitors
    step through it by letter id and fall back to ``machine`` for events
    outside the instantiated universe.  ``coupled`` records whether the
    spec's alphabet addresses more than one callee, in which case the
    server routes each session's whole stream to one shard (cross-callee
    order matters) instead of spreading it per callee.
    """

    name: str
    spec: Specification
    machine: TraceMachine
    dense: MachineImage | None = None
    coupled: bool = False


class SpecRegistry:
    """Immutable-after-construction registry of monitorable specifications."""

    def __init__(
        self,
        specs: Iterable[Specification],
        *,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
        share_machines: bool = True,
        dense: bool = True,
        dense_state_limit: int = DEFAULT_DENSE_STATE_LIMIT,
    ) -> None:
        self.history_limit = history_limit
        self._compiled: dict[str, CompiledSpec] = {}
        self._unmonitorable: dict[str, str] = {}
        self._letter_lines: dict[str, tuple[str, ...]] = {}
        build = _intern_machine if share_machines else (
            lambda traces: _normalized(traces).machine()
        )
        for spec in specs:
            if isinstance(spec.traces, (MachineTraceSet, FullTraceSet)):
                machine = build(spec.traces)
                image = (
                    _dense_image(spec, machine, dense_state_limit, share_machines)
                    if dense
                    else None
                )
                self._compiled[spec.name] = CompiledSpec(
                    spec.name, spec, machine, image, _coupled_callees(spec)
                )
            else:
                self._unmonitorable[spec.name] = (
                    "composed trace sets involve existential hiding and are "
                    "checked offline, not monitored online"
                )
        # Refresh even when everything hit the intern tables: a scrape
        # after a registry build should always see current table sizes.
        _sync_intern_gauges()

    @classmethod
    def from_text(cls, text: str, **kwargs) -> "SpecRegistry":
        """Build a registry from OUN document text."""
        from repro.oun import load_specifications

        return cls(load_specifications(text).values(), **kwargs)

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "SpecRegistry":
        """Build a registry from an OUN document file."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        return cls.from_text(text, **kwargs)

    def names(self) -> list[str]:
        """Monitorable specification names, sorted."""
        return sorted(self._compiled)

    def __contains__(self, name: str) -> bool:
        return name in self._compiled

    def __len__(self) -> int:
        return len(self._compiled)

    def get(self, name: str) -> CompiledSpec:
        """Look up a compiled spec; raise a precise error if absent."""
        compiled = self._compiled.get(name)
        if compiled is not None:
            return compiled
        if name in self._unmonitorable:
            raise RuntimeModelError(
                f"specification {name!r} is not monitorable: "
                f"{self._unmonitorable[name]}"
            )
        known = ", ".join(self.names()) or "none"
        raise ReproError(f"no specification named {name!r} (have: {known})")

    def letter_lines(self, name: str) -> tuple[str, ...]:
        """The spec's interned alphabet as wire lines, indexed by letter id.

        This is the per-connection letter table the binary protocol syncs
        after ``SPEC``: entry ``i`` is the canonical trace-file line of
        the dense image's letter ``i``, so a client can encode events to
        ``array('i')`` ids and the server can step them without any text
        parsing.  Empty when the spec has no dense image (state space
        above the registry budget) — such sessions fall back to per-event
        text frames.  Computed once per spec and cached: the table is as
        immutable as the interned :class:`~repro.automata.letters.LetterTable`
        behind it.
        """
        lines = self._letter_lines.get(name)
        if lines is None:
            from repro.runtime.tracefile import format_event

            compiled = self.get(name)
            if compiled.dense is None:
                lines = ()
            else:
                lines = tuple(
                    format_event(letter)
                    for letter in compiled.dense.dfa.table.letters
                )
            self._letter_lines[name] = lines
        return lines

    def new_monitor(self, name: str) -> SpecMonitor:
        """A fresh monitor over the shared compiled machine and image."""
        compiled = self.get(name)
        return SpecMonitor(
            compiled.spec,
            machine=compiled.machine,
            dense=compiled.dense,
            history_limit=self.history_limit,
        )
