"""Wire protocol of the monitoring service: newline-delimited text.

One TCP connection is one *session*: a stream of events checked against a
single specification, exactly the paper's view of a system run as a trace
``h`` with the soundness condition ``h/α(Γ) ∈ T(Γ)`` evaluated online.

The **normative specification** of this text framing (proto=1) *and* of
the length-prefixed binary framing it can upgrade to (proto=2, module
:mod:`repro.service.wire`) is ``docs/wire-protocol.md``; what follows is
the working summary.  Requests, one per line::

    HELLO [proto=N] [session=K]
                          negotiate; the server answers its agreed
                          protocol version and spec names, and a session
                          agreeing on proto>=2 switches to binary frames.
                          ``session=K`` names a durable session key: on a
                          server with a data directory the session's
                          inputs are logged and replayed across restarts
                          (the reply then carries ``durable=1``)
    SPEC <name>           bind the session to a specification
    EVENT <trace line>    feed one event (runtime/tracefile.py syntax)
    UPDATE <fields>       hot-swap compiled specs in the live registry:
                          ``scenario=<name>`` rebuilds a built-in
                          scenario's specs, ``lines=<n>`` announces that
                          exactly n raw lines of OUN document text
                          follow this line; ``force=1`` swaps in fresh
                          machines even for unchanged content
    STATUS                synchronise and report the session verdict
    METRICS               dump the process metrics (Prometheus text)
    RESET                 synchronise, then forget the session's history
    BYE                   synchronise, report, and close

``EVENT`` is deliberately *silent*: events pipeline without per-event
round-trips, and problems (malformed lines, no spec bound) are counted
and surfaced by the next synchronising verb.  ``UPDATE`` is the one
verb whose *request* may span lines — its ``lines=<n>`` form carries
the document body as exactly ``n`` raw lines after the command line
(blank lines included), mirroring how ``METRICS`` frames its reply.
Every other verb except ``EVENT`` — ``HELLO``, ``SPEC``, ``UPDATE``,
``STATUS``, ``METRICS``, ``RESET`` and ``BYE`` — elicits exactly one
reply line::

    OK <detail...>
    ERR <message>
    VIOLATION spec=<name> events=<n> skipped=<k> errors=<e> index=<i> event=<trace line>

The ``event=`` field is always last so the raw trace line (which contains
spaces) needs no quoting.  Status-shaped replies for a *durable* session
additionally carry ``applied=<a>`` (after ``errors=``): the number of
event inputs the server has durably logged and applied — the client's
resend watermark after a reconnect (see
:mod:`repro.service.durability`).  Non-durable sessions omit the field,
so their replies are byte-identical to earlier releases.

``METRICS`` is the one multi-line reply: ``OK metrics lines=<n>``
followed by exactly ``n`` raw lines of Prometheus text exposition from
the process-wide :mod:`repro.obs` registry — the line count up front
keeps the framing unambiguous inside the otherwise one-line protocol.

An unknown verb (including ``EVENTS``, which exists only as a binary
opcode) elicits a clean ``ERR`` and the connection stays up — this is
what lets mixed-version clients and servers interoperate.

The verb table above is asserted against :data:`VERBS` by
``tests/service/test_protocol.py``, so it cannot drift again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "VERBS",
    "Command",
    "ProtocolError",
    "Reply",
    "SessionStatus",
    "format_status",
    "parse_command",
    "parse_hello",
    "parse_hello_proto",
    "parse_reply",
]

PROTOCOL_VERSION = 1

#: Verbs that take an argument (rest of the line, may contain spaces).
_ARG_VERBS = frozenset({"SPEC", "EVENT", "UPDATE"})
#: Verbs that take no argument.
_BARE_VERBS = frozenset({"STATUS", "METRICS", "RESET", "BYE"})
#: Verbs whose argument is optional (``HELLO`` vs ``HELLO proto=2``).
_OPT_ARG_VERBS = frozenset({"HELLO"})
VERBS = _ARG_VERBS | _BARE_VERBS | _OPT_ARG_VERBS


def parse_hello_proto(arg: str) -> int:
    """The protocol version a ``HELLO`` argument requests.

    An empty argument is the proto=1 form every client has always sent;
    the only other accepted shape is ``proto=N`` with integer ``N >= 1``
    (a server answers ``min(N, its own maximum)``, so clients may ask
    for versions that do not exist yet).
    """
    if not arg:
        return 1
    key, _, value = arg.partition("=")
    if key != "proto":
        raise ProtocolError(f"malformed HELLO argument {arg!r}")
    try:
        proto = int(value)
    except ValueError as exc:
        raise ProtocolError(f"malformed HELLO proto {value!r}") from exc
    if proto < 1:
        raise ProtocolError(f"HELLO proto must be >= 1, got {proto}")
    return proto


def parse_hello(arg: str) -> tuple[int, str | None]:
    """Parse a full ``HELLO`` argument: ``(proto, session key or None)``.

    Accepts space-separated ``proto=N`` and ``session=K`` fields in any
    order (a repeated field keeps its last value).
    :func:`parse_hello_proto` is the
    single-field subset kept for compatibility — servers from before
    durable sessions reject ``session=`` through it, which is exactly
    the signal a new client needs to fall back to a plain ``HELLO``.
    """
    proto = 1
    session: str | None = None
    for token in arg.split():
        key, eq, value = token.partition("=")
        if key == "proto" and eq:
            proto = parse_hello_proto(token)
        elif key == "session" and eq:
            if not value:
                raise ProtocolError("HELLO session key must be non-empty")
            session = value
        else:
            raise ProtocolError(f"malformed HELLO argument {token!r}")
    return proto, session


class ProtocolError(ReproError):
    """Raised for lines that are not valid protocol messages."""


@dataclass(frozen=True, slots=True)
class Command:
    """One parsed request line: a verb and its (possibly empty) argument."""

    verb: str
    arg: str = ""


def parse_command(line: str) -> Command:
    """Parse one request line into a :class:`Command`."""
    line = line.strip()
    if not line:
        raise ProtocolError("empty command line")
    verb, _, rest = line.partition(" ")
    verb = verb.upper()
    rest = rest.strip()
    if verb not in VERBS:
        raise ProtocolError(f"unknown command {verb!r}")
    if verb in _ARG_VERBS and not rest:
        raise ProtocolError(f"{verb} requires an argument")
    if verb in _BARE_VERBS and rest:
        raise ProtocolError(f"{verb} takes no argument")
    if verb in _OPT_ARG_VERBS and rest:
        parse_hello(rest)  # reject malformed negotiation upfront
    return Command(verb, rest)


@dataclass(frozen=True, slots=True)
class SessionStatus:
    """A session verdict: counters plus the first violation, if any.

    ``events`` counts every ``EVENT`` accepted (in and out of alphabet),
    ``skipped`` the out-of-alphabet subset, ``errors`` the malformed or
    spec-less events.  ``violation_index`` is the 0-based session-global
    index of the first violating event.  ``applied`` is the durable
    session's idempotency watermark (total event inputs logged and
    applied, never reset); ``None`` on non-durable sessions, whose
    replies then render without the field.
    """

    spec: str | None = None
    events: int = 0
    skipped: int = 0
    errors: int = 0
    violation_index: int | None = None
    violation_event: str | None = None
    applied: int | None = None

    @property
    def ok(self) -> bool:
        return self.violation_index is None


def format_status(status: SessionStatus) -> str:
    """Render a :class:`SessionStatus` as one reply line."""
    spec = status.spec if status.spec is not None else "-"
    counters = (
        f"spec={spec} events={status.events} "
        f"skipped={status.skipped} errors={status.errors}"
    )
    if status.applied is not None:
        counters += f" applied={status.applied}"
    if status.ok:
        return f"OK status {counters}"
    return (
        f"VIOLATION {counters} index={status.violation_index} "
        f"event={status.violation_event or ''}"
    )


@dataclass(frozen=True, slots=True)
class Reply:
    """One parsed reply line.

    ``kind`` is ``"ok"``, ``"err"`` or ``"violation"``; ``detail`` is the
    raw text after the keyword; ``status`` is populated for status-shaped
    replies (``OK status ...`` and ``VIOLATION ...``).
    """

    kind: str
    detail: str
    status: SessionStatus | None = None


def _parse_fields(text: str) -> tuple[dict[str, str], str | None]:
    """Split ``k=v`` fields; ``event=`` swallows the rest of the line."""
    fields: dict[str, str] = {}
    rest = text
    while rest:
        if rest.startswith("event="):
            return fields, rest[len("event="):]
        part, _, rest = rest.partition(" ")
        key, eq, value = part.partition("=")
        if not eq:
            raise ProtocolError(f"malformed reply field {part!r}")
        fields[key] = value
        rest = rest.lstrip()
    return fields, None


def _parse_status(text: str, violated: bool) -> SessionStatus:
    fields, event = _parse_fields(text)
    try:
        spec = fields.get("spec", "-")
        return SessionStatus(
            spec=None if spec == "-" else spec,
            events=int(fields.get("events", 0)),
            skipped=int(fields.get("skipped", 0)),
            errors=int(fields.get("errors", 0)),
            violation_index=int(fields["index"]) if violated else None,
            violation_event=event if violated else None,
            applied=int(fields["applied"]) if "applied" in fields else None,
        )
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed status reply {text!r}: {exc}") from exc


def parse_reply(line: str) -> Reply:
    """Parse one reply line into a :class:`Reply` (client side)."""
    line = line.strip()
    keyword, _, rest = line.partition(" ")
    if keyword == "OK":
        status = None
        if rest.startswith("status "):
            status = _parse_status(rest[len("status "):], violated=False)
        return Reply("ok", rest, status)
    if keyword == "ERR":
        return Reply("err", rest)
    if keyword == "VIOLATION":
        return Reply("violation", rest, _parse_status(rest, violated=True))
    raise ProtocolError(f"malformed reply line {line!r}")
