"""Online-monitoring service: soundness checking as a network service.

The paper's practical payoff is that prefix-closed (safety) trace sets
are monitorable online.  This package turns the in-process
:class:`~repro.runtime.monitor.SpecMonitor` into a server: many
concurrent TCP sessions, each an event stream checked against a
registered specification, with events sharded by callee so independent
objects verify in parallel (per-object order preserved, as composition
``Γ‖Δ`` interleaves per-object streams).

Modules:

* :mod:`~repro.service.protocol` — the newline-delimited wire protocol;
* :mod:`~repro.service.registry` — compile specs once, share machines;
* :mod:`~repro.service.shards`   — per-callee FIFO worker pool;
* :mod:`~repro.service.durability` — per-shard event log + snapshots;
* :mod:`~repro.service.topology` — multi-process serving (scale-out);
* :mod:`~repro.service.server`   — the asyncio TCP server;
* :mod:`~repro.service.client`   — retrying, backpressured client.
"""

from repro.obs.metrics import LatencyHistogram, ServiceMetrics
from repro.service.client import MonitorClient, ServiceUnavailable, backoff_delays
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Command,
    ProtocolError,
    Reply,
    SessionStatus,
    format_status,
    parse_command,
    parse_reply,
)
from repro.service.registry import CompiledSpec, SpecRegistry, UpdateReport
from repro.service.server import MonitorServer
from repro.service.shards import ShardPool, shard_index

__all__ = [
    "PROTOCOL_VERSION",
    "Command",
    "CompiledSpec",
    "LatencyHistogram",
    "MonitorClient",
    "MonitorServer",
    "ProtocolError",
    "Reply",
    "ServiceMetrics",
    "ServiceUnavailable",
    "SessionStatus",
    "SpecRegistry",
    "ShardPool",
    "UpdateReport",
    "backoff_delays",
    "format_status",
    "parse_command",
    "parse_reply",
    "shard_index",
]
