"""Durable monitor state: per-shard event logs + session snapshots.

The service's exactly-once story (DESIGN.md §15, docs/operations.md) in
one page.  A *durable* session — one that said ``HELLO session=<key>``
against a server started with a data directory — has every event input
appended to an on-disk log **before** it is fed to the shard pool, and
its monitor state snapshotted periodically.  A restarted worker rebuilds
the session by loading the freshest snapshot and replaying the log
suffix after it through the *same* stepping code the live path uses, so
the recovered dense-monitor state (and therefore every future verdict)
is identical to an uninterrupted run.

Log records reuse the :mod:`repro.service.wire` framing — an opcode byte
and a little-endian u32 payload length — with their own opcode
namespace.  Every record payload starts with one common prefix::

    u32 lsn       per-session-key log sequence number (total order)
    u32 received  event inputs consumed before this record
    u16 keylen    session key length
    bytes key     utf-8 session key

followed by the per-kind body:

=============  ====================================================
``REC_BIND``   utf-8 spec name — the session bound (``SPEC``)
``REC_LINE``   utf-8 event line, exactly as received (1 input)
``REC_IDS``    an ``EVENTS`` payload (u32 count + i32 ids; n inputs)
``REC_RESET``  empty — the session's history was forgotten
=============  ====================================================

``lsn`` is monotonic per key across *all* files — a reconnect may land
on a different worker, so one key's records can span several logs, and
replay merges them by sorting on ``lsn`` alone.  ``received`` counts
every event *input* (each ``EVENT`` line — malformed and comment lines
included — and each id of an ``EVENTS`` batch) and is never reset, not
even by ``RESET``: it is the idempotency watermark.  A client that
resends its unacknowledged tail after a reconnect cannot double-apply
anything, because replay (and the live resume path) skip inputs below
the watermark — at-least-once delivery becomes exactly-once.

Event bodies are logged *verbatim*, before validation: replay re-runs
the same validation, so error counters recover exactly too.

Snapshots are small JSON files (atomic rename) recording the session's
counters, watermark, and the monitor's dense state id.  A deoptimised
monitor (alive but off the dense array) is deliberately *not*
snapshotted — its machine state has no stable serialisation — so
recovery just replays more log; correctness never depends on a snapshot
existing.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.errors import ReproError
from repro.obs.registry import get_registry
from repro.obs.trace import span
from repro.runtime import tracefile
from repro.runtime.monitor import SpecMonitor
from repro.service import wire

__all__ = [
    "REC_BIND",
    "REC_LINE",
    "REC_IDS",
    "REC_RESET",
    "DEFAULT_FSYNC_EVERY",
    "DEFAULT_SNAPSHOT_EVERY",
    "DurabilityError",
    "Record",
    "RecoveredSession",
    "WorkerStore",
    "encode_record",
    "decode_records",
    "scan_records",
    "load_best_snapshot",
    "recover",
]

# -- record opcodes (own namespace; framing shared with wire.py) ------------
REC_BIND = 0x01  # body: utf-8 spec name
REC_LINE = 0x02  # body: utf-8 event line (1 input)
REC_IDS = 0x03  # body: an EVENTS payload (u32 count + i32 ids; n inputs)
REC_RESET = 0x04  # empty body

#: fsync the log every this many appended records (a crashed *process*
#: loses nothing either way — buffered writes are flushed to the OS page
#: cache per record; fsync bounds what a crashed *host* can lose).
DEFAULT_FSYNC_EVERY = 64

#: Snapshot a session's monitor state every this many event inputs.
DEFAULT_SNAPSHOT_EVERY = 1024

_HEADER = struct.Struct("<BI")  # the wire.py frame header, byte-identical
_PREFIX = struct.Struct("<IIH")  # lsn, received, key length
_U32 = struct.Struct("<I")


class DurabilityError(ReproError):
    """Raised for records or snapshots that violate the on-disk format."""


@dataclass(frozen=True, slots=True)
class Record:
    """One decoded log record."""

    opcode: int
    key: str
    lsn: int
    received: int
    body: bytes

    @property
    def inputs(self) -> int:
        """How many event inputs this record consumes (its watermark width)."""
        if self.opcode == REC_LINE:
            return 1
        if self.opcode == REC_IDS:
            if len(self.body) < _U32.size:
                raise DurabilityError("REC_IDS body shorter than its count")
            return _U32.unpack_from(self.body)[0]
        return 0


def encode_record(
    opcode: int, key: str, lsn: int, received: int, body: bytes = b""
) -> bytes:
    """One complete log record: wire frame header + prefix + body."""
    raw = key.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise DurabilityError(f"session key of {len(raw)} bytes exceeds u16")
    return wire.encode_frame(
        opcode, _PREFIX.pack(lsn, received, len(raw)) + raw + body
    )


def decode_records(blob: bytes) -> Iterator[Record]:
    """Decode a log file's bytes; a truncated tail ends the stream cleanly.

    A crash can cut the final record short (the append is not atomic);
    everything before the cut is intact because records are only ever
    appended.  Truncation mid-record therefore stops iteration instead
    of raising — the lost suffix was never acknowledged to any client.
    """
    offset = 0
    total = len(blob)
    while offset + _HEADER.size <= total:
        opcode, length = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return  # torn tail: the record was still being written
        payload = blob[start:end]
        offset = end
        if len(payload) < _PREFIX.size:
            raise DurabilityError("record payload shorter than its prefix")
        lsn, received, keylen = _PREFIX.unpack_from(payload)
        key_end = _PREFIX.size + keylen
        if key_end > len(payload):
            raise DurabilityError("record payload truncated inside its key")
        yield Record(
            opcode=opcode,
            key=payload[_PREFIX.size:key_end].decode("utf-8"),
            lsn=lsn,
            received=received,
            body=payload[key_end:],
        )


def _snapshot_name(key: str) -> str:
    """A filesystem-safe snapshot file name (the key itself is inside)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32] + ".snap"


class WorkerStore:
    """One worker's durable state: shard logs + snapshots under a data dir.

    Layout: ``<data_dir>/worker-<i>/shard-<j>.log`` and
    ``<data_dir>/worker-<i>/snapshots/<hash>.snap``.  Appends go through
    a buffered file flushed per record (a killed process loses nothing)
    and ``fsync``-ed every ``fsync_every`` records (bounding what a
    crashed host can lose), with the fsync wall time observed in the
    ``repro_durability_fsync_seconds`` histogram.
    """

    def __init__(
        self,
        data_dir: str | Path,
        worker_id: int = 0,
        *,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
    ) -> None:
        if fsync_every < 1:
            raise DurabilityError("fsync_every must be positive")
        self.data_dir = Path(data_dir)
        self.worker_id = worker_id
        self.root = self.data_dir / f"worker-{worker_id}"
        (self.root / "snapshots").mkdir(parents=True, exist_ok=True)
        self.fsync_every = fsync_every
        self._files: dict[int, object] = {}
        self._unsynced: dict[int, int] = {}
        registry = get_registry()
        self._c_records = registry.counter(
            "repro_durability_records_total",
            help="event-log records appended",
        )
        self._c_bytes = registry.counter(
            "repro_durability_bytes_total",
            help="event-log bytes appended",
        )
        self._c_snapshots = registry.counter(
            "repro_durability_snapshots_total",
            help="session snapshots written",
        )
        self._g_logs = registry.gauge(
            "repro_durability_open_logs",
            help="shard log files this process holds open",
        )
        self._h_fsync = registry.histogram(
            "repro_durability_fsync_seconds",
            help="wall seconds per event-log fsync",
        )

    # -- log appends ---------------------------------------------------------

    def append(self, shard: int, record: bytes) -> None:
        """Append one encoded record to a shard's log; flush immediately."""
        fh = self._files.get(shard)
        if fh is None:
            fh = open(self.root / f"shard-{shard}.log", "ab")
            self._files[shard] = fh
            self._unsynced[shard] = 0
            self._g_logs.inc()
        fh.write(record)
        fh.flush()
        self._c_records.inc()
        self._c_bytes.inc(len(record))
        self._unsynced[shard] += 1
        if self._unsynced[shard] >= self.fsync_every:
            self._fsync(shard, fh)

    def _fsync(self, shard: int, fh) -> None:
        import time

        start = time.perf_counter()
        os.fsync(fh.fileno())
        self._h_fsync.observe(time.perf_counter() - start)
        self._unsynced[shard] = 0

    def sync(self) -> None:
        """fsync every open shard log (clean-shutdown and snapshot barrier)."""
        for shard, fh in self._files.items():
            if self._unsynced.get(shard):
                self._fsync(shard, fh)

    def close(self) -> None:
        self.sync()
        for fh in self._files.values():
            fh.close()
            self._g_logs.dec()
        self._files.clear()
        self._unsynced.clear()

    # -- snapshots -----------------------------------------------------------

    def write_snapshot(self, payload: dict) -> None:
        """Atomically persist one session snapshot (tmp write + rename)."""
        path = self.root / "snapshots" / _snapshot_name(payload["key"])
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        self._c_snapshots.inc()


# -- recovery ---------------------------------------------------------------


def scan_records(data_dir: str | Path, key: str) -> list[Record]:
    """Every record for ``key`` across all worker dirs, sorted by lsn.

    A reconnect may land a session on a different worker (and a
    restarted worker may hash its events to different shards), so one
    key's records can be spread over many files; ``lsn`` is monotonic
    per key across its whole life, so the sort alone rebuilds the total
    order.
    """
    records: list[Record] = []
    root = Path(data_dir)
    if not root.exists():
        return records
    for log in sorted(root.glob("worker-*/shard-*.log")):
        for record in decode_records(log.read_bytes()):
            if record.key == key:
                records.append(record)
    records.sort(key=lambda r: r.lsn)
    return records


def load_best_snapshot(data_dir: str | Path, key: str) -> dict | None:
    """The freshest (highest-lsn) snapshot of ``key``, any worker dir."""
    best: dict | None = None
    root = Path(data_dir)
    if not root.exists():
        return None
    for path in sorted(root.glob("worker-*/snapshots/*.snap")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue  # torn snapshot: the rename never happened
        if payload.get("key") != key:
            continue
        if best is None or payload.get("lsn", 0) > best.get("lsn", 0):
            best = payload
    return best


@dataclass(slots=True)
class RecoveredSession:
    """A durable session rebuilt from snapshot + log-suffix replay.

    ``next_lsn`` / ``received`` seed the live session's counters so new
    records continue the total order and the idempotency watermark;
    ``violation_line`` carries a restored violation's formatted event
    when the in-memory :class:`~repro.runtime.monitor.Violation` (with
    its bounded trace window) did not survive the restart.
    """

    spec: str | None = None
    compiled: object | None = None
    monitor: SpecMonitor | None = None
    events: int = 0
    skipped: int = 0
    errors: int = 0
    received: int = 0
    next_lsn: int = 0
    violation_index: int | None = None
    violation_line: str | None = None
    replayed: int = 0


def _restore_from_snapshot(state: RecoveredSession, snap: dict, registry) -> None:
    """Seed the recovery state from a snapshot (in place)."""
    state.events = int(snap.get("events", 0))
    state.skipped = int(snap.get("skipped", 0))
    state.errors = int(snap.get("errors", 0))
    state.received = int(snap.get("received", 0))
    state.next_lsn = int(snap.get("lsn", 0))
    violation = snap.get("violation")
    if violation is not None:
        state.violation_index = int(violation["index"])
        state.violation_line = violation.get("event")
    name = snap.get("spec")
    if name is None:
        return
    try:
        state.compiled = registry.get(name)
    except ReproError:
        # The document changed across the restart and no longer declares
        # this spec; the session comes back unbound with its counters
        # intact (docs/operations.md, "recovery semantics").
        return
    state.spec = name
    snap_monitor = snap.get("monitor")
    if snap_monitor is None:
        return  # no monitor existed yet; recreated lazily on next event
    monitor = registry.new_monitor_for(state.compiled)
    # Private-field surgery is deliberate: the snapshot *is* the
    # monitor's dense state, and rebuilding it through observe() would
    # need the full event history the bounded window no longer holds.
    monitor._seen = state.events
    if not snap_monitor.get("alive", True):
        monitor.alive = False
        monitor._dstate = None
    else:
        dstate = snap_monitor.get("dstate")
        monitor._dstate = dstate
        if dstate is not None and monitor.dense is not None:
            monitor.state = monitor.dense.states[dstate]
    state.monitor = monitor


def _note_violation(state: RecoveredSession, monitor: SpecMonitor) -> None:
    if not monitor.violations:
        return
    violation = monitor.violations[-1]
    if state.violation_index is None or violation.index < state.violation_index:
        state.violation_index = violation.index
        state.violation_line = tracefile.format_event(violation.event)


def _replay_line(state: RecoveredSession, line: str, registry) -> None:
    """Re-run one EVENT line with the live path's exact accounting."""
    try:
        event = tracefile.parse_line(line)
    except ReproError:
        state.errors += 1
        return
    if event is None:
        return  # comment / blank payload: consumed an input, nothing else
    if state.compiled is None:
        state.errors += 1
        return
    if state.monitor is None:
        state.monitor = registry.new_monitor_for(state.compiled)
    index = state.events
    state.events += 1
    if not state.monitor.spec.alphabet.contains(event):
        state.skipped += 1
    state.monitor.observe(event, index=index)
    _note_violation(state, state.monitor)


def _replay_ids(state: RecoveredSession, body: bytes, skip: int, registry) -> None:
    """Re-run one EVENTS batch, skipping ``skip`` already-applied inputs."""
    ids = wire.unpack_event_ids(body)
    if skip:
        ids = ids[skip:]
    n = len(ids)
    if n == 0:
        return
    compiled = state.compiled
    if compiled is None or getattr(compiled, "dense", None) is None:
        state.errors += n
        return
    k = compiled.dense.dfa.n_letters
    if min(ids) < 0 or max(ids) >= k:
        valid = type(ids)("i", (lid for lid in ids if 0 <= lid < k))
        state.errors += n - len(valid)
        ids = valid
        n = len(ids)
        if n == 0:
            return
    if state.monitor is None:
        state.monitor = registry.new_monitor_for(compiled)
    base = state.events
    state.events += n
    state.monitor.observe_ids(ids, base_index=base)
    _note_violation(state, state.monitor)


def _reset_state(state: RecoveredSession) -> None:
    if state.monitor is not None:
        state.monitor.reset()
    state.events = 0
    state.skipped = 0
    state.errors = 0
    state.violation_index = None
    state.violation_line = None


def recover(data_dir: str | Path, key: str, registry) -> RecoveredSession:
    """Rebuild a session: freshest snapshot + lsn-ordered log replay.

    The replay re-runs every surviving record through the same
    validation and stepping the live handlers use — malformed lines
    count as errors again, out-of-table ids are dropped again, dense
    batches step through ``observe_ids`` again — so counters, the dense
    state, and the first-violation index land exactly where the
    uninterrupted run would have put them.  The ``received`` watermark
    makes the replay idempotent: inputs the snapshot already covers are
    skipped, including partially-covered ``EVENTS`` batches.
    """
    state = RecoveredSession()
    snap = load_best_snapshot(data_dir, key)
    records = scan_records(data_dir, key)
    with span(
        "durability.replay", key=key, snapshot=snap is not None
    ) as sp:
        if snap is not None:
            _restore_from_snapshot(state, snap, registry)
        replayed = get_registry().counter(
            "repro_durability_replayed_records_total",
            help="log records replayed during session recovery",
        )
        for record in records:
            if record.lsn >= state.next_lsn:
                state.next_lsn = record.lsn + 1
            if snap is not None and record.lsn < snap.get("lsn", 0):
                continue  # the snapshot already covers this record
            state.replayed += 1
            replayed.inc()
            if record.opcode == REC_BIND:
                name = record.body.decode("utf-8", errors="replace")
                _reset_state(state)
                state.monitor = None
                try:
                    state.compiled = registry.get(name)
                    state.spec = name
                except ReproError:
                    state.compiled = None
                    state.spec = None
                continue
            if record.opcode == REC_RESET:
                _reset_state(state)
                continue
            inputs = record.inputs
            if record.received + inputs <= state.received:
                continue  # fully below the watermark: already applied
            skip = max(0, state.received - record.received)
            if record.opcode == REC_LINE:
                _replay_line(
                    state, record.body.decode("utf-8", errors="replace"),
                    registry,
                )
            elif record.opcode == REC_IDS:
                _replay_ids(state, record.body, skip, registry)
            else:
                raise DurabilityError(
                    f"unknown record opcode 0x{record.opcode:02x}"
                )
            state.received = record.received + inputs
        sp.set(records=state.replayed, received=state.received)
    return state
