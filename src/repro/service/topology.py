"""Multi-process serving topology: listener/router + monitor workers.

One :class:`~repro.service.server.MonitorServer` is a single asyncio
process — shard workers are tasks, so one core bounds it.  This module
scales that design out to N worker *processes*, each running its own
``MonitorServer`` over its own slice of a shared data directory
(``data-dir/worker-<i>/`` — see :mod:`~repro.service.durability`), behind
one advertised ``host:port``.

Two listener modes, picked per platform:

``reuseport``
    Every worker binds its own listening socket with ``SO_REUSEPORT``
    and the kernel load-balances accepted connections across them.  The
    parent binds (but never listens on) one extra reservation socket so
    an ephemeral ``port=0`` resolves to a concrete port before the
    workers start.

``handoff``
    The parent owns the one listening socket, accepts connections
    itself, picks a worker on a consistent-hash ring over the
    connection sequence, and ships the accepted descriptor through the
    worker's pipe (``multiprocessing.reduction.send_handle``).  Slower
    per accept, but works without ``SO_REUSEPORT``.

Either way the routing *invariant* of PR 6 is *per worker*: inside a
process the shard pool still routes (session, callee) keys and pins
coupled callees whole-session.  Across processes a session lives
wholly on one worker (a TCP connection lands exactly once), so the
invariant scales out unchanged.  Durable session keys do not need
sticky routing: recovery scans every worker's log directory, so a
resumed session replays its history no matter which worker the
reconnect lands on.

A supervisor task respawns dead workers with their original index —
same ``worker-<i>/`` directory — which is what makes SIGKILL an event
the durability log absorbs rather than an outage.
"""

from __future__ import annotations

import asyncio
import bisect
import os
import signal
import socket
import multiprocessing
from dataclasses import dataclass, replace
from multiprocessing import reduction
from pathlib import Path
from zlib import crc32

from repro.core.errors import ReproError

__all__ = ["HashRing", "ScaleOutServer", "WorkerConfig", "reuseport_available"]

#: Virtual nodes per ring member: enough that removing one node moves
#: ~1/N of the keyspace instead of a contiguous half.
DEFAULT_VNODES = 64


def reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


class HashRing:
    """Consistent hashing over a fixed node set (CRC-32 points)."""

    def __init__(self, nodes, *, vnodes: int = DEFAULT_VNODES) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ReproError("HashRing needs at least one node")
        ring = sorted(
            (crc32(f"{node}#{v}".encode("utf-8")), node)
            for node in nodes
            for v in range(vnodes)
        )
        self._points = [point for point, _ in ring]
        self._nodes = [node for _, node in ring]

    def node_for(self, key) -> object:
        """The node owning ``key`` (first ring point at or after its hash)."""
        h = crc32(str(key).encode("utf-8"))
        index = bisect.bisect_left(self._points, h) % len(self._points)
        return self._nodes[index]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to rebuild its server.

    Plain picklable data (the spawn start method re-imports everything):
    the spec source travels as a scenario *name* or raw document *text*,
    never as compiled objects.
    """

    worker_index: int
    mode: str  # "reuseport" | "handoff"
    host: str
    port: int  # concrete port (reuseport workers bind it themselves)
    scenario: str | None = None
    document: str | None = None
    shards: int = 4
    history_limit: int | None = 4096
    data_dir: str | None = None
    max_proto: int = 2
    fsync_every: int = 64
    snapshot_every: int = 1024
    watch: str | None = None
    #: Requested per-worker direct port (0 = ephemeral, None = off).
    #: The *resolved* port travels back in the worker's ready message so
    #: the parent can publish :attr:`ScaleOutServer.worker_ports` for
    #: metrics fan-in (workers share the advertised port, so they are
    #: not individually addressable through it).
    direct_port: int | None = 0


def _build_registry(config: WorkerConfig):
    from repro.service.registry import SpecRegistry

    if config.scenario is not None:
        from repro.workload.scenarios import get_scenario

        return get_scenario(config.scenario).registry(
            history_limit=config.history_limit
        )
    return SpecRegistry.from_text(
        config.document or "", history_limit=config.history_limit
    )


def _reuseport_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    return sock


async def _serve_handoff(server, conn) -> None:
    """Accept descriptors off the parent's pipe until it closes."""
    loop = asyncio.get_running_loop()
    while True:
        try:
            fd = await loop.run_in_executor(None, reduction.recv_handle, conn)
        except (EOFError, OSError):
            return
        sock = socket.socket(fileno=fd)
        sock.setblocking(False)
        reader, writer = await asyncio.open_connection(sock=sock)
        asyncio.ensure_future(server._handle_connection(reader, writer))


async def _worker_main(config: WorkerConfig, conn) -> None:
    from repro.service.server import MonitorServer

    registry = _build_registry(config)
    sock = None
    if config.mode == "reuseport":
        sock = _reuseport_socket(config.host, config.port)
        sock.listen(128)
        sock.setblocking(False)
    server = MonitorServer(
        registry,
        shards=config.shards,
        host=config.host,
        data_dir=config.data_dir,
        worker_id=config.worker_index,
        fsync_every=config.fsync_every,
        snapshot_every=config.snapshot_every,
        watch=config.watch,
        max_proto=config.max_proto,
        direct_port=config.direct_port,
        sock=sock,
        listen=config.mode == "reuseport",
    )
    await server.start()
    conn.send(("ready", config.worker_index, os.getpid(), server.direct_port))
    if config.mode == "handoff":
        await _serve_handoff(server, conn)
        await server.stop()
    else:
        await asyncio.Event().wait()  # parent terminates the process


def _worker_entry(config: WorkerConfig, conn) -> None:  # pragma: no cover
    # Child-process entry point.  The parent handles operator signals;
    # workers die by terminate()/SIGKILL, so a stray ^C in the group
    # must not race a clean parent shutdown.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(_worker_main(config, conn))
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass


class ScaleOutServer:
    """N monitor-worker processes behind one advertised address.

    ``listener="auto"`` picks ``reuseport`` where the platform has it
    and falls back to the descriptor-handoff router otherwise; tests
    pass an explicit mode to pin the code path.
    """

    def __init__(
        self,
        *,
        scenario: str | None = None,
        document: str | None = None,
        procs: int = 2,
        shards: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: str | Path | None = None,
        listener: str = "auto",
        history_limit: int | None = 4096,
        max_proto: int = 2,
        fsync_every: int = 64,
        snapshot_every: int = 1024,
        watch: str | Path | None = None,
    ) -> None:
        if (scenario is None) == (document is None):
            raise ReproError(
                "ScaleOutServer needs exactly one of scenario= or document="
            )
        if procs < 1:
            raise ReproError("procs must be >= 1")
        if listener == "auto":
            listener = "reuseport" if reuseport_available() else "handoff"
        if listener not in ("reuseport", "handoff"):
            raise ReproError(f"unknown listener mode {listener!r}")
        if listener == "reuseport" and not reuseport_available():
            raise ReproError("SO_REUSEPORT is not available on this platform")
        self.mode = listener
        self.procs = procs
        self.host = host
        self.port = port
        self.restarts = 0
        self._template = WorkerConfig(
            worker_index=0,
            mode=listener,
            host=host,
            port=port,
            scenario=scenario,
            document=document,
            shards=shards,
            history_limit=history_limit,
            data_dir=str(data_dir) if data_dir is not None else None,
            max_proto=max_proto,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
            watch=str(watch) if watch is not None else None,
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: list[tuple] = []  # (process, parent_conn) per index
        self._reserve_sock: socket.socket | None = None
        self._listen_sock: socket.socket | None = None
        self._accept_task: asyncio.Task | None = None
        self._supervisor_task: asyncio.Task | None = None
        self._ring: HashRing | None = None
        self._conn_seq = 0
        self._worker_ports: dict[int, int | None] = {}

    @property
    def worker_pids(self) -> tuple[int, ...]:
        return tuple(proc.pid for proc, _ in self._workers)

    @property
    def worker_ports(self) -> tuple[int | None, ...]:
        """Each worker's private direct port, by index.

        These bypass the shared advertised port, so a client (the
        gateway's METRICS fan-in) can address one specific worker.
        Respawns re-resolve them, so read this per use, not once.
        """
        return tuple(self._worker_ports.get(i) for i in range(self.procs))

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self.mode == "reuseport":
            # Bound but never listening: it reserves the port (resolving
            # port=0 to a real number the workers can share) without
            # ever winning an accept.
            self._reserve_sock = _reuseport_socket(self.host, self.port)
            self.port = self._reserve_sock.getsockname()[1]
        else:
            self._listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listen_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listen_sock.bind((self.host, self.port))
            self._listen_sock.listen(128)
            self._listen_sock.setblocking(False)
            self.port = self._listen_sock.getsockname()[1]
        self._template = replace(self._template, port=self.port)
        for index in range(self.procs):
            self._workers.append(await self._spawn(index))
        self._ring = HashRing(range(self.procs))
        if self.mode == "handoff":
            self._accept_task = asyncio.create_task(self._accept_loop())
        self._supervisor_task = asyncio.create_task(self._supervise())

    async def _spawn(self, index: int):
        config = replace(self._template, worker_index=index)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(config, child_conn),
            daemon=True,
            name=f"repro-worker-{index}",
        )
        proc.start()
        child_conn.close()
        loop = asyncio.get_running_loop()
        try:
            ready = await asyncio.wait_for(
                loop.run_in_executor(None, parent_conn.recv), timeout=60.0
            )
        except (asyncio.TimeoutError, EOFError) as exc:
            proc.terminate()
            raise ReproError(
                f"worker {index} failed to start: {exc!r}"
            ) from exc
        if ready[0] != "ready":  # pragma: no cover - defensive
            raise ReproError(f"worker {index} sent unexpected {ready!r}")
        self._worker_ports[index] = ready[3] if len(ready) > 3 else None
        return proc, parent_conn

    async def stop(self) -> None:
        for task in (self._supervisor_task, self._accept_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._supervisor_task = self._accept_task = None
        loop = asyncio.get_running_loop()
        for proc, conn in self._workers:
            conn.close()  # handoff workers exit their recv loop on EOF
            proc.terminate()
        for proc, _ in self._workers:
            await loop.run_in_executor(None, proc.join, 10.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
        self._workers = []
        self._worker_ports = {}
        for sock in (self._reserve_sock, self._listen_sock):
            if sock is not None:
                sock.close()
        self._reserve_sock = self._listen_sock = None

    async def __aenter__(self) -> "ScaleOutServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- fault injection / supervision ---------------------------------------

    def kill_worker(self, index: int) -> int:
        """SIGKILL one worker (fault injection); returns the dead pid."""
        proc, _ = self._workers[index]
        pid = proc.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    async def _supervise(self) -> None:
        """Respawn dead workers with their original index forever."""
        while True:
            await asyncio.sleep(0.2)
            for index, (proc, conn) in enumerate(list(self._workers)):
                if proc.is_alive():
                    continue
                conn.close()
                self._workers[index] = await self._spawn(index)
                self.restarts += 1

    # -- handoff routing -----------------------------------------------------

    async def _accept_loop(self) -> None:
        assert self._listen_sock is not None and self._ring is not None
        loop = asyncio.get_running_loop()
        while True:
            client, _addr = await loop.sock_accept(self._listen_sock)
            self._conn_seq += 1
            index = self._ring.node_for(f"conn:{self._conn_seq}")
            proc, conn = self._workers[index]
            try:
                await loop.run_in_executor(
                    None,
                    reduction.send_handle,
                    conn,
                    client.fileno(),
                    proc.pid,
                )
            except (OSError, EOFError, BrokenPipeError):
                pass  # worker died mid-handoff; client sees a reset and retries
            finally:
                client.close()
