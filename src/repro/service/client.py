"""Monitoring-service client: retrying connector and pipelined sender.

The client mirrors the protocol's asymmetry: events are *enqueued* into a
bounded send queue (``await send_event`` blocks when the queue is full —
backpressure propagates from the server's shard queues to the producer),
while synchronising verbs (``HELLO``/``SPEC``/``STATUS``/``RESET``/``BYE``)
first drain the queue, then perform one request/reply round-trip.

Connection establishment retries with exponential backoff and full
jitter; the delay schedule is a pure function (:func:`backoff_delays`) so
tests can check it without sleeping.  If the link dies mid-stream, the
sender records the failure and keeps consuming the queue — producers
never deadlock on a dead connection — and the next synchronising verb
raises ``ConnectionError``.

A client instance is designed to be driven from one task; it is not a
connection pool.
"""

from __future__ import annotations

import asyncio
import random
from typing import Iterator

from repro.core.errors import ReproError
from repro.core.events import Event
from repro.obs.registry import get_registry
from repro.runtime import tracefile
from repro.service.protocol import Reply, SessionStatus, parse_reply

__all__ = ["MonitorClient", "ServiceUnavailable", "backoff_delays"]


class ServiceUnavailable(ReproError):
    """Raised when the server cannot be reached after all retries."""


def backoff_delays(
    retries: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    rng: random.Random | None = None,
) -> Iterator[float]:
    """Exponential backoff with full jitter: ``U(0, min(cap, base·2ⁱ))``.

    Yields one delay per retry (the first connection attempt is
    immediate).  Full jitter decorrelates reconnect storms when many
    clients lose the same server at once.
    """
    rng = rng if rng is not None else random.Random()
    for attempt in range(retries):
        yield rng.uniform(0.0, min(cap, base * (2.0**attempt)))


class MonitorClient:
    """One session against a :class:`~repro.service.server.MonitorServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        spec: str | None = None,
        connect_retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        queue_size: int = 1024,
        rng: random.Random | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.spec = spec
        self.connect_retries = connect_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng
        self._queue: asyncio.Queue[str | None] = asyncio.Queue(maxsize=queue_size)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._sender: asyncio.Task | None = None
        self._send_error: Exception | None = None
        self.server_specs: tuple[str, ...] = ()
        self.events_sent = 0
        #: Connection attempts made by the last :meth:`connect` (≥ 1 on
        #: success; retries beyond the first also feed the
        #: ``repro_client_connect_retries_total`` counter).
        self.connect_attempts = 0

    # -- lifecycle -----------------------------------------------------------

    async def connect(self) -> None:
        """Connect (with retry), say HELLO, and bind ``spec`` if given."""
        delays = backoff_delays(
            self.connect_retries,
            base=self.backoff_base,
            cap=self.backoff_cap,
            rng=self._rng,
        )
        last_error: Exception | None = None
        self._send_error = None
        self.connect_attempts = 0
        for attempt in range(self.connect_retries + 1):
            self.connect_attempts = attempt + 1
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError as exc:
                last_error = exc
                try:
                    delay = next(delays)
                except StopIteration:
                    break
                await asyncio.sleep(delay)
        else:  # pragma: no cover - loop always breaks
            pass
        if self.connect_attempts > 1:
            get_registry().counter(
                "repro_client_connect_retries_total",
                help="client reconnect attempts beyond the first",
            ).inc(self.connect_attempts - 1)
        if self._writer is None:
            raise ServiceUnavailable(
                f"cannot reach {self.host}:{self.port} after "
                f"{self.connect_retries + 1} attempts: {last_error}"
            )
        self._sender = asyncio.create_task(self._drain_queue(), name="repro-client-send")
        hello = await self._sync("HELLO")
        if hello.kind != "ok":
            raise ReproError(f"server rejected HELLO: {hello.detail}")
        specs_field = hello.detail.rpartition("specs=")[2]
        self.server_specs = tuple(n for n in specs_field.split(",") if n)
        if self.spec is not None:
            await self.use_spec(self.spec)

    async def close(self) -> SessionStatus | None:
        """Gracefully drain, say BYE, and close; returns nothing on a dead link."""
        if self._writer is None:
            return None
        try:
            await self._sync("BYE")
        except (ReproError, ConnectionError):
            pass
        finally:
            await self._stop_sender()
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None
        return None

    async def __aenter__(self) -> "MonitorClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- protocol ------------------------------------------------------------

    async def use_spec(self, name: str) -> None:
        reply = await self._sync(f"SPEC {name}")
        if reply.kind != "ok":
            raise ReproError(f"server rejected spec {name!r}: {reply.detail}")
        self.spec = name

    async def send_event(self, event: Event | str) -> None:
        """Enqueue one event; blocks when the bounded queue is full."""
        line = tracefile.format_event(event) if isinstance(event, Event) else event
        await self._queue.put(f"EVENT {line}")
        self.events_sent += 1

    async def send_trace(self, events) -> None:
        """Enqueue every event of an iterable (e.g. a loaded Trace)."""
        for event in events:
            await self.send_event(event)

    async def status(self) -> SessionStatus:
        """Synchronise and fetch the session verdict."""
        reply = await self._sync("STATUS")
        if reply.status is None:
            raise ReproError(f"malformed status reply: {reply.detail}")
        return reply.status

    async def reset(self) -> None:
        reply = await self._sync("RESET")
        if reply.kind != "ok":
            raise ReproError(f"server rejected RESET: {reply.detail}")

    async def metrics(self) -> str:
        """Fetch the server's Prometheus text dump via the METRICS verb.

        The reply is the protocol's one multi-line shape: ``OK metrics
        lines=<n>`` followed by exactly ``n`` raw exposition lines, read
        here by count so embedded text never confuses the framing.
        """
        reply = await self._sync("METRICS")
        if reply.kind != "ok" or not reply.detail.startswith("metrics "):
            raise ReproError(f"server rejected METRICS: {reply.detail}")
        try:
            count = int(reply.detail.rpartition("lines=")[2])
        except ValueError as exc:
            raise ReproError(
                f"malformed METRICS reply: {reply.detail}"
            ) from exc
        assert self._reader is not None
        lines = []
        for _ in range(count):
            raw = await self._reader.readline()
            if not raw:
                raise ConnectionError("server closed mid-METRICS")
            lines.append(raw.decode("utf-8", errors="replace").rstrip("\n"))
        return "\n".join(lines) + ("\n" if lines else "")

    # -- internals -----------------------------------------------------------

    async def _drain_queue(self) -> None:
        assert self._writer is not None
        while True:
            item = await self._queue.get()
            try:
                if item is None:
                    return
                if self._send_error is not None:
                    continue  # link is dead: consume so producers never block
                try:
                    self._writer.write(item.encode("utf-8") + b"\n")
                    await self._writer.drain()
                except (ConnectionError, OSError) as exc:
                    self._send_error = exc
            finally:
                self._queue.task_done()

    async def _stop_sender(self) -> None:
        if self._sender is None:
            return
        await self._queue.put(None)
        try:
            await self._sender
        except (ConnectionError, OSError):
            pass
        self._sender = None

    async def _sync(self, line: str) -> Reply:
        """Drain the send queue, then one request/reply round-trip."""
        if self._writer is None or self._reader is None:
            raise ReproError("client is not connected")
        await self._queue.join()
        if self._send_error is not None:
            raise ConnectionError(
                f"send failed mid-stream: {self._send_error}"
            ) from self._send_error
        self._writer.write(line.encode("utf-8") + b"\n")
        await self._writer.drain()
        raw = await self._reader.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return parse_reply(raw.decode("utf-8", errors="replace"))
