"""Monitoring-service client: retrying connector and pipelined sender.

The client mirrors the protocol's asymmetry: events are *enqueued* into a
bounded send queue (``await send_event`` blocks when the queue is full —
backpressure propagates from the server's shard queues to the producer),
while synchronising verbs (``HELLO``/``SPEC``/``STATUS``/``RESET``/``BYE``)
first drain the queue, then perform one request/reply round-trip.

Connection establishment retries with exponential backoff and full
jitter; the delay schedule is a pure function (:func:`backoff_delays`) so
tests can check it without sleeping.  If the link dies mid-stream, the
sender records the failure and keeps consuming the queue — producers
never deadlock on a dead connection — and the next synchronising verb
raises ``ConnectionError``.

A client constructed with ``proto=2`` asks the server to upgrade to the
binary framing (:mod:`repro.service.wire`): after ``SPEC`` it stores the
synced letter table and :meth:`send_event` then accumulates letter ids
into an ``array('i')`` batch, flushed as one ``EVENTS`` frame every
``batch`` events (and before any synchronising verb, so ordering and
verdicts are indistinguishable from the text path).  Events outside the
table fall back to per-event ``EVENT`` frames in stream order.  When the
server is older than the binary protocol the client degrades to text
automatically — ``proto=2`` is a request, not a requirement.

A client constructed with ``session="key"`` asks for a *durable* session
(:mod:`repro.service.durability`): the HELLO carries the key, and when
the server confirms ``durable=1`` the client keeps every sent event line
in an in-memory resend log, trimmed as ``applied=`` watermarks come back
on status-shaped replies.  If the connection dies, the next
synchronising verb transparently reconnects, re-attaches the same spec,
and resends exactly the suffix the server had not yet logged — the
watermark makes at-least-once delivery exactly-once.  Servers without a
data directory (or predating the feature) simply never confirm, and the
client behaves as a plain session.

A client instance is designed to be driven from one task; it is not a
connection pool.
"""

from __future__ import annotations

import asyncio
import random
from array import array
from typing import Iterator

from repro.core.errors import ReproError
from repro.core.events import Event
from repro.obs.registry import get_registry
from repro.runtime import tracefile
from repro.service import wire
from repro.service.protocol import Reply, SessionStatus, parse_reply

__all__ = ["MonitorClient", "ServiceUnavailable", "backoff_delays", "DEFAULT_BATCH"]

#: Default ``EVENTS`` batch size for binary sessions.  Large enough to
#: amortise framing and queue traffic, small enough that a violation
#: surfaces within a few thousand events of being fed.
DEFAULT_BATCH = 256

#: Synchronising verb → request opcode (binary sessions translate the
#: same text verbs the caller-facing API has always used).
_VERB_OPS = {
    "SPEC": wire.OP_SPEC,
    "UPDATE": wire.OP_UPDATE,
    "STATUS": wire.OP_STATUS,
    "METRICS": wire.OP_METRICS,
    "RESET": wire.OP_RESET,
    "BYE": wire.OP_BYE,
}

#: Reply opcode → the text keyword whose grammar the payload reuses.
_REPLY_KEYWORDS = {
    wire.OP_OK: "OK",
    wire.OP_ERR: "ERR",
    wire.OP_VIOLATION: "VIOLATION",
}


class ServiceUnavailable(ReproError):
    """Raised when the server cannot be reached after all retries."""


def backoff_delays(
    retries: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    rng: random.Random | None = None,
) -> Iterator[float]:
    """Exponential backoff with full jitter: ``U(0, min(cap, base·2ⁱ))``.

    Yields one delay per retry (the first connection attempt is
    immediate).  Full jitter decorrelates reconnect storms when many
    clients lose the same server at once.
    """
    rng = rng if rng is not None else random.Random()
    for attempt in range(retries):
        yield rng.uniform(0.0, min(cap, base * (2.0**attempt)))


class MonitorClient:
    """One session against a :class:`~repro.service.server.MonitorServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        spec: str | None = None,
        connect_retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        queue_size: int = 1024,
        rng: random.Random | None = None,
        proto: int = 1,
        batch: int = DEFAULT_BATCH,
        session: str | None = None,
        resume: bool = True,
    ) -> None:
        if batch < 1:
            raise ReproError("batch size must be positive")
        self.host = host
        self.port = port
        self.spec = spec
        #: Durable-session key (None = plain session).  :attr:`durable`
        #: records whether the server actually confirmed the key;
        #: ``resume=False`` keeps the resend log but disables the
        #: transparent reconnect (tests drive the pieces separately).
        self.session = session
        self.resume = resume
        self.durable = False
        self._sent_log: list[str] = []
        self._base = 0  # inputs the server had before this client object
        self._trimmed = 0  # acked lines dropped from the front of the log
        self._bound_spec: str | None = None
        self._resuming = False
        self._closing = False
        self.connect_retries = connect_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng
        #: Protocol version to *request*; :attr:`proto` holds what the
        #: server actually agreed to once connected.
        self.requested_proto = proto
        self.proto = 1
        self.batch = batch
        self.letters: tuple[str, ...] = ()
        self._line_ids: dict[str, int] = {}
        self._event_ids: dict[Event, int | None] = {}
        self._pending = array("i")
        self._queue: asyncio.Queue[str | bytes | None] = asyncio.Queue(
            maxsize=queue_size
        )
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._sender: asyncio.Task | None = None
        self._send_error: Exception | None = None
        self.server_specs: tuple[str, ...] = ()
        self.events_sent = 0
        #: Connection attempts made by the last :meth:`connect` (≥ 1 on
        #: success; retries beyond the first also feed the
        #: ``repro_client_connect_retries_total`` counter).
        self.connect_attempts = 0

    # -- lifecycle -----------------------------------------------------------

    async def connect(self) -> None:
        """Connect (with retry), say HELLO, and bind ``spec`` if given."""
        delays = backoff_delays(
            self.connect_retries,
            base=self.backoff_base,
            cap=self.backoff_cap,
            rng=self._rng,
        )
        last_error: Exception | None = None
        self._send_error = None
        self.connect_attempts = 0
        for attempt in range(self.connect_retries + 1):
            self.connect_attempts = attempt + 1
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError as exc:
                last_error = exc
                try:
                    delay = next(delays)
                except StopIteration:
                    break
                await asyncio.sleep(delay)
        else:  # pragma: no cover - loop always breaks
            pass
        if self.connect_attempts > 1:
            get_registry().counter(
                "repro_client_connect_retries_total",
                help="client reconnect attempts beyond the first",
            ).inc(self.connect_attempts - 1)
        if self._writer is None:
            raise ServiceUnavailable(
                f"cannot reach {self.host}:{self.port} after "
                f"{self.connect_retries + 1} attempts: {last_error}"
            )
        self._sender = asyncio.create_task(self._drain_queue(), name="repro-client-send")
        self.proto = 1  # negotiation itself is always text
        self.durable = False
        want = self.requested_proto
        # Fallback ladder for older servers, which reject unknown HELLO
        # arguments with a clean ERR: first the full form, then (when a
        # session key was the novelty) proto-only, then the bare HELLO
        # every server has always answered.
        parts = []
        if want > 1:
            parts.append(f"proto={want}")
        if self.session is not None:
            parts.append(f"session={self.session}")
        attempts = ["HELLO " + " ".join(parts) if parts else "HELLO"]
        if want > 1 and self.session is not None:
            attempts.append(f"HELLO proto={want}")
        if attempts[-1] != "HELLO":
            attempts.append("HELLO")
        hello = await self._sync(attempts[0])
        for fallback in attempts[1:]:
            if hello.kind == "ok":
                break
            hello = await self._sync(fallback)
        if hello.kind != "ok":
            raise ReproError(f"server rejected HELLO: {hello.detail}")
        # agreed = min(requested, server max); the min() here is only a
        # guard against a server granting more than we asked for.
        self.proto = min(self._agreed_proto(hello.detail), want) if want > 1 else 1
        self.durable = "durable=1" in hello.detail.split()
        specs_field = hello.detail.rpartition("specs=")[2]
        self.server_specs = tuple(n for n in specs_field.split(",") if n)
        if self.spec is not None:
            await self.use_spec(self.spec)

    @staticmethod
    def _agreed_proto(detail: str) -> int:
        """The version a HELLO reply grants: ``repro-service <ver> ...``."""
        parts = detail.split()
        if len(parts) >= 2:
            try:
                return max(1, int(parts[1]))
            except ValueError:
                pass
        return 1

    async def close(self) -> SessionStatus | None:
        """Gracefully drain, say BYE, and close; returns nothing on a dead link."""
        if self._writer is None:
            return None
        self._closing = True
        try:
            await self._sync("BYE")
        except (ReproError, ConnectionError):
            pass
        finally:
            await self._stop_sender()
            # Re-read the attribute: a resume attempt racing the BYE can
            # have torn down and nulled the writer underneath us.
            writer = self._writer
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            self._reader = self._writer = None
            self._closing = False
        return None

    async def __aenter__(self) -> "MonitorClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- protocol ------------------------------------------------------------

    async def use_spec(self, name: str) -> None:
        reply = await self._sync(f"SPEC {name}")
        if reply.kind != "ok":
            raise ReproError(f"server rejected spec {name!r}: {reply.detail}")
        applied = self._applied_field(reply.detail)
        self.spec = name
        self.letters = ()
        self._line_ids = {}
        self._event_ids = {}
        if self.proto >= 2:
            # ``letters=<k>`` with k > 0 promises exactly one OP_LETTERS
            # frame back to back with the OK reply.
            field = reply.detail.rpartition("letters=")[2]
            try:
                count = int(field) if field else 0
            except ValueError:
                count = 0
            if count:
                opcode, payload = await self._read_frame()
                if opcode != wire.OP_LETTERS:
                    raise ReproError(
                        f"expected a LETTERS frame after SPEC, "
                        f"got opcode 0x{opcode:02x}"
                    )
                self.letters = tuple(wire.unpack_letters(payload))
                self._line_ids = {
                    line: i for i, line in enumerate(self.letters)
                }
        if self.durable and applied is not None:
            if name == self._bound_spec:
                # Re-attach after a reconnect: trim what the server has
                # durably applied, resend the rest through the fresh
                # letter table (ids may differ after a hot swap).
                self._note_applied(applied)
                for line in self._sent_log:
                    await self._send_input(line)
            else:
                # New binding (or a brand-new client adopting recovered
                # server state): the server's watermark becomes the base
                # this client's resend log counts from.
                self._sent_log = []
                self._base = applied
                self._trimmed = 0
                self._bound_spec = name

    @staticmethod
    def _applied_field(detail: str) -> int | None:
        """The ``applied=<n>`` watermark of a reply detail, if present."""
        for token in detail.split():
            if token.startswith("applied="):
                try:
                    return int(token[len("applied="):])
                except ValueError:
                    return None
        return None

    def _note_applied(self, applied: int | None) -> None:
        """Trim the resend log's prefix the server has durably applied."""
        if applied is None:
            return
        acked = applied - self._base - self._trimmed
        if acked > 0:
            del self._sent_log[:acked]
            self._trimmed += acked

    async def update_document(
        self,
        *,
        text: str | None = None,
        scenario: str | None = None,
        force: bool = False,
    ) -> dict[str, str]:
        """Hot-swap the server's compiled specs; returns the reply fields.

        Exactly one of ``text`` (an OUN document) or ``scenario`` (a
        built-in workload scenario name) selects the source;
        ``force=True`` swaps in freshly compiled machines even when the
        content is unchanged.  The reply fields are ``{"changed": "1",
        "unchanged": "2", "added": "0", "specs": "A"}``-shaped.

        Deliberately does **not** rebind this session: by the drain
        guarantee, a bound session keeps its current machine until it
        rebinds.  Call :meth:`use_spec` afterwards to attach to the
        swapped spec — on a binary session that rebind re-syncs the
        letter table (the ``LETTERS`` resync), and like any ``SPEC`` it
        resets the session's counters and history.
        """
        if (text is None) == (scenario is None):
            raise ReproError(
                "update_document needs exactly one of text= or scenario="
            )
        suffix = " force=1" if force else ""
        if scenario is not None:
            # one header line in both framings (the binary payload is
            # byte-for-byte the text argument).
            reply = await self._sync(f"UPDATE scenario={scenario}{suffix}")
        elif self.proto >= 2:
            payload = f"doc{suffix}\n{text}".encode("utf-8")
            opcode, raw = await self._request_frame(wire.OP_UPDATE, payload)
            keyword = _REPLY_KEYWORDS.get(opcode)
            if keyword is None:
                raise ReproError(f"unexpected reply frame 0x{opcode:02x}")
            body = raw.decode("utf-8", errors="replace")
            reply = parse_reply(f"{keyword} {body}" if body else keyword)
        else:
            reply = await self._update_text_document(text or "", suffix)
        if reply.kind != "ok" or not reply.detail.startswith("update "):
            raise ReproError(f"server rejected UPDATE: {reply.detail}")
        from repro.service.protocol import _parse_fields

        fields, _ = _parse_fields(reply.detail[len("update "):])
        return fields

    async def _update_text_document(self, text: str, suffix: str) -> Reply:
        """The text protocol's one multi-line request: header + body lines."""
        if self._writer is None or self._reader is None:
            raise ReproError("client is not connected")
        await self._queue.join()
        if self._send_error is not None:
            raise ConnectionError(
                f"send failed mid-stream: {self._send_error}"
            ) from self._send_error
        lines = text.split("\n")
        self._writer.write(
            f"UPDATE lines={len(lines)}{suffix}\n".encode("utf-8")
        )
        for line in lines:
            self._writer.write(line.encode("utf-8") + b"\n")
        await self._writer.drain()
        raw = await self._reader.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return parse_reply(raw.decode("utf-8", errors="replace"))

    async def send_event(self, event: Event | str) -> None:
        """Enqueue one event; blocks when the bounded queue is full.

        On a binary session an event found in the synced letter table
        joins the pending ``array('i')`` batch (flushed as one ``EVENTS``
        frame at :attr:`batch` ids, or by the next synchronising verb);
        anything else — out-of-table events, sessions without a letter
        table — flushes the batch first and travels as a per-event
        ``EVENT`` frame, so stream order is preserved exactly.
        """
        if self.session is not None and self.durable:
            # Durable sessions render the line eagerly: the resend log
            # must hold wire-identical text so a replayed suffix means
            # byte-for-byte what the lost original meant.
            line = (
                tracefile.format_event(event)
                if isinstance(event, Event)
                else event
            )
            self._sent_log.append(line)
            await self._send_input(line)
            self.events_sent += 1
            return
        if self.proto >= 2:
            lid = self._letter_id(event)
            if lid is not None:
                self._pending.append(lid)
                self.events_sent += 1
                if len(self._pending) >= self.batch:
                    await self._flush_pending()
                return
            line = (
                tracefile.format_event(event)
                if isinstance(event, Event)
                else event
            )
            await self._flush_pending()
            await self._queue.put(
                wire.encode_frame(wire.OP_EVENT, line.encode("utf-8"))
            )
            self.events_sent += 1
            return
        line = tracefile.format_event(event) if isinstance(event, Event) else event
        await self._queue.put(f"EVENT {line}")
        self.events_sent += 1

    async def _send_input(self, line: str) -> None:
        """Enqueue one already-rendered event line, batching when binary."""
        if self.proto >= 2:
            lid = self._line_ids.get(line) if self._line_ids else None
            if lid is not None:
                self._pending.append(lid)
                if len(self._pending) >= self.batch:
                    await self._flush_pending()
                return
            await self._flush_pending()
            await self._queue.put(
                wire.encode_frame(wire.OP_EVENT, line.encode("utf-8"))
            )
            return
        await self._queue.put(f"EVENT {line}")

    async def send_trace(self, events) -> None:
        """Enqueue every event of an iterable (e.g. a loaded Trace)."""
        for event in events:
            await self.send_event(event)

    async def status(self) -> SessionStatus:
        """Synchronise and fetch the session verdict."""
        reply = await self._sync("STATUS")
        if reply.status is None:
            raise ReproError(f"malformed status reply: {reply.detail}")
        if self.durable:
            self._note_applied(reply.status.applied)
        return reply.status

    async def reset(self) -> None:
        reply = await self._sync("RESET")
        if reply.kind != "ok":
            raise ReproError(f"server rejected RESET: {reply.detail}")

    async def metrics(self) -> str:
        """Fetch the server's Prometheus text dump via the METRICS verb.

        On the text protocol the reply is its one multi-line shape: ``OK
        metrics lines=<n>`` followed by exactly ``n`` raw exposition
        lines, read here by count so embedded text never confuses the
        framing.  A binary session gets the whole dump in one frame —
        payload ``metrics\\n`` + exposition — with no counting at all.
        """
        if self.proto >= 2:
            opcode, payload = await self._request_frame(wire.OP_METRICS)
            text = payload.decode("utf-8", errors="replace")
            if opcode != wire.OP_OK or not text.startswith("metrics"):
                raise ReproError(f"server rejected METRICS: {text}")
            return text.partition("\n")[2]
        reply = await self._sync("METRICS")
        if reply.kind != "ok" or not reply.detail.startswith("metrics "):
            raise ReproError(f"server rejected METRICS: {reply.detail}")
        try:
            count = int(reply.detail.rpartition("lines=")[2])
        except ValueError as exc:
            raise ReproError(
                f"malformed METRICS reply: {reply.detail}"
            ) from exc
        assert self._reader is not None
        lines = []
        for _ in range(count):
            raw = await self._reader.readline()
            if not raw:
                raise ConnectionError("server closed mid-METRICS")
            lines.append(raw.decode("utf-8", errors="replace").rstrip("\n"))
        return "\n".join(lines) + ("\n" if lines else "")

    # -- internals -----------------------------------------------------------

    def _letter_id(self, event: Event | str) -> int | None:
        """The synced letter id of an event, or None for out-of-table.

        :class:`~repro.core.events.Event` lookups are memoised (including
        negative results): a session streams many occurrences of few
        distinct events, so the ``format_event`` rendering runs once per
        distinct event, not once per occurrence.
        """
        if not self._line_ids:
            return None
        if isinstance(event, Event):
            if event in self._event_ids:
                return self._event_ids[event]
            lid = self._line_ids.get(tracefile.format_event(event))
            self._event_ids[event] = lid
            return lid
        return self._line_ids.get(event)

    async def _flush_pending(self) -> None:
        """Enqueue the pending letter-id batch as one ``EVENTS`` frame."""
        if not self._pending:
            return
        payload = wire.pack_event_ids(self._pending)
        del self._pending[:]
        await self._queue.put(wire.encode_frame(wire.OP_EVENTS, payload))

    async def _drain_queue(self) -> None:
        assert self._writer is not None
        while True:
            item = await self._queue.get()
            try:
                if item is None:
                    return
                if self._send_error is not None:
                    continue  # link is dead: consume so producers never block
                try:
                    if isinstance(item, bytes):  # a pre-encoded frame
                        self._writer.write(item)
                    else:
                        self._writer.write(item.encode("utf-8") + b"\n")
                    await self._writer.drain()
                except (ConnectionError, OSError) as exc:
                    self._send_error = exc
            finally:
                self._queue.task_done()

    async def _read_frame(self) -> tuple[int, bytes]:
        assert self._reader is not None
        try:
            return await wire.read_frame(self._reader)
        except asyncio.IncompleteReadError:
            raise ConnectionError("server closed the connection") from None

    async def _request_frame(
        self, opcode: int, payload: bytes = b""
    ) -> tuple[int, bytes]:
        """Drain queued events, then one framed request/reply round-trip."""
        if self._writer is None or self._reader is None:
            raise ReproError("client is not connected")
        await self._flush_pending()
        await self._queue.join()
        if self._send_error is not None:
            raise ConnectionError(
                f"send failed mid-stream: {self._send_error}"
            ) from self._send_error
        self._writer.write(wire.encode_frame(opcode, payload))
        await self._writer.drain()
        return await self._read_frame()

    async def _stop_sender(self) -> None:
        if self._sender is None:
            return
        await self._queue.put(None)
        try:
            await self._sender
        except (ConnectionError, OSError):
            pass
        self._sender = None

    async def _sync(self, line: str) -> Reply:
        """One synchronising round-trip, resuming a durable session once.

        A dead link on a plain session raises ``ConnectionError`` as
        ever.  On a confirmed-durable session (with ``resume`` enabled)
        the client instead reconnects, re-attaches the bound spec —
        which resends the unacked log suffix — and retries the verb
        once.  The guard flag keeps a failure *during* the resume from
        recursing.
        """
        try:
            return await self._sync_once(line)
        except ConnectionError:
            if not (
                self.durable
                and self.resume
                and not self._resuming
                and not self._closing
            ):
                raise
            await self._resume()
            return await self._sync_once(line)

    async def _resume(self) -> None:
        """Tear down the dead link and rebuild the durable session."""
        self._resuming = True
        try:
            await self._stop_sender()
            if self._writer is not None:
                # close() without wait_closed(): the old transport is
                # already dead, and its close waiter can surface the
                # reset (or a spurious cancel) instead of completing.
                self._writer.close()
            self._reader = self._writer = None
            self._send_error = None
            self._pending = array("i")
            self._queue = asyncio.Queue(maxsize=self._queue.maxsize)
            get_registry().counter(
                "repro_client_resumes_total",
                help="Durable-session reconnect-and-resend recoveries.",
            ).inc()
            await self.connect()
        finally:
            self._resuming = False

    async def _sync_once(self, line: str) -> Reply:
        """Drain the send queue, then one request/reply round-trip.

        Binary sessions translate the verb line to its frame and parse
        the reply payload with the *same* grammar as the text keyword it
        replaces — one :class:`~repro.service.protocol.Reply` shape
        either way, so every caller above is framing-agnostic.
        """
        if self._writer is None or self._reader is None:
            raise ReproError("client is not connected")
        if self.proto >= 2:
            verb, _, arg = line.partition(" ")
            opcode, payload = await self._request_frame(
                _VERB_OPS[verb], arg.encode("utf-8")
            )
            keyword = _REPLY_KEYWORDS.get(opcode)
            if keyword is None:
                raise ReproError(f"unexpected reply frame 0x{opcode:02x}")
            text = payload.decode("utf-8", errors="replace")
            return parse_reply(f"{keyword} {text}" if text else keyword)
        await self._queue.join()
        if self._send_error is not None:
            raise ConnectionError(
                f"send failed mid-stream: {self._send_error}"
            ) from self._send_error
        self._writer.write(line.encode("utf-8") + b"\n")
        await self._writer.drain()
        raw = await self._reader.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return parse_reply(raw.decode("utf-8", errors="replace"))
