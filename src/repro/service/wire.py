"""Binary framing of the monitoring service (wire protocol 2).

The normative specification of both wire framings lives in
``docs/wire-protocol.md``; this module is the proto=2 codec.  In one
sentence: after a text-mode ``HELLO proto=2`` negotiation, every message
in both directions is a length-prefixed frame

.. code-block:: text

    +--------+----------------------+------------------+
    | opcode |   payload length     |     payload      |
    | u8     |   u32 little-endian  |  `length` bytes  |
    +--------+----------------------+------------------+

and event streams travel as ``EVENTS`` frames — arrays of little-endian
``i32`` *letter ids* resolved against the per-connection letter table the
server sends after ``SPEC`` — instead of per-event text lines.  The
monitor then steps a whole batch through the dense successor array in one
tight loop (:meth:`repro.runtime.monitor.SpecMonitor.observe_ids`).

Integer encoding matches :mod:`array`'s ``"i"`` typecode on
little-endian hosts; :func:`pack_event_ids`/:func:`unpack_event_ids`
byte-swap on big-endian ones, so the wire is platform-independent while
the hot path on commodity hardware is a zero-copy ``tobytes``/
``frombytes`` pair.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Iterable, Sequence

from repro.core.errors import ReproError

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME",
    "FrameError",
    "OP_SPEC",
    "OP_EVENT",
    "OP_EVENTS",
    "OP_STATUS",
    "OP_METRICS",
    "OP_RESET",
    "OP_BYE",
    "OP_UPDATE",
    "OP_OK",
    "OP_ERR",
    "OP_VIOLATION",
    "OP_LETTERS",
    "REQUEST_OPS",
    "REPLY_OPS",
    "encode_frame",
    "read_frame",
    "pack_event_ids",
    "unpack_event_ids",
    "pack_letters",
    "unpack_letters",
]

#: The protocol version negotiated by ``HELLO proto=2``.
WIRE_VERSION = 2

#: Hard cap on one frame's payload (bytes).  Large enough for any sane
#: batch (16 Mi ÷ 4 ≈ 4M letter ids) or metrics dump; anything larger is
#: a corrupt or hostile stream and the connection is closed — a bogus
#: length field cannot be resynchronised past.
MAX_FRAME = 16 * 1024 * 1024

# -- request opcodes (client → server) --------------------------------------
OP_SPEC = 0x01  # payload: utf-8 spec name
OP_EVENT = 0x02  # payload: utf-8 trace line (out-of-table fallback)
OP_EVENTS = 0x03  # payload: u32 count + count × i32 letter ids
OP_STATUS = 0x04  # empty payload
OP_METRICS = 0x05  # empty payload
OP_RESET = 0x06  # empty payload
OP_BYE = 0x07  # empty payload
OP_UPDATE = 0x08  # payload: utf-8 header line + optional OUN document body

# -- reply opcodes (server → client) ----------------------------------------
OP_OK = 0x80  # payload: utf-8, the text reply minus the "OK " keyword
OP_ERR = 0x81  # payload: utf-8 error message
OP_VIOLATION = 0x82  # payload: utf-8, the text reply minus "VIOLATION "
OP_LETTERS = 0x83  # payload: the letter table (see pack_letters)

REQUEST_OPS = frozenset(
    {OP_SPEC, OP_EVENT, OP_EVENTS, OP_STATUS, OP_METRICS, OP_RESET,
     OP_BYE, OP_UPDATE}
)
REPLY_OPS = frozenset({OP_OK, OP_ERR, OP_VIOLATION, OP_LETTERS})

_HEADER = struct.Struct("<BI")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")

_BIG_ENDIAN = sys.byteorder == "big"


class FrameError(ReproError):
    """Raised for frames that violate the binary framing."""


def encode_frame(opcode: int, payload: bytes = b"") -> bytes:
    """One complete frame: header plus payload."""
    if len(payload) > MAX_FRAME:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte cap"
        )
    return _HEADER.pack(opcode, len(payload)) + payload


async def read_frame(reader) -> tuple[int, bytes]:
    """Read one frame off an ``asyncio.StreamReader``.

    Raises :class:`FrameError` for an over-cap length field (the stream
    cannot be resynchronised — callers must close the connection) and
    lets ``asyncio.IncompleteReadError`` propagate for a clean EOF.
    """
    header = await reader.readexactly(_HEADER.size)
    opcode, length = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(
            f"frame 0x{opcode:02x} declares {length} payload bytes "
            f"(cap {MAX_FRAME}); closing the unsynchronisable stream"
        )
    payload = await reader.readexactly(length) if length else b""
    return opcode, payload


# -- EVENTS payload ---------------------------------------------------------


def pack_event_ids(ids: Sequence[int] | array) -> bytes:
    """The ``EVENTS`` payload: u32 count + count little-endian i32 ids."""
    arr = ids if isinstance(ids, array) and ids.typecode == "i" else array("i", ids)
    if _BIG_ENDIAN:  # pragma: no cover - little-endian CI
        arr = array("i", arr)
        arr.byteswap()
    return _U32.pack(len(arr)) + arr.tobytes()


def unpack_event_ids(payload: bytes) -> array:
    """Decode an ``EVENTS`` payload back to an ``array('i')`` of ids."""
    if len(payload) < _U32.size:
        raise FrameError("EVENTS payload shorter than its count field")
    (count,) = _U32.unpack_from(payload)
    body = payload[_U32.size:]
    arr = array("i")
    if len(body) != 4 * count:
        raise FrameError(
            f"EVENTS payload declares {count} ids but carries "
            f"{len(body)} bytes"
        )
    arr.frombytes(body)
    if _BIG_ENDIAN:  # pragma: no cover - little-endian CI
        arr.byteswap()
    return arr


# -- LETTERS payload --------------------------------------------------------


def pack_letters(lines: Iterable[str]) -> bytes:
    """The letter-table payload: u32 count + per letter (u16 len + utf-8).

    Index ``i`` of the sequence is letter id ``i`` — the payload order
    *is* the id assignment, which is why the table is resent whenever
    ``SPEC`` rebinds the session.
    """
    parts = []
    count = 0
    for line in lines:
        raw = line.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise FrameError(f"letter line of {len(raw)} bytes exceeds u16")
        parts.append(_U16.pack(len(raw)) + raw)
        count += 1
    return _U32.pack(count) + b"".join(parts)


def unpack_letters(payload: bytes) -> list[str]:
    """Decode a letter-table payload to lines indexed by letter id."""
    if len(payload) < _U32.size:
        raise FrameError("LETTERS payload shorter than its count field")
    (count,) = _U32.unpack_from(payload)
    lines: list[str] = []
    offset = _U32.size
    for _ in range(count):
        if offset + _U16.size > len(payload):
            raise FrameError("LETTERS payload truncated mid-entry")
        (length,) = _U16.unpack_from(payload, offset)
        offset += _U16.size
        raw = payload[offset:offset + length]
        if len(raw) != length:
            raise FrameError("LETTERS payload truncated mid-line")
        offset += length
        lines.append(raw.decode("utf-8"))
    if offset != len(payload):
        raise FrameError("LETTERS payload carries trailing bytes")
    return lines
