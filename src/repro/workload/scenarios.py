"""The scenario corpus: multiparty protocols packaged for the driver.

A :class:`Scenario` bundles one case-study protocol for the workload
subsystem: the specification sessions bind to (the *monitored* spec —
always the protocol's full interface spec, whose violations under faults
are the interesting ones), the supporting views that accompany it into a
service registry, and the protocol's refinement/composition claims as
checker-law :class:`~repro.checker.obligations.Obligation` lists.

:func:`scenario_obligations` is an
:class:`~repro.checker.engine.ObligationSource`-compatible factory
(``repro.workload.scenarios:scenario_obligations``), so a scenario's
claims run through the same engine — with the same caching and fan-out —
as the paper's own claims (``repro workload verify``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.checker.obligations import Obligation
from repro.core.errors import ReproError
from repro.core.specification import Specification

__all__ = [
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "scenario_obligations",
]


@dataclass(frozen=True, slots=True)
class Scenario:
    """One workload scenario: a monitored protocol and its claims."""

    name: str
    title: str
    monitored: str
    description: str
    specifications: Callable[[], tuple[Specification, ...]]
    obligations: Callable[[], list[Obligation]]

    def registry(self, **kwargs):
        """A service registry over the scenario's specifications."""
        from repro.service.registry import SpecRegistry

        return SpecRegistry(self.specifications(), **kwargs)


def _obligation_list(prefix: str, entries) -> list[Obligation]:
    return [
        Obligation(
            ident=f"{prefix}-{i}",
            title=title,
            check=check,
            expected=expected,
            source=f"workload scenario {prefix}",
        )
        for i, (title, check, expected) in enumerate(entries, start=1)
    ]


# -- two-phase commit with dynamic participants ----------------------------


def _twophase_dynamic_specs() -> tuple[Specification, ...]:
    from repro.casestudies import DYNAMIC_TWO_PHASE as d

    return (
        d.coordinator_spec(),
        d.decision_view(),
        d.participant_view(d.p1),
        d.participant_view(d.p2),
        d.participant_view(d.p3),
    )


def _twophase_dynamic_obligations() -> list[Obligation]:
    from repro.casestudies import DYNAMIC_TWO_PHASE as d
    from repro.checker import check_conformance, check_refinement, law_theorem7

    coordinator = d.coordinator_spec()
    entries = [
        (
            "DynamicCoordinator ⊑ PrefixAtomicDecision",
            lambda: check_refinement(coordinator, d.decision_view()),
            True,
        ),
        (
            "DynamicCoordinator ⋢ FullSetDecision (non-example)",
            lambda: check_refinement(coordinator, d.full_decision_view()),
            False,
        ),
    ]
    for p in d.participants:
        entries.append(
            (
                f"coordinator conforms to DynamicVote({p})",
                lambda p=p: check_conformance(coordinator, d.participant_view(p)),
                True,
            )
        )
    entries.append(
        (
            "Theorem 7: DynamicVote(p1) ⊑ LossyParticipant(p1) lifts "
            "through ‖ coordinator",
            lambda: law_theorem7(
                d.lossy_participant(d.p1), d.participant_view(d.p1), coordinator
            ),
            True,
        )
    )
    return _obligation_list("w2pc", entries)


# -- pub/sub fan-out -------------------------------------------------------


def _pubsub_specs() -> tuple[Specification, ...]:
    from repro.casestudies import PUBSUB as ps

    return (
        ps.broker_spec(),
        ps.delivery_view(),
        ps.subscriber_view(ps.s1),
        ps.subscriber_view(ps.s2),
    )


def _pubsub_obligations() -> list[Obligation]:
    from repro.casestudies import PUBSUB as ps
    from repro.checker import (
        check_conformance,
        check_refinement,
        law_theorem7,
        trace_sets_equal,
    )

    broker = ps.broker_spec()
    entries = [
        (
            "FanOutBroker ⊑ DeliveryFanOut",
            lambda: check_refinement(broker, ps.delivery_view()),
            True,
        ),
    ]
    for s in ps.subscribers:
        entries.append(
            (
                f"broker conforms to ReliableSubscriber({s})",
                lambda s=s: check_conformance(broker, ps.subscriber_view(s)),
                True,
            )
        )
    entries.extend(
        [
            (
                "Theorem 7: ReliableSubscriber(s1) ⊑ LossySubscriber(s1) "
                "lifts through ‖ broker",
                lambda: law_theorem7(
                    ps.lossy_subscriber(ps.s1), ps.subscriber_view(ps.s1), broker
                ),
                True,
            ),
            (
                "T(PubSubCell) = T(PublishService) (encapsulation)",
                lambda: trace_sets_equal(ps.cell_spec(), ps.publish_oracle()),
                True,
            ),
        ]
    )
    return _obligation_list("wps", entries)


# -- leader election -------------------------------------------------------


def _election_specs() -> tuple[Specification, ...]:
    from repro.casestudies import ELECTION as el

    return (
        el.election_spec(),
        el.single_leader_view(),
        el.candidate_view(el.c1),
        el.candidate_view(el.c2),
        el.candidate_view(el.c3),
    )


def _election_obligations() -> list[Obligation]:
    from repro.casestudies import ELECTION as el
    from repro.checker import (
        check_conformance,
        check_refinement,
        law_property5,
    )

    election = el.election_spec()
    entries = [
        (
            "LeaderElection ⊑ SingleLeader",
            lambda: check_refinement(election, el.single_leader_view()),
            True,
        ),
        (
            "LeaderElection ⋢ C1Monopoly (non-example)",
            lambda: check_refinement(election, el.c1_monopoly()),
            False,
        ),
    ]
    for c in el.candidates:
        entries.append(
            (
                f"election conforms to Candidate({c})",
                lambda c=c: check_conformance(election, el.candidate_view(c)),
                True,
            )
        )
    entries.append(
        (
            "Property 5: Candidate(c1) ‖ Candidate(c1) = Candidate(c1)",
            lambda: law_property5(el.candidate_view(el.c1)),
            True,
        )
    )
    return _obligation_list("wel", entries)


_SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="two_phase_dynamic",
            title="two-phase commit, dynamic participant enlistment",
            monitored="DynamicCoordinator",
            description=(
                "A coordinator enlists a per-round prefix of p1..p3, "
                "collects votes, and decides uniformly; faults break "
                "vote/decision order or atomicity."
            ),
            specifications=_twophase_dynamic_specs,
            obligations=_twophase_dynamic_obligations,
        ),
        Scenario(
            name="pubsub_fanout",
            title="pub/sub broker fanning out to two subscribers",
            monitored="FanOutBroker",
            description=(
                "A broker delivers every publication to both subscribers "
                "and collects both acks before the next; faults break "
                "pairing or ack discipline."
            ),
            specifications=_pubsub_specs,
            obligations=_pubsub_obligations,
        ),
        Scenario(
            name="leader_election",
            title="leader-election handshake at an arbiter",
            monitored="LeaderElection",
            description=(
                "Candidates campaign at a ballot box; one leads per term "
                "while others are defeated; faults elect two leaders or "
                "drop concessions."
            ),
            specifications=_election_specs,
            obligations=_election_obligations,
        ),
    )
}


def all_scenarios() -> tuple[Scenario, ...]:
    """Every scenario, in corpus order."""
    return tuple(_SCENARIOS.values())


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raise a precise error if absent."""
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        known = ", ".join(sorted(_SCENARIOS))
        raise ReproError(f"no scenario named {name!r} (have: {known})")
    return scenario


def scenario_obligations(scenario: str) -> list[Obligation]:
    """Obligation-engine factory: one scenario's claims.

    Referenced as ``repro.workload.scenarios:scenario_obligations`` by
    :class:`~repro.checker.engine.ObligationSource`, so the claims can
    run on worker processes with machine caching.
    """
    return get_scenario(scenario).obligations()
