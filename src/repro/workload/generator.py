"""Deterministic event-stream generation with fault injection.

The generator turns a compiled scenario specification into adversarial
service traffic with a *known* verdict:

1. **Happy path** — a seeded random walk over the spec's dense
   :class:`~repro.automata.build.MachineImage` (the same flat successor
   array the online monitor steps through), choosing uniformly among the
   live wire-safe letters of the current state.  By construction every
   prefix stays in the trace set.
2. **Faults** — the walk is then mutated event-wise: ``drop`` removes an
   event, ``dup`` re-sends one immediately, ``reorder`` swaps adjacent
   survivors; each with its own independent per-event probability.
3. **Oracle** — the mutated stream is replayed through the dense image
   once more: the *expected violation position* is the first index whose
   prefix leaves the trace set (``None`` when the mutation happened to
   stay in-language — duplicating an event that may legally repeat, or
   swapping two events the spec never ordered).  This mirrors exactly
   the paper's first-violation semantics the service implements, but
   through an independent code path (no :class:`SpecMonitor` involved).

**Seeding/determinism contract**: one ``random.Random(str(seed))``
instance drives both the walk and the mutation, consumed in stream
order.  Identical ``(spec, events, faults, seed)`` therefore produce
identical streams, fault counts, and oracle positions — across
processes, platforms, and time (the CPython Mersenne Twister is stable).

Wire safety: letters are instantiated events; any whose trace-file line
does not round-trip (``parse_line ∘ format_event ≠ id`` — e.g. a fresh
universe value whose ``#``-prefixed name would read back as a comment)
are excluded from the walk, so every generated event survives the
service's wire format verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.core.events import Event
from repro.runtime import tracefile

__all__ = [
    "FaultSpec",
    "GeneratedStream",
    "StreamSession",
    "generate_stream",
    "wire_safe_letters",
]

_FAULT_KINDS = ("reorder", "dup", "drop")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Per-event fault probabilities, each in ``[0, 1]``."""

    reorder: float = 0.0
    dup: float = 0.0
    drop: float = 0.0

    def __post_init__(self) -> None:
        for kind in _FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ReproError(
                    f"fault rate {kind}={rate} outside [0, 1]"
                )

    @property
    def active(self) -> bool:
        return any(getattr(self, kind) > 0.0 for kind in _FAULT_KINDS)

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse the CLI form ``reorder=P,dup=P,drop=P`` (subset, any order)."""
        rates: dict[str, float] = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            kind, sep, value = part.partition("=")
            kind = kind.strip()
            if not sep or kind not in _FAULT_KINDS:
                raise ReproError(
                    f"bad fault {part!r}: expected "
                    f"{'|'.join(_FAULT_KINDS)}=RATE"
                )
            try:
                rates[kind] = float(value)
            except ValueError as exc:
                raise ReproError(f"bad fault rate in {part!r}") from exc
        return FaultSpec(**rates)

    def describe(self) -> str:
        return ",".join(
            f"{kind}={getattr(self, kind):g}" for kind in _FAULT_KINDS
        )

    def as_dict(self) -> dict[str, float]:
        return {kind: getattr(self, kind) for kind in _FAULT_KINDS}


def wire_safe_letters(image) -> list[int]:
    """Letter ids whose events survive a trace-line round-trip."""
    safe = []
    for lid, event in enumerate(image.dfa.table.letters):
        try:
            back = tracefile.parse_line(tracefile.format_event(event))
        except ReproError:
            continue
        if back == event:
            safe.append(lid)
    return safe


class _HappyWalker:
    """Seeded uniform walk through a dense image's live states."""

    def __init__(self, compiled, rng: random.Random) -> None:
        image = compiled.dense
        if image is None:
            raise ReproError(
                f"{compiled.name}: no dense image (state space above the "
                f"registry budget?) — cannot generate workloads"
            )
        self._image = image
        self._rng = rng
        self._safe = wire_safe_letters(image)
        if not self._safe:
            raise ReproError(
                f"{compiled.name}: no wire-safe letters to generate from"
            )
        self._state = image.dfa.start
        self._successors: dict[int, list[tuple[int, int]]] = {}

    def _live_moves(self, state: int) -> list[tuple[int, int]]:
        moves = self._successors.get(state)
        if moves is None:
            dfa = self._image.dfa
            live = len(self._image.states)
            row = state * dfa.n_letters
            moves = self._successors[state] = [
                (lid, dfa.dense[row + lid])
                for lid in self._safe
                if dfa.dense[row + lid] < live
            ]
        return moves

    def batch(self, n: int) -> list[Event]:
        letters = self._image.dfa.table.letters
        out: list[Event] = []
        for _ in range(n):
            moves = self._live_moves(self._state)
            if not moves:  # dead end: every letter would violate
                break
            lid, nxt = moves[self._rng.randrange(len(moves))]
            out.append(letters[lid])
            self._state = nxt
        return out


class _DenseOracle:
    """First index whose prefix leaves the trace set, by dense stepping."""

    def __init__(self, compiled) -> None:
        image = compiled.dense
        if image is None:
            raise ReproError(f"{compiled.name}: no dense image for the oracle")
        self._name = compiled.name
        self._image = image
        self._state = image.dfa.start
        self._seen = 0
        self.violation_index: int | None = None

    def feed(self, events) -> None:
        dfa = self._image.dfa
        live = len(self._image.states)
        for event in events:
            index = self._seen
            self._seen += 1
            if self.violation_index is not None:
                continue  # irremediable: the first violation stands
            lid = dfa.table.get(event)
            if lid is None:
                raise ReproError(
                    f"{self._name}: event {event} outside the instantiated "
                    f"letter table — the generator never emits these"
                )
            nxt = dfa.dense[self._state * dfa.n_letters + lid]
            if nxt < live:
                self._state = nxt
            else:
                self.violation_index = index


def inject_faults(
    events: list[Event], faults: FaultSpec, rng: random.Random
) -> tuple[list[Event], dict[str, int]]:
    """Mutate a stream in place-order: dup/drop per event, then swaps."""
    counts = dict.fromkeys(_FAULT_KINDS, 0)
    out: list[Event] = []
    for event in events:
        if faults.drop and rng.random() < faults.drop:
            counts["drop"] += 1
            continue
        out.append(event)
        if faults.dup and rng.random() < faults.dup:
            out.append(event)
            counts["dup"] += 1
    if faults.reorder:
        i = 0
        while i + 1 < len(out):
            if rng.random() < faults.reorder:
                out[i], out[i + 1] = out[i + 1], out[i]
                counts["reorder"] += 1
                i += 2  # a swapped pair is not re-swapped
            else:
                i += 1
    return out, counts


class StreamSession:
    """One session's stream: incremental batches with a running oracle.

    Batches continue the happy walk from the previous batch's state, so
    a duration-bounded run is one long coherent stream; faults are
    injected within each batch (a swap never crosses a batch boundary).
    """

    def __init__(self, compiled, faults: FaultSpec | None = None, seed=0) -> None:
        self._rng = random.Random(str(seed))
        self._walker = _HappyWalker(compiled, self._rng)
        self._oracle = _DenseOracle(compiled)
        self._faults = faults if faults is not None else FaultSpec()
        self._lines: dict[Event, str] = {}
        self.fault_counts = dict.fromkeys(_FAULT_KINDS, 0)
        self.happy_events = 0
        self.events_emitted = 0

    def next_batch(self, n: int) -> list[Event]:
        happy = self._walker.batch(n)
        self.happy_events += len(happy)
        mutated, counts = inject_faults(happy, self._faults, self._rng)
        for kind, count in counts.items():
            self.fault_counts[kind] += count
        self._oracle.feed(mutated)
        self.events_emitted += len(mutated)
        return mutated

    def next_batch_lines(self, n: int) -> list[str]:
        """Like :meth:`next_batch`, pre-rendered as trace-file lines.

        Rendering is memoised per distinct event — a stream repeats few
        letters many times — so load generators measuring the *service*
        (``repro send``, ``benchmarks/bench_wire.py``) pay formatting
        once per letter, not once per event.  The oracle still runs on
        the event objects, so verdicts are identical to
        :meth:`next_batch`.
        """
        lines = self._lines
        out = []
        for event in self.next_batch(n):
            line = lines.get(event)
            if line is None:
                line = lines[event] = tracefile.format_event(event)
            out.append(line)
        return out

    @property
    def expected_violation(self) -> int | None:
        return self._oracle.violation_index


@dataclass(frozen=True, slots=True)
class GeneratedStream:
    """One fully generated stream with its oracle verdict."""

    events: tuple[Event, ...]
    happy_events: int
    faults: dict[str, int]
    expected_violation: int | None


def generate_stream(
    compiled, *, events: int, faults: FaultSpec | None = None, seed=0
) -> GeneratedStream:
    """Generate one complete seeded stream (the one-shot convenience)."""
    session = StreamSession(compiled, faults, seed)
    emitted = session.next_batch(events)
    return GeneratedStream(
        tuple(emitted),
        session.happy_events,
        dict(session.fault_counts),
        session.expected_violation,
    )
