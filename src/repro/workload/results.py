"""Persisted run results: the ``BENCH_*.json`` schema and its writer.

Every persisted benchmark in this repository — workload runs and the
``benchmarks/bench_*.py`` harnesses alike — shares one JSON shape, so a
future re-anchor can diff perf trajectories without per-file parsers:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "name": "workload_pubsub_fanout",
      "created_unix": 1754700000.0,
      "params": {"scenario": "pubsub_fanout", "seed": 7, "...": "..."},
      "runs": [
        {
          "label": "faulted",
          "events": 1200,
          "seconds": 0.41,
          "events_per_sec": 2926.8,
          "latency": {"count": 1200, "mean_us": 11.2, "p50_us": 10.0,
                       "p90_us": 25.0, "p99_us": 100.0},
          "...": "run-specific keys (fault counts, oracle agreement)"
        }
      ]
    }

``params`` holds whatever identifies the run's configuration; ``runs``
is a list so one file can record fault-free and faulted passes side by
side.  Latency percentiles are *conservative upper estimates* read off
the metrics registry's fixed histogram buckets (the value reported for
quantile ``q`` is the upper bound of the bucket containing it).

``REPRO_BENCH_DIR`` opts any harness into persistence with one call
(:func:`maybe_write_bench`); unset, nothing is written.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = [
    "BENCH_SCHEMA",
    "percentiles_from_histogram",
    "latency_summary",
    "bench_payload",
    "write_bench_json",
    "maybe_write_bench",
]

BENCH_SCHEMA = "repro-bench/1"

#: Quantiles reported by :func:`latency_summary`.
LATENCY_QUANTILES = (0.5, 0.9, 0.99)


def percentiles_from_histogram(
    bounds: Sequence[float],
    counts: Sequence[int],
    qs: Iterable[float] = LATENCY_QUANTILES,
) -> dict[float, float]:
    """Quantile upper estimates from fixed-bucket counts.

    ``counts`` has one entry per bound plus a trailing overflow bucket
    (the :class:`repro.obs.registry.Histogram` layout).  The estimate
    for ``q`` is the upper bound of the bucket holding the ``q``-th
    observation; observations past the last bound clamp to it (the
    histogram records no finite upper edge for them).
    """
    total = sum(counts)
    out: dict[float, float] = {}
    top = float(bounds[-1]) if bounds else 0.0
    for q in qs:
        if total == 0:
            out[q] = 0.0
            continue
        rank = q * total
        cumulative = 0
        value = top
        for bound, n in zip(bounds, counts):
            cumulative += n
            if cumulative >= rank:
                value = float(bound)
                break
        out[q] = value
    return out

def latency_summary(hist) -> dict:
    """A BENCH-ready summary (µs) of one registry histogram."""
    ps = percentiles_from_histogram(hist.bounds, hist.counts)
    summary = {
        "count": hist.count,
        "mean_us": round(hist.mean * 1e6, 3),
    }
    for q, seconds in ps.items():
        summary[f"p{int(q * 100)}_us"] = round(seconds * 1e6, 3)
    return summary


def bench_payload(
    name: str,
    params: Mapping[str, object],
    runs: Sequence[Mapping[str, object]],
) -> dict:
    """The full ``repro-bench/1`` document for a named benchmark."""
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "created_unix": round(time.time(), 3),
        "params": dict(params),
        "runs": [dict(run) for run in runs],
    }


def write_bench_json(
    path: str | Path,
    name: str,
    params: Mapping[str, object],
    runs: Sequence[Mapping[str, object]],
) -> Path:
    """Write one BENCH document; ``path`` may be a directory or a file.

    A directory (existing, or a path with no ``.json`` suffix) receives
    the conventional file name ``BENCH_<name>.json``.
    """
    target = Path(path)
    if target.is_dir() or target.suffix != ".json":
        target.mkdir(parents=True, exist_ok=True)
        target = target / f"BENCH_{name}.json"
    target.write_text(
        json.dumps(bench_payload(name, params, runs), indent=2, sort_keys=False)
        + "\n"
    )
    return target


def maybe_write_bench(
    name: str,
    params: Mapping[str, object],
    runs: Sequence[Mapping[str, object]],
) -> Path | None:
    """Persist a BENCH document iff ``REPRO_BENCH_DIR`` is set.

    The one-call opt-in for existing benchmark harnesses: unset, it is
    a no-op, so interactive runs stay side-effect free.
    """
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if not out_dir:
        return None
    return write_bench_json(out_dir, name, params, runs)
