"""Workload subsystem: scenario corpus + fault-injecting stream driver.

The paper's online-monitoring payoff, exercised end to end (DESIGN.md
§12): realistic multiparty protocols from :mod:`repro.casestudies` are
packaged as :class:`~repro.workload.scenarios.Scenario` values; a seeded
generator walks their dense automata for happy-path traffic and injects
reorder/duplicate/drop faults while tracking an *oracle* of expected
violation positions; the runner drives the streams through the live
service and asserts the observed verdicts match — with results persisted
in the shared ``BENCH_*.json`` schema.

Modules:

* :mod:`~repro.workload.scenarios` — the protocol corpus with its
  refinement/composition claims wired into the checker law harness;
* :mod:`~repro.workload.generator` — seeded happy-path walks, fault
  injection, and the dense-stepping violation oracle;
* :mod:`~repro.workload.runner`    — session driving over the real
  client/server wire path, with obs spans and metrics;
* :mod:`~repro.workload.results`   — the ``repro-bench/1`` JSON schema
  shared by every persisted benchmark.
"""

from repro.workload.generator import (
    FaultSpec,
    GeneratedStream,
    StreamSession,
    generate_stream,
)
from repro.workload.results import (
    BENCH_SCHEMA,
    bench_payload,
    latency_summary,
    maybe_write_bench,
    percentiles_from_histogram,
    write_bench_json,
)
from repro.workload.runner import SessionOutcome, WorkloadReport, run_workload
from repro.workload.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    scenario_obligations,
)

__all__ = [
    "BENCH_SCHEMA",
    "FaultSpec",
    "GeneratedStream",
    "Scenario",
    "SessionOutcome",
    "StreamSession",
    "WorkloadReport",
    "all_scenarios",
    "bench_payload",
    "generate_stream",
    "get_scenario",
    "latency_summary",
    "maybe_write_bench",
    "percentiles_from_histogram",
    "run_workload",
    "scenario_obligations",
    "write_bench_json",
]
