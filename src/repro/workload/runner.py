"""Drive generated streams through the live service; check the oracle.

The runner is the workload subsystem's executable claim: *violations are
detected exactly where the theory says they must be*.  For each session
it generates a seeded, fault-injected stream (session ``i`` of a run
with seed ``S`` uses stream seed ``"S:i"``), computes the expected
violation position by independent dense stepping, feeds the stream to a
:class:`~repro.service.server.MonitorServer` through the real
:class:`~repro.service.client.MonitorClient` wire path, and compares the
service's ``STATUS`` verdict to the oracle.

By default the server is spun up in-process on an ephemeral port (the
hermetic mode tests and benchmarks use); pass ``port`` (and ``host``) to
drive an external ``repro serve --scenario`` instance instead — latency
percentiles are then read back over the wire from the server's
``METRICS`` Prometheus dump.

Instrumented with :mod:`repro.obs`: a ``workload.run`` span wrapping
per-session ``workload.session`` spans, plus counters for events sent,
injected faults by kind, expected/observed violations, and oracle
disagreements.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
import time
from dataclasses import dataclass

from repro.obs.registry import Histogram, get_registry
from repro.obs.trace import span
from repro.service.client import MonitorClient
from repro.workload.generator import FaultSpec, StreamSession
from repro.workload.results import latency_summary
from repro.workload.scenarios import Scenario, get_scenario

__all__ = ["SessionOutcome", "WorkloadReport", "run_workload"]

#: Per-event check latency family exposed by the service (see
#: :class:`repro.obs.metrics.ServiceMetrics`), parsed back in external mode.
_LATENCY_FAMILY = "repro_event_check_seconds"


@dataclass(frozen=True, slots=True)
class SessionOutcome:
    """One session's verdict versus its oracle."""

    session: int
    events_sent: int
    expected: int | None
    observed: int | None
    faults: dict[str, int]
    errors: int

    @property
    def agreed(self) -> bool:
        return self.errors == 0 and self.expected == self.observed


@dataclass(frozen=True, slots=True)
class WorkloadReport:
    """A full run: per-session outcomes plus throughput and latency."""

    scenario: str
    spec: str
    seed: int
    faults: FaultSpec
    sessions: tuple[SessionOutcome, ...]
    seconds: float
    latency: dict | None
    binary: bool = False
    kills: int = 0
    restarts: int = 0

    @property
    def events_total(self) -> int:
        return sum(s.events_sent for s in self.sessions)

    @property
    def events_per_sec(self) -> float:
        return self.events_total / self.seconds if self.seconds else 0.0

    @property
    def expected_violations(self) -> int:
        return sum(1 for s in self.sessions if s.expected is not None)

    @property
    def observed_violations(self) -> int:
        return sum(1 for s in self.sessions if s.observed is not None)

    @property
    def agreement(self) -> float:
        """Fraction of sessions whose verdict matched the oracle."""
        if not self.sessions:
            return 1.0
        return sum(1 for s in self.sessions if s.agreed) / len(self.sessions)

    @property
    def all_agree(self) -> bool:
        return all(s.agreed for s in self.sessions)

    def fault_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {"reorder": 0, "dup": 0, "drop": 0}
        for s in self.sessions:
            for kind, count in s.faults.items():
                totals[kind] += count
        return totals

    def run_record(self, label: str) -> dict:
        """This run as one ``runs[]`` entry of the BENCH schema."""
        return {
            "label": label,
            "wire": "binary" if self.binary else "text",
            "sessions": len(self.sessions),
            "events": self.events_total,
            "seconds": round(self.seconds, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "latency": self.latency,
            "faults": self.fault_counts(),
            "violations": {
                "expected": self.expected_violations,
                "observed": self.observed_violations,
                "agreement": round(self.agreement, 4),
            },
            "chaos": {"kills": self.kills, "restarts": self.restarts},
        }

    def describe(self) -> str:
        """A compact human-readable summary."""
        faults = self.fault_counts()
        wire = "binary" if self.binary else "text"
        lines = [
            f"{self.scenario} (spec {self.spec}, seed {self.seed}, "
            f"faults {self.faults.describe()}, {wire} wire)",
            f"  {len(self.sessions)} sessions, {self.events_total} events "
            f"in {self.seconds:.3f}s ({self.events_per_sec:,.0f} events/s)",
            f"  faults injected: reorder={faults['reorder']} "
            f"dup={faults['dup']} drop={faults['drop']}",
            f"  violations: expected {self.expected_violations}, observed "
            f"{self.observed_violations}; oracle agreement "
            f"{self.agreement:.0%}",
        ]
        if self.kills:
            lines.append(
                f"  chaos: killed {self.kills} worker(s), "
                f"restarts={self.restarts}"
            )
        if self.latency:
            lines.append(
                f"  check latency: p50={self.latency.get('p50_us')}µs "
                f"p90={self.latency.get('p90_us')}µs "
                f"p99={self.latency.get('p99_us')}µs"
            )
        for s in self.sessions:
            if not s.agreed:
                lines.append(
                    f"  DISAGREEMENT session {s.session}: expected "
                    f"{s.expected}, observed {s.observed} "
                    f"({s.errors} wire errors)"
                )
        return "\n".join(lines)


def _workload_counters():
    registry = get_registry()
    return {
        "events": registry.counter(
            "repro_workload_events_total",
            help="events sent by workload sessions",
        ),
        "sessions": registry.counter(
            "repro_workload_sessions_total", help="workload sessions driven"
        ),
        "expected": registry.counter(
            "repro_workload_expected_violations_total",
            help="sessions whose oracle predicted a violation",
        ),
        "observed": registry.counter(
            "repro_workload_observed_violations_total",
            help="sessions the service flagged as violated",
        ),
        "disagreements": registry.counter(
            "repro_workload_disagreements_total",
            help="sessions whose verdict differed from the oracle",
        ),
    }


def _fault_counter(kind: str):
    return get_registry().counter(
        "repro_workload_faults_total",
        labels={"kind": kind},
        help="faults injected into workload streams, by kind",
    )


def _histogram_from_prometheus(text: str, family: str) -> Histogram | None:
    """Rebuild one (unlabeled) histogram family from exposition text."""
    bounds: list[float] = []
    cumulative: list[int] = []
    count: int | None = None
    total = 0.0
    for line in text.splitlines():
        if line.startswith(f"{family}_bucket{{"):
            labels, _, value = line.partition(" ")
            le = labels.partition('le="')[2].partition('"')[0]
            if le == "+Inf":
                continue
            bounds.append(float(le))
            cumulative.append(int(float(value)))
        elif line.startswith(f"{family}_count"):
            count = int(float(line.rpartition(" ")[2]))
        elif line.startswith(f"{family}_sum"):
            total = float(line.rpartition(" ")[2])
    if count is None or not bounds:
        return None
    hist = Histogram(tuple(bounds))
    previous = 0
    counts = []
    for value in cumulative:
        counts.append(value - previous)
        previous = value
    counts.append(count - previous)
    hist.counts = counts
    hist.count = count
    hist.total = total
    return hist


async def _chaos_killer(
    server, kill_at: tuple[int, ...], clients: list, seed, record: dict
) -> None:
    """SIGKILL a seeded-random worker at each sent-events threshold.

    Watches the *client-side* send counters (the only vantage point that
    exists while a worker is dying) and leaves respawning to the
    server's supervisor; durable sessions then resume exactly-once.
    """
    rng = random.Random(f"{seed}:chaos")
    for threshold in sorted(kill_at):
        while sum(c.events_sent for c in clients) < threshold:
            await asyncio.sleep(0.01)
        index = rng.randrange(server.procs)
        server.kill_worker(index)
        record["kills"] += 1
        get_registry().counter(
            "repro_workload_kills_total",
            help="workers SIGKILLed by the chaos fault injector",
        ).inc()


async def _drive_session(
    index: int,
    host: str,
    port: int,
    scenario: Scenario,
    compiled,
    *,
    seed: int,
    faults: FaultSpec,
    events: int,
    duration: float | None,
    binary: bool,
    batch: int | None,
    counters,
    session_key: str | None = None,
    client_sink: list | None = None,
) -> SessionOutcome:
    stream = StreamSession(compiled, faults, seed=f"{seed}:{index}")
    errors = 0
    with span(
        "workload.session",
        scenario=scenario.name,
        session=index,
        binary=binary,
    ):
        client = MonitorClient(
            host,
            port,
            spec=scenario.monitored,
            proto=2 if binary else 1,
            session=session_key,
            **({"batch": batch} if batch is not None else {}),
        )
        await client.connect()
        if client_sink is not None:
            client_sink.append(client)
        try:
            deadline = (
                time.monotonic() + duration if duration is not None else None
            )
            while True:
                batch = stream.next_batch(events)
                for event in batch:
                    await client.send_event(event)
                if not batch:
                    break  # walk hit a dead end; the stream is complete
                if deadline is None or time.monotonic() >= deadline:
                    break
            status = await client.status()
            errors = status.errors
            observed = status.violation_index
        finally:
            await client.close()
    counters["sessions"].inc()
    counters["events"].inc(stream.events_emitted)
    for kind, count in stream.fault_counts.items():
        if count:
            _fault_counter(kind).inc(count)
    expected = stream.expected_violation
    if expected is not None:
        counters["expected"].inc()
    if observed is not None:
        counters["observed"].inc()
    outcome = SessionOutcome(
        session=index,
        events_sent=stream.events_emitted,
        expected=expected,
        observed=observed,
        faults=dict(stream.fault_counts),
        errors=errors,
    )
    if not outcome.agreed:
        counters["disagreements"].inc()
    return outcome


async def _run(
    scenario: Scenario,
    *,
    seed: int,
    faults: FaultSpec,
    sessions: int,
    events: int,
    duration: float | None,
    host: str | None,
    port: int | None,
    shards: int,
    history_limit: int | None,
    binary: bool,
    batch: int | None,
    procs: int | None,
    data_dir,
    durable: bool,
    kill_at: tuple[int, ...],
) -> WorkloadReport:
    registry = scenario.registry(history_limit=history_limit)
    compiled = registry.get(scenario.monitored)
    counters = _workload_counters()
    chaos = {"kills": 0, "restarts": 0}

    async def drive(
        target_host: str,
        target_port: int,
        metrics_source,
        chaos_server=None,
    ):
        clients: list = []
        started = time.monotonic()
        chaos_task = (
            asyncio.create_task(
                _chaos_killer(chaos_server, kill_at, clients, seed, chaos)
            )
            if chaos_server is not None and kill_at
            else None
        )
        try:
            outcomes = await asyncio.gather(
                *(
                    _drive_session(
                        i,
                        target_host,
                        target_port,
                        scenario,
                        compiled,
                        seed=seed,
                        faults=faults,
                        events=events,
                        duration=duration,
                        binary=binary,
                        batch=batch,
                        counters=counters,
                        session_key=(
                            f"{scenario.name}-{seed}:{i}" if durable else None
                        ),
                        client_sink=clients,
                    )
                    for i in range(sessions)
                )
            )
        finally:
            if chaos_task is not None:
                chaos_task.cancel()
                try:
                    await chaos_task
                except asyncio.CancelledError:
                    pass
        seconds = time.monotonic() - started
        latency = await metrics_source()
        if chaos_server is not None:
            chaos["restarts"] = chaos_server.restarts
        return WorkloadReport(
            scenario=scenario.name,
            spec=scenario.monitored,
            seed=seed,
            faults=faults,
            sessions=tuple(outcomes),
            seconds=seconds,
            latency=latency,
            binary=binary,
            kills=chaos["kills"],
            restarts=chaos["restarts"],
        )

    with span(
        "workload.run",
        scenario=scenario.name,
        seed=seed,
        sessions=sessions,
        faults=faults.describe(),
        binary=binary,
    ) as sp:
        if port is not None:
            target_host = host or "127.0.0.1"

            async def remote_latency():
                client = MonitorClient(target_host, port)
                await client.connect()
                try:
                    text = await client.metrics()
                finally:
                    await client.close()
                hist = _histogram_from_prometheus(text, _LATENCY_FAMILY)
                return latency_summary(hist) if hist is not None else None

            report = await drive(target_host, port, remote_latency)
        elif procs is not None and procs > 1:
            from repro.service.topology import ScaleOutServer

            async def no_latency():
                # Per-worker histograms live in N processes; percentile
                # aggregation across them is not meaningful here.
                return None

            with tempfile.TemporaryDirectory() as tmp:
                store = data_dir if data_dir is not None else (
                    tmp if durable or kill_at else None
                )
                async with ScaleOutServer(
                    scenario=scenario.name,
                    procs=procs,
                    shards=shards,
                    data_dir=store,
                    history_limit=history_limit,
                ) as server:
                    report = await drive(
                        "127.0.0.1", server.port, no_latency,
                        chaos_server=server,
                    )
        else:
            from repro.service.server import MonitorServer

            async def local_latency():
                hist = server.metrics.latency.get(scenario.monitored)
                return latency_summary(hist) if hist is not None else None

            with tempfile.TemporaryDirectory() as tmp:
                store = data_dir if data_dir is not None else (
                    tmp if durable else None
                )
                async with MonitorServer(
                    registry, shards=shards, data_dir=store
                ) as server:
                    report = await drive(
                        "127.0.0.1", server.port, local_latency
                    )
        sp.set(
            events=report.events_total,
            agreement=report.agreement,
            expected=report.expected_violations,
            observed=report.observed_violations,
        )
    return report


def run_workload(
    scenario_name: str,
    *,
    seed: int = 0,
    faults: FaultSpec | None = None,
    sessions: int = 4,
    events: int = 200,
    duration: float | None = None,
    host: str | None = None,
    port: int | None = None,
    shards: int = 4,
    history_limit: int | None = 4096,
    binary: bool = False,
    batch: int | None = None,
    procs: int | None = None,
    data_dir=None,
    durable: bool = False,
    kill_at: tuple[int, ...] = (),
) -> WorkloadReport:
    """Run one scenario workload and report oracle agreement.

    ``events`` is the happy-path batch size per session; with
    ``duration`` set, each session keeps streaming batches until the
    deadline passes.  ``port=None`` (the default) runs a hermetic
    in-process server with ``shards`` workers; otherwise the stream is
    driven at ``host:port``, which must be a ``repro serve`` instance
    with the scenario's specs registered (``repro serve --scenario``).

    ``binary=True`` drives the same streams over the proto=2 framing
    (clients request ``HELLO proto=2`` and ship ``EVENTS`` id batches of
    ``batch`` ids — the client default when ``None``); the oracle check
    is framing-independent, which is exactly what makes this runner the
    verdict-equivalence gate between the two wire paths.

    ``procs=N`` (N > 1) runs a hermetic
    :class:`~repro.service.topology.ScaleOutServer` instead of the
    in-process server.  ``durable=True`` gives session ``i`` the
    idempotency key ``"<scenario>-<seed>:i"`` (over ``data_dir``, or a
    run-scoped temporary directory); ``kill_at=(n, ...)`` then SIGKILLs
    a seeded-random worker each time the run's total sent-event count
    crosses ``n`` — the supervisor respawns it, durable clients resume,
    and the oracle check is the replay-correctness law: verdicts must
    match an uninterrupted run exactly.
    """
    scenario = get_scenario(scenario_name)
    return asyncio.run(
        _run(
            scenario,
            seed=seed,
            faults=faults if faults is not None else FaultSpec(),
            sessions=sessions,
            events=events,
            duration=duration,
            host=host,
            port=port,
            shards=shards,
            history_limit=history_limit,
            binary=binary,
            batch=batch,
            procs=procs,
            data_dir=data_dir,
            durable=durable,
            kill_at=tuple(kill_at),
        )
    )
