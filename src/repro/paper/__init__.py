"""The paper's worked examples and numbered claims, as library objects."""

from repro.paper.claims import build_obligations, lemma13_component, okflow_spec
from repro.paper.specs import CAST, PaperCast
from repro.paper.upgrade import UPGRADE, UpgradeCast

__all__ = [
    "CAST",
    "PaperCast",
    "UPGRADE",
    "UpgradeCast",
    "build_obligations",
    "lemma13_component",
    "okflow_spec",
]
