"""The claims registry: every numbered claim and worked example of the paper
as a machine-checked obligation.

``build_obligations()`` returns the full list; running it through a
:class:`~repro.checker.obligations.ProofSession` replays the paper's PVS
verification in this library (see ``examples/run_paper_claims.py``, which
renders the table recorded in EXPERIMENTS.md).

Positive claims (theorems, refinements the paper asserts) carry
``expected=True``; deliberate non-results the paper points out ("RW does
not refine Read2", "the conclusion of Theorem 16 fails without
properness") carry ``expected=False`` and *agree* when the checker refutes
them.
"""

from __future__ import annotations

from repro.checker.equality import specs_equal, trace_sets_equal
from repro.checker.laws import (
    law_lemma6,
    law_lemma13,
    law_lemma15,
    law_property5,
    law_property12,
    law_property17,
    law_theorem7,
    law_theorem16,
    law_theorem18,
)
from repro.checker.obligations import Obligation
from repro.checker.refinement import check_refinement
from repro.checker.result import CheckResult, Verdict
from repro.checker.universe import FiniteUniverse
from repro.core.alphabet import Alphabet
from repro.core.component import Component, SemanticObject
from repro.core.composition import compose
from repro.core.internal import InternalEvents
from repro.core.patterns import pattern
from repro.core.sorts import OBJ, Sort
from repro.core.specification import Specification, interface_spec
from repro.core.tracesets import MachineTraceSet
from repro.core.traces import Trace
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex
from repro.paper.specs import PaperCast
from repro.paper.upgrade import UpgradeCast

__all__ = ["build_obligations", "lemma13_component", "okflow_spec"]


def okflow_spec(cast: PaperCast) -> Specification:
    """A viewpoint of the client ``c``: it only ever emits OK to the monitor.

    The callee sort excludes the controller ``o`` so that the viewpoint
    stays composable with specifications of components containing ``o``
    (an OK sent *to o* would be internal there, Definition 10).
    """
    alpha = Alphabet.of(
        pattern(Sort.values(cast.c), OBJ.without(cast.c, cast.o), "OK")
    )
    regex = parse_regex(
        "[<c,mon,OK>]*",
        symbols={"c": cast.c, "mon": cast.mon},
        methods={"OK": ()},
    )
    return interface_spec("OKFlow", cast.c, alpha, PrsMachine(regex))


def lemma13_component(cast: PaperCast) -> Component:
    """A two-object semantic component: the controller ``o`` running the RW
    protocol and a client ``c`` that opens a write session, writes, closes,
    and then confirms to the monitor (a WriteAcc-compatible client, so the
    two protocols actually interact and the component produces OK traffic)."""
    o_sem = SemanticObject(cast.o, cast.rw().traces.machine())
    c_regex = parse_regex(
        "[<c,o,OW> <c,o,W(_)> <c,o,CW> <c,mon,OK>]*",
        symbols=cast.symbols(),
        methods=cast.methods,
    )
    c_sem = SemanticObject(cast.c, PrsMachine(c_regex))
    hint = cast.rw_alphabet().union(cast.client_alphabet())
    return Component((o_sem, c_sem), hint)


def build_obligations(
    cast: PaperCast | None = None,
    upgrade: UpgradeCast | None = None,
    env_objects: int = 2,
    data_values: int = 1,
) -> list[Obligation]:
    cast = cast or PaperCast()
    upgrade = upgrade or UpgradeCast()

    read, write = cast.read(), cast.write()
    read2, rw = cast.read2(), cast.rw()
    write_acc, client = cast.write_acc(), cast.client()
    client2, rw2 = cast.client2(), cast.rw2()
    server, upgraded = upgrade.server_spec(), upgrade.upgraded_spec()
    up_client, nosy = upgrade.client_spec(), upgrade.nosy_client_spec()

    def uni(*specs: Specification) -> FiniteUniverse:
        return FiniteUniverse.for_specs(
            *specs, env_objects=env_objects, data_values=data_values
        )

    obligations: list[Obligation] = []

    def add(ident, title, check, expected=True, source=""):
        obligations.append(Obligation(ident, title, check, expected, source))

    # -- worked examples ---------------------------------------------------

    def ex1():
        # Read and Write are well-formed Definition 1 specifications and
        # Write really serialises writers: an interleaved session is out.
        x1, x2 = Sort.base("Obj").without(cast.o).witnesses(2)
        bad = Trace.of(
            cast.ev(x1, cast.o, "OW"), cast.ev(x2, cast.o, "W", cast.d("v"))
        )
        good = Trace.of(
            cast.ev(x1, cast.o, "OW"),
            cast.ev(x1, cast.o, "W", cast.d("v")),
            cast.ev(x1, cast.o, "CW"),
        )
        ok = (
            read.admits(good.filter(read.alphabet))
            and write.admits(good)
            and not write.admits(bad)
        )
        return CheckResult(
            Verdict.PROVED if ok else Verdict.REFUTED,
            note="Write admits a full session and rejects an interleaved one",
        )

    add("EX1", "Example 1: Read/Write well-formed and discriminating", ex1,
        source="Example 1")
    add(
        "EX2",
        "Example 2: Read2 ⊑ Read (alphabet expansion)",
        lambda: check_refinement(read2, read, uni(read2, read)),
        source="Example 2",
    )
    add(
        "EX3a",
        "Example 3: RW ⊑ Read",
        lambda: check_refinement(rw, read, uni(rw, read)),
        source="Example 3",
    )
    add(
        "EX3b",
        "Example 3: RW ⊑ Write",
        lambda: check_refinement(rw, write, uni(rw, write)),
        source="Example 3",
    )
    add(
        "EX3c",
        "Example 3: RW ⊑ Read2 fails (reads during write access)",
        lambda: check_refinement(rw, read2, uni(rw, read2)),
        expected=False,
        source="Example 3",
    )

    def ex4():
        comp = compose(client, write_acc)
        ok_ev = cast.ev(cast.c, cast.mon, "OK")
        # T(Client‖WriteAcc) = {h | h prs ⟨c,o',OK⟩*}: check as trace-set
        # equality against a spec with exactly that trace set.
        machine = PrsMachine(
            parse_regex(
                "[<c,mon,OK>]*",
                symbols={"c": cast.c, "mon": cast.mon},
                methods={"OK": ()},
            )
        )
        oracle = Specification(
            "OKOracle",
            comp.objects,
            comp.alphabet,
            MachineTraceSet(comp.alphabet, machine),
        )
        return trace_sets_equal(comp, oracle, uni(client, write_acc))

    add("EX4", "Example 4: T(Client‖WriteAcc) = prefixes of ⟨c,o',OK⟩*", ex4,
        source="Example 4")

    def ex5():
        comp = compose(client2, write_acc)
        machine = PrsMachine(
            parse_regex(
                "[<c,mon,OK>]?",
                symbols={"c": cast.c, "mon": cast.mon},
                methods={"OK": ()},
            )
        )
        oracle = Specification(
            "EpsOracle",
            comp.objects,
            comp.alphabet,
            MachineTraceSet(comp.alphabet, machine),
        )
        # T(Client2‖WriteAcc) = {ε}: equal to the trace set containing only
        # the empty trace — i.e. strictly smaller than even one OK.
        u = uni(client2, write_acc)
        eq = trace_sets_equal(comp, oracle, u)
        if eq.holds:
            return CheckResult(
                Verdict.REFUTED, note="composition admits an OK; no deadlock"
            )
        # the distinguishing trace must be the single OK (present in the
        # oracle, absent from the deadlocked composition)
        cex = eq.counterexample
        if cex is not None and len(cex) == 1 and not comp.admits(cex):
            return CheckResult(
                Verdict.PROVED,
                note="composition admits only ε (deadlock introduced by "
                "refining Client into Client2)",
            )
        return CheckResult(Verdict.UNKNOWN, note=f"unexpected witness {cex}")

    add("EX5", "Example 5: Client2‖WriteAcc deadlocks (T = {ε})", ex5,
        source="Example 5")
    add(
        "EX6a",
        "Example 6: RW2 ⊑ WriteAcc",
        lambda: check_refinement(rw2, write_acc, uni(rw2, write_acc)),
        source="Example 6",
    )
    add(
        "EX6b",
        "Example 6: RW2 ⊑ RW",
        lambda: check_refinement(rw2, rw, uni(rw2, rw)),
        source="Example 6",
    )
    add(
        "EX6c",
        "Example 6: T(RW2‖Client) = T(WriteAcc‖Client)",
        lambda: trace_sets_equal(
            compose(rw2, client), compose(write_acc, client),
            uni(rw2, write_acc, client),
        ),
        source="Example 6",
    )

    # -- Figure 1 -----------------------------------------------------------

    def fig1():
        # Two partial interface specs of o1 and o2; events between the two
        # objects exist that are in F only, in G only, and in neither —
        # all are hidden by composition.
        o1, o2 = server.the_object(), up_client.the_object()
        comp = compose(server, up_client)
        internal = InternalEvents.square({o1, o2})
        w = comp.alphabet.internal_witness(internal)
        if w is not None:
            return CheckResult(
                Verdict.REFUTED,
                note=f"internal event {w} survived hiding",
            )
        return CheckResult(
            Verdict.PROVED,
            note="all o1↔o2 events hidden, including those outside both "
            "alphabets",
        )

    add("FIG1", "Figure 1: composition hides all events between the objects",
        fig1, source="Figure 1")

    # -- numbered claims -----------------------------------------------------

    add("P5", "Property 5: Γ‖Γ = Γ (idempotent self-composition)",
        lambda: law_property5(write, uni(write)), source="Property 5")
    add(
        "L6",
        "Lemma 6: Γ₁‖Γ₂ is the weakest common refinement",
        lambda: law_lemma6(read, write, uni(read, write, rw), candidates=(rw,)),
        source="Lemma 6",
    )
    add(
        "T7",
        "Theorem 7: compositional refinement (interfaces)",
        lambda: law_theorem7(write, write_acc, client, uni(write, write_acc, client)),
        source="Theorem 7",
    )
    add(
        "P12",
        "Property 12: ‖ commutative and associative",
        lambda: law_property12(
            write_acc, client, okflow_spec(cast),
            uni(write_acc, client, okflow_spec(cast)),
        ),
        source="Property 12",
    )
    def l13():
        from repro.checker.soundness import universe_for_component

        comp = lemma13_component(cast)
        okf = okflow_spec(cast)
        # One fresh environment object keeps the ε-erasing subset
        # construction small; the claim is insensitive to further growth
        # (the component's members never talk to fresh objects).
        u = universe_for_component(comp, okf, write, env_objects=1)
        return law_lemma13(okf, write, comp, u)

    add("L13", "Lemma 13: composition preserves soundness", l13,
        source="Lemma 13")
    add(
        "L15",
        "Lemma 15: hiding stability under properness",
        lambda: law_lemma15(server, upgraded, up_client),
        source="Lemma 15",
    )
    add(
        "T16",
        "Theorem 16: compositional refinement (components)",
        lambda: law_theorem16(server, upgraded, up_client,
                              uni(server, upgraded, up_client)),
        source="Theorem 16",
    )
    add(
        "T16n",
        "Theorem 16 conclusion fails without properness",
        lambda: check_refinement(
            compose(upgraded, nosy), compose(server, nosy),
            uni(server, upgraded, nosy),
        ),
        expected=False,
        source="Definition 14 discussion",
    )
    add(
        "P17",
        "Property 17: composability preserved without new objects",
        lambda: law_property17(write, write_acc, client),
        source="Property 17",
    )
    add(
        "T18",
        "Theorem 18: compositional refinement without new objects",
        lambda: law_theorem18(write, write_acc, client,
                              uni(write, write_acc, client)),
        source="Theorem 18",
    )

    return obligations
