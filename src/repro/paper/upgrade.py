"""A component-upgrade scenario exercising Sections 6–7.

The paper's component-level results (composability, properness,
Theorems 16/18) need refinements that *add objects* — the paper motivates
them with functionality upgrades of components in open distributed
systems.  The worked examples of Section 8 stay with interface
specifications, so this module supplies the missing concrete instances:

* ``server_spec``  (Γ)  — a request/acknowledge server ``s``;
* ``upgraded_spec`` (Γ') — the server refined into a two-object component
  ``{s, b}`` with an internal backend ``b`` and a new ``STATUS`` method —
  alphabet expansion *and* object addition in one refinement step;
* ``client_spec``  (Δ)  — a client ``d`` of the server, whose alphabet
  mentions only ``s`` (so the upgrade is *proper* w.r.t. Δ);
* ``nosy_client_spec`` (Δ̄) — a client whose alphabet accepts ``ACK`` from
  *any* object, which makes the upgrade improper: composing hides the
  ``⟨b,d,ACK⟩`` events that Δ̄ could see, and compositional refinement
  genuinely fails (the paper's motivation for Definition 14).
"""

from __future__ import annotations

from repro.core.alphabet import Alphabet
from repro.core.patterns import pattern
from repro.core.sorts import DATA, OBJ, Sort
from repro.core.specification import Specification, component_spec, interface_spec
from repro.core.values import ObjectId, obj
from repro.machines.boolean import AndMachine
from repro.machines.counting import (
    CondAnd,
    CountingMachine,
    Linear,
    difference_counter,
)
from repro.machines.quantifier import ForallMachine
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex

__all__ = ["UpgradeCast", "UPGRADE"]


class UpgradeCast:
    """Objects and specifications of the upgrade scenario."""

    def __init__(self) -> None:
        self.s: ObjectId = obj("s")
        self.b: ObjectId = obj("b")
        self.d: ObjectId = obj("d")

    # -- alphabets -----------------------------------------------------------

    def server_alphabet(self) -> Alphabet:
        # The backend identity b is *fresh*: Section 3 notes that objects
        # added by a refinement cannot be in the communication environment
        # of the abstract specification, so the abstract alphabet already
        # excludes b (the paper's "new command" reading of fresh ids).
        env = OBJ.without(self.s, self.b)
        srv = Sort.values(self.s)
        return Alphabet.of(
            pattern(env, srv, "REQ", DATA),
            pattern(srv, env, "ACK"),
        )

    def upgraded_alphabet(self) -> Alphabet:
        # b is encapsulated: s↔b events are internal and may not appear in
        # the alphabet (Definition 1); the upgrade adds the STATUS method.
        env = OBJ.without(self.s, self.b)
        srv = Sort.values(self.s)
        return Alphabet.of(
            pattern(env, srv, "REQ", DATA),
            pattern(srv, env, "ACK"),
            pattern(env, srv, "STATUS"),
        )

    # -- specifications --------------------------------------------------------

    def server_spec(self) -> Specification:
        """Γ: each caller alternates REQ and ACK."""
        env = OBJ.without(self.s, self.b)
        body = parse_regex(
            "[<x,s,REQ(_)> <s,x,ACK>]*",
            symbols={"s": self.s},
            methods={"REQ": (DATA,), "ACK": ()},
            free_vars={"x": env},
        )
        machine = ForallMachine(
            env, lambda v: PrsMachine(body, free_env={"x": v})
        )
        return interface_spec("Server", self.s, self.server_alphabet(), machine)

    def upgraded_spec(self) -> Specification:
        """Γ': the two-object upgrade, stricter and with a new method.

        Keeps the per-caller REQ/ACK alternation, adds STATUS (allowed at
        any time), and promises at most one globally outstanding request —
        a genuine behavioural restriction made possible by the internal
        backend serialising the work.
        """
        env = OBJ.without(self.s, self.b)
        body = parse_regex(
            "[[<x,s,REQ(_)> <s,x,ACK>]* <x,s,STATUS>*]*",
            symbols={"s": self.s},
            methods={"REQ": (DATA,), "ACK": (), "STATUS": ()},
            free_vars={"x": env},
        )
        per_caller = ForallMachine(
            env, lambda v: PrsMachine(body, free_env={"x": v})
        )
        outstanding = CountingMachine(
            (difference_counter("REQ", "ACK"),),
            CondAnd(
                (
                    Linear((1,), -1, "<="),  # REQ − ACK ≤ 1
                    Linear((-1,), 0, "<="),  # REQ − ACK ≥ 0
                )
            ),
        )
        return component_spec(
            "UpgradedServer",
            (self.s, self.b),
            self.upgraded_alphabet(),
            AndMachine((per_caller, outstanding)),
        )

    def client_spec(self) -> Specification:
        """Δ: a client of ``s`` only — the upgrade is proper w.r.t. it."""
        regex = parse_regex(
            "[<d,s,REQ(_)> <s,d,ACK>]*",
            symbols={"d": self.d, "s": self.s},
            methods={"REQ": (DATA,), "ACK": ()},
        )
        cli = Sort.values(self.d)
        srv = Sort.values(self.s)
        alpha = Alphabet.of(
            pattern(cli, srv, "REQ", DATA),
            pattern(srv, cli, "ACK"),
            # an infinite tail keeping Definition 1 happy: d may ping any
            # environment object except the (future) backend's namespace —
            # concretely, everything except itself.
            pattern(cli, OBJ.without(self.d, self.s, self.b), "PING"),
        )
        return interface_spec("UpClient", self.d, alpha, PrsMachine(regex))

    def nosy_client_spec(self) -> Specification:
        """Δ̄: accepts ACK from anyone — breaks properness of the upgrade.

        The acknowledger is rebound per iteration (the paper's binding
        operator), so each request may be answered by a different object.
        """
        regex = parse_regex(
            "[<d,s,REQ(_)> [<y,d,ACK>] . y : Others]*",
            symbols={"d": self.d, "s": self.s, "Others": OBJ.without(self.d)},
            methods={"REQ": (DATA,), "ACK": ()},
        )
        cli = Sort.values(self.d)
        alpha = Alphabet.of(
            pattern(cli, Sort.values(self.s), "REQ", DATA),
            pattern(OBJ.without(self.d), cli, "ACK"),
        )
        return interface_spec("NosyClient", self.d, alpha, PrsMachine(regex))


#: Shared instance for tests, benches, and the claims registry.
UPGRADE = UpgradeCast()
