"""The paper's specifications (Examples 1–6) as library objects.

The cast of characters:

* ``o``  — the read/write access controller (Examples 1–3, 6),
* ``c``  — the write client (Examples 4–6),
* ``mon`` — the monitor object ``o'`` receiving ``OK`` confirmations,
* ``Objects`` — the environment sort of each specification (``Obj`` minus
  the specification's own objects),
* ``Data`` — the data sort carried by ``R``/``W`` parameters.

Every function returns a fresh :class:`~repro.core.specification.Specification`
(machines are stateless between runs, but sharing machine *instances*
across tests could share liveness caches; fresh objects keep benchmarks
honest).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.alphabet import Alphabet
from repro.core.events import Event, call
from repro.core.patterns import pattern
from repro.core.sorts import DATA, OBJ, Sort
from repro.core.specification import Specification, interface_spec
from repro.core.values import DataVal, ObjectId, obj
from repro.machines.boolean import AndMachine
from repro.machines.counting import (
    CondAnd,
    CondOr,
    CountingMachine,
    Linear,
    difference_counter,
)
from repro.machines.projection import OnlyMachine
from repro.machines.quantifier import ForallMachine
from repro.machines.regex.machine import PrsMachine
from repro.machines.regex.parse import parse_regex

__all__ = ["PaperCast", "CAST"]


@dataclass(frozen=True)
class PaperCast:
    """Object identities and sorts shared by the paper's examples."""

    o: ObjectId = field(default_factory=lambda: obj("o"))
    c: ObjectId = field(default_factory=lambda: obj("c"))
    mon: ObjectId = field(default_factory=lambda: obj("o'"))

    # -- sorts -------------------------------------------------------------

    @property
    def objects_of_o(self) -> Sort:
        """``Objects``: the environment of ``o`` (Obj minus o)."""
        return OBJ.without(self.o)

    @property
    def objects_of_c(self) -> Sort:
        """The environment of the client ``c``."""
        return OBJ.without(self.c)

    # -- event helpers -------------------------------------------------------

    def ev(self, caller: ObjectId, callee: ObjectId, method: str, *args) -> Event:
        return call(caller, callee, method, *args)

    def d(self, label: str) -> DataVal:
        return DataVal("Data", label)

    # -- method signature table (for the regex parser) -----------------------

    @property
    def methods(self) -> dict[str, tuple[Sort, ...]]:
        return {
            "R": (DATA,),
            "W": (DATA,),
            "OR": (),
            "CR": (),
            "OW": (),
            "CW": (),
            "OK": (),
        }

    def symbols(self) -> dict:
        return {
            "o": self.o,
            "c": self.c,
            "mon": self.mon,
            "Objects": self.objects_of_o,
            "Data": DATA,
        }

    # ------------------------------------------------------------------
    # Example 1: Read and Write
    # ------------------------------------------------------------------

    def read(self) -> Specification:
        """``Read``: concurrent read access, unconstrained trace set."""
        alpha = Alphabet.of(
            pattern(self.objects_of_o, Sort.values(self.o), "R", DATA)
        )
        return interface_spec("Read", self.o, alpha)

    def write_alphabet(self) -> Alphabet:
        env, srv = self.objects_of_o, Sort.values(self.o)
        return Alphabet.of(
            pattern(env, srv, "OW"),
            pattern(env, srv, "CW"),
            pattern(env, srv, "W", DATA),
        )

    def write(self) -> Specification:
        """``Write``: exclusive write sessions per caller (binding operator)."""
        regex = parse_regex(
            "[[<x,o,OW> <x,o,W(_)>* <x,o,CW>] . x : Objects]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return interface_spec(
            "Write", self.o, self.write_alphabet(), PrsMachine(regex)
        )

    # ------------------------------------------------------------------
    # Example 2: Read2 (refines Read with alphabet expansion)
    # ------------------------------------------------------------------

    def read2_alphabet(self) -> Alphabet:
        env, srv = self.objects_of_o, Sort.values(self.o)
        return Alphabet.of(
            pattern(env, srv, "OR"),
            pattern(env, srv, "CR"),
            pattern(env, srv, "R", DATA),
        )

    def read2(self) -> Specification:
        """``Read2``: per-caller read sessions, concurrency allowed."""
        body = parse_regex(
            "[<x,o,OR> <x,o,R(_)>* <x,o,CR>]*",
            symbols=self.symbols(),
            methods=self.methods,
            free_vars={"x": self.objects_of_o},
        )
        machine = ForallMachine(
            self.objects_of_o,
            lambda v: PrsMachine(body, free_env={"x": v}),
        )
        return interface_spec("Read2", self.o, self.read2_alphabet(), machine)

    # ------------------------------------------------------------------
    # Example 3: RW (merges Write and Read2)
    # ------------------------------------------------------------------

    def rw_alphabet(self) -> Alphabet:
        return self.write_alphabet().union(self.read2_alphabet())

    def prw1_machine(self) -> ForallMachine:
        """``P_RW1``: ∀x : h/x prs [OW [W|R]* CW | OR R* CR]*."""
        body = parse_regex(
            "[OW [W | R]* CW | OR R* CR]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return ForallMachine(
            self.objects_of_o, lambda v: PrsMachine(body)
        )

    def prw2_machine(self) -> CountingMachine:
        """``P_RW2``: no open writer with open readers; at most one writer.

        Difference counters ``(OW−CW, OR−CR)``; condition
        ``(OW−CW = 0 ∨ OR−CR = 0) ∧ OW−CW ≤ 1``.  Differences (rather than
        raw totals) keep the reachable state space finite in conjunction
        with ``P_RW1``, enabling exact DFA compilation.
        """
        return CountingMachine(
            (
                difference_counter("OW", "CW"),
                difference_counter("OR", "CR"),
            ),
            CondAnd(
                (
                    CondOr(
                        (
                            Linear((1, 0), 0, "=="),
                            Linear((0, 1), 0, "=="),
                        )
                    ),
                    Linear((1, 0), -1, "<="),
                )
            ),
        )

    def rw(self) -> Specification:
        """``RW``: exclusive write access, shared read access."""
        machine = AndMachine((self.prw1_machine(), self.prw2_machine()))
        return interface_spec("RW", self.o, self.rw_alphabet(), machine)

    # ------------------------------------------------------------------
    # Example 4: WriteAcc and Client
    # ------------------------------------------------------------------

    def write_acc(self) -> Specification:
        """``WriteAcc``: Write with calls restricted to the client ``c``."""
        regex = parse_regex(
            "[<c,o,OW> <c,o,W(_)>* <c,o,CW>]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return interface_spec(
            "WriteAcc", self.o, self.write_alphabet(), PrsMachine(regex)
        )

    def client_alphabet(self) -> Alphabet:
        cli, env = Sort.values(self.c), self.objects_of_c
        return Alphabet.of(
            pattern(cli, env, "W", DATA),
            pattern(cli, env, "OK"),
        )

    def client(self) -> Specification:
        """``Client``: write then confirm to the monitor, repeatedly.

        ``Reg = ⟨c,o,W(_)⟩ ⟨c,o',OK⟩``; trace set ``h prs Reg*``.
        """
        regex = parse_regex(
            "[<c,o,W(_)> <c,mon,OK>]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return interface_spec(
            "Client", self.c, self.client_alphabet(), PrsMachine(regex)
        )

    # ------------------------------------------------------------------
    # Example 5: Client2 (introduces deadlock through refinement)
    # ------------------------------------------------------------------

    def client2(self) -> Specification:
        """``Client2``: Client with OW *after* the write — wrong order."""
        alpha = self.client_alphabet().union(
            Alphabet.of(
                pattern(Sort.values(self.c), Sort.values(self.o), "OW")
            )
        )
        regex = parse_regex(
            "[<c,o,W(_)> <c,mon,OK> <c,o,OW>]*",
            symbols=self.symbols(),
            methods=self.methods,
        )
        return interface_spec("Client2", self.c, alpha, PrsMachine(regex))

    # ------------------------------------------------------------------
    # Example 6: RW2 (RW restricted to the unique client c)
    # ------------------------------------------------------------------

    def rw2(self) -> Specification:
        """``RW2``: RW plus the restriction ``h/c = h``."""

        def involves_c(e: Event) -> bool:
            return e.involves(self.c)

        machine = AndMachine(
            (
                self.prw1_machine(),
                self.prw2_machine(),
                OnlyMachine(involves_c),
            )
        )
        return interface_spec("RW2", self.o, self.rw_alphabet(), machine)


#: A default, shared cast for examples and tests.
CAST = PaperCast()
