"""The incremental build graph: fingerprint-keyed pipeline stages.

One :class:`SpecPipeline` owns a memo table per stage:

========== ============================================= ==============
stage      memo key                                      produces
========== ============================================= ==============
parse      SHA-256 of the document text                  ``Document``
elaborate  spec node key (AST + scope signature)         raw spec
normalize  ``(node key, normalization toggle)``          canonical spec
compile    node key (recorded by the registry/cache)     machine/image
========== ============================================= ==============

Compositions are folded by the elaborate stage, keyed through their
parts' keys (``composition_node_key``), so an edit to one spec in a
three-spec document re-runs exactly that spec's elaborate/normalize —
everything else is a stage hit.  The normalize memo carries the ambient
:func:`~repro.passes.use_normalization` toggle in its key because the
toggle changes the stage's output.

A :class:`SpecPipeline` produces byte-for-byte the same specifications
as the monolithic :func:`repro.oun.elaborate.elaborate`, including
error parity on redeclarations and unknown composition parts (checked
on every load; only the expensive work is memoized).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import OUNElaborationError
from repro.core.specification import Specification, component_spec
from repro.core.tracesets import MachineTraceSet
from repro.machines.boolean import TrueMachine
from repro.obs.registry import get_registry
from repro.obs.trace import span
from repro.oun.elaborate import (
    document_scope,
    elaborate_composition,
    elaborate_spec_decl,
)
from repro.oun.identity import (
    composition_node_key,
    parse_key,
    scope_signature,
    spec_node_key,
)
from repro.oun.parser import Document, parse_document
from repro.passes import normalization_enabled, normalize_machine

__all__ = [
    "STAGES",
    "DocumentBuild",
    "SpecBuild",
    "SpecPipeline",
    "normalize_component",
    "record_stage",
    "reset_shared_pipeline",
    "shared_pipeline",
    "stage_counts",
]

#: The build graph's stages, in dependency order.  ``compile`` is
#: recorded by the service registry (interned machines, dense images);
#: the first three are recorded here.
STAGES = ("parse", "elaborate", "normalize", "compile")

_HITS = "repro_pipeline_stage_hits_total"
_MISSES = "repro_pipeline_stage_misses_total"
_HELP = "Incremental build graph stage memo outcomes, by stage."


def record_stage(stage: str, hit: bool, n: int = 1) -> None:
    """Count one memo outcome for *stage* in the shared registry."""
    name = _HITS if hit else _MISSES
    get_registry().counter(name, labels=(("stage", stage),), help=_HELP).inc(n)


def stage_counts() -> dict[tuple[str, str], int]:
    """Current ``{(stage, "hit"|"miss"): count}`` — test/bench helper."""
    registry = get_registry()
    out: dict[tuple[str, str], int] = {}
    for stage in STAGES:
        labels = (("stage", stage),)
        out[(stage, "hit")] = registry.counter(_HITS, labels, help=_HELP).value
        out[(stage, "miss")] = registry.counter(
            _MISSES, labels, help=_HELP
        ).value
    return out


def normalize_component(spec: Specification) -> Specification:
    """The normalize stage: canonicalize one raw elaborated spec.

    Mirrors the tail of :func:`repro.oun.elaborate.elaborate_spec_decl`
    with ``normalize=True``: machine normalization (respecting the
    ambient toggle) plus the ``TrueMachine`` → machineless collapse.
    """
    traces = spec.traces
    if not isinstance(traces, MachineTraceSet):
        return spec
    machine = normalize_machine(traces.predicate)
    if isinstance(machine, TrueMachine):
        return component_spec(spec.name, spec.objects, spec.alphabet)
    if machine is traces.predicate:
        return spec
    return component_spec(spec.name, spec.objects, spec.alphabet, machine)


@dataclass(frozen=True, slots=True)
class SpecBuild:
    """One named node's build outcome."""

    name: str
    key: str
    specification: Specification
    #: True when every stage that ran for this node was a memo hit.
    reused: bool


@dataclass(frozen=True, slots=True)
class DocumentBuild:
    """A whole document's build: the AST plus every node, in order."""

    document: Document
    builds: tuple[SpecBuild, ...]

    def specifications(self) -> dict[str, Specification]:
        """Name → spec in declaration order (``elaborate()`` parity)."""
        return {b.name: b.specification for b in self.builds}

    def keys(self) -> dict[str, str]:
        """Name → stable node key, for the compile stage's memo."""
        return {b.name: b.key for b in self.builds}


class SpecPipeline:
    """Memoizing pipeline instance.  Not thread-safe; share per process
    via :func:`shared_pipeline` (the service and CLI do)."""

    def __init__(self) -> None:
        self._parsed: dict[str, Document] = {}
        self._elaborated: dict[str, Specification] = {}
        self._normalized: dict[tuple[str, bool], Specification] = {}
        self._composed: dict[tuple[str, bool], Specification] = {}

    # -- stages ----------------------------------------------------------

    def load(self, text: str) -> DocumentBuild:
        """Parse (memoized) and build a document from source text."""
        with span("pipeline.load"):
            key = parse_key(text)
            doc = self._parsed.get(key)
            if doc is None:
                record_stage("parse", hit=False)
                with span("pipeline.parse"):
                    doc = parse_document(text)
                self._parsed[key] = doc
            else:
                record_stage("parse", hit=True)
            return self.build(doc)

    def build(self, doc: Document) -> DocumentBuild:
        """Elaborate + normalize every node, reusing unchanged stages."""
        signature = scope_signature(doc)
        scope = document_scope(doc)
        norm = normalization_enabled()
        out: dict[str, Specification] = {}
        keys: dict[str, object] = {}
        builds: list[SpecBuild] = []

        for decl in doc.specifications:
            if decl.name in out:
                raise OUNElaborationError(
                    f"specification {decl.name!r} redeclared"
                )
            key = spec_node_key(signature, decl)
            raw = self._elaborated.get(key)
            elaborate_hit = raw is not None
            record_stage("elaborate", hit=elaborate_hit)
            if raw is None:
                with span("pipeline.elaborate", name=decl.name):
                    raw = elaborate_spec_decl(scope, decl, normalize=False)
                self._elaborated[key] = raw
            norm_key = (key, norm)
            spec = self._normalized.get(norm_key)
            normalize_hit = spec is not None
            record_stage("normalize", hit=normalize_hit)
            if spec is None:
                with span("pipeline.normalize", name=decl.name):
                    spec = normalize_component(raw)
                self._normalized[norm_key] = spec
            out[decl.name] = spec
            keys[decl.name] = key
            builds.append(
                SpecBuild(decl.name, key, spec, elaborate_hit and normalize_hit)
            )

        for comp in doc.compositions:
            if comp.name in out:
                raise OUNElaborationError(
                    f"composition {comp.name!r} redeclares an existing name"
                )
            # unknown-part parity with elaborate(): check on every load,
            # even when the fold itself is a memo hit.
            for part_name in comp.parts:
                if part_name not in out:
                    raise OUNElaborationError(
                        f"composition {comp.name!r}: unknown specification "
                        f"{part_name!r}"
                    )
            part_keys = tuple(keys[name] for name in comp.parts)
            ckey = composition_node_key(signature, comp, part_keys)
            comp_key = (ckey, norm)
            spec = self._composed.get(comp_key)
            hit = spec is not None
            # compositions fold already-normalized parts: one stage,
            # counted under "elaborate".
            record_stage("elaborate", hit=hit)
            if spec is None:
                with span("pipeline.compose", name=comp.name):
                    spec = elaborate_composition(out, comp)
                self._composed[comp_key] = spec
            out[comp.name] = spec
            keys[comp.name] = ckey
            builds.append(SpecBuild(comp.name, ckey, spec, hit))

        return DocumentBuild(doc, tuple(builds))

    # -- maintenance -----------------------------------------------------

    def clear(self) -> None:
        """Drop every memo table (bench cold-path helper)."""
        self._parsed.clear()
        self._elaborated.clear()
        self._normalized.clear()
        self._composed.clear()

    def sizes(self) -> dict[str, int]:
        """Memo table sizes, for introspection and tests."""
        return {
            "parse": len(self._parsed),
            "elaborate": len(self._elaborated),
            "normalize": len(self._normalized),
            "compose": len(self._composed),
        }


_SHARED: SpecPipeline | None = None


def shared_pipeline() -> SpecPipeline:
    """The process-wide pipeline (what the registry and CLI use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = SpecPipeline()
    return _SHARED


def reset_shared_pipeline() -> None:
    """Forget the shared pipeline (test/bench isolation)."""
    global _SHARED
    _SHARED = None
