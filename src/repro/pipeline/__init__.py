"""Incremental build graph over the OUN compilation path.

``repro.pipeline`` models the spec lifecycle — parse → elaborate →
normalize → compile — as fingerprint-keyed stages.  Re-loading an
edited document re-runs only the stages whose *inputs* changed: node
identity comes from :mod:`repro.oun.identity` (AST fingerprints, not
machine content, because elaborated machines wrap closures), and each
stage keeps a memo table hit before any work is done.

The compile stage lives in :mod:`repro.service.registry` (machine
interning + dense images) and :mod:`repro.checker.compile` (the
on-disk DFA cache of PR 2); both report their reuse through
:func:`record_stage` so the whole graph shares one counter family,
``repro_pipeline_stage_{hits,misses}_total{stage=…}``.

See ``docs/architecture.md`` for where the layer sits.
"""

from repro.pipeline.build import (
    DocumentBuild,
    SpecBuild,
    SpecPipeline,
    normalize_component,
    record_stage,
    reset_shared_pipeline,
    shared_pipeline,
    stage_counts,
)

__all__ = [
    "DocumentBuild",
    "SpecBuild",
    "SpecPipeline",
    "normalize_component",
    "record_stage",
    "reset_shared_pipeline",
    "shared_pipeline",
    "stage_counts",
]
