"""Object behaviours for the runtime simulator.

The paper's setting is an open distributed system: objects run in
parallel, communicate by remote method calls, and exchange object
identities; the observable life of an object is its event trace.  A
:class:`Behavior` is the *implementation* side of that story — a reactive
program deciding which remote calls an object makes, either in response
to an incoming call (:meth:`on_event`) or spontaneously when scheduled
(:meth:`on_tick`).

Behaviours are pure state transformers over explicit state values, so runs
are reproducible given the scheduler seed.
"""

from __future__ import annotations

import random
from abc import ABC
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.events import Event
from repro.core.values import ObjectId, Value

__all__ = [
    "Call",
    "Behavior",
    "PassiveBehavior",
    "ScriptedBehavior",
    "LoopBehavior",
]


@dataclass(frozen=True, slots=True)
class Call:
    """An outgoing remote method call requested by a behaviour."""

    callee: ObjectId
    method: str
    args: tuple[Value, ...] = ()


class Behavior(ABC):
    """Base class; the defaults make an object completely passive."""

    def init_state(self) -> Hashable:
        return ()

    def on_event(
        self, state: Hashable, event: Event, me: ObjectId
    ) -> tuple[Hashable, Sequence[Call]]:
        """React to an event involving this object (as caller or callee)."""
        return state, ()

    def on_tick(
        self, state: Hashable, rng: random.Random, me: ObjectId
    ) -> tuple[Hashable, Sequence[Call]]:
        """Spontaneous activity when the scheduler gives this object a turn."""
        return state, ()


class PassiveBehavior(Behavior):
    """Receives calls, never makes any (e.g. the access controller ``o``)."""


class ScriptedBehavior(Behavior):
    """Emits a fixed sequence of calls, one per tick, then stays quiet."""

    def __init__(self, script: Sequence[Call]) -> None:
        self.script = tuple(script)

    def init_state(self) -> Hashable:
        return 0

    def on_tick(self, state, rng, me):
        i = int(state)
        if i >= len(self.script):
            return state, ()
        return i + 1, (self.script[i],)


class LoopBehavior(Behavior):
    """Cycles through a call sequence forever, one call per tick."""

    def __init__(self, cycle: Sequence[Call]) -> None:
        if not cycle:
            raise ValueError("loop behaviour needs a non-empty cycle")
        self.cycle = tuple(cycle)

    def init_state(self) -> Hashable:
        return 0

    def on_tick(self, state, rng, me):
        i = int(state)
        return (i + 1) % len(self.cycle), (self.cycle[i],)
