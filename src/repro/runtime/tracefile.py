"""Trace files: a plain-text serialisation of communication traces.

Recorded runs are library artifacts — monitors check them offline, tests
replay them, bug reports attach them.  The format is one event per line::

    caller -> callee : method(arg, arg, ...)

Arguments are either object names (``obj:name``) or data values
(``sort:label``); blank lines and ``#`` comments are ignored.  The format
round-trips exactly (see the tests) and is stable for diffing.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.errors import ReproError
from repro.core.events import Event
from repro.core.traces import Trace
from repro.core.values import DataVal, ObjectId, Value

__all__ = ["dumps", "loads", "save", "load", "parse_line", "format_event"]

_LINE_RE = re.compile(
    r"^\s*(?P<caller>\S+)\s*->\s*(?P<callee>\S+)\s*:\s*"
    r"(?P<method>[A-Za-z][A-Za-z0-9_']*)\s*(?:\((?P<args>.*)\))?\s*$"
)


def _format_value(v: Value) -> str:
    if isinstance(v, ObjectId):
        return f"obj:{v.name}"
    return f"{v.sort}:{v.label}"


def _parse_value(text: str, lineno: int) -> Value:
    text = text.strip()
    if ":" not in text:
        raise ReproError(
            f"trace line {lineno}: malformed value {text!r} "
            f"(expected 'obj:name' or 'Sort:label')"
        )
    sort, label = text.split(":", 1)
    if not label:
        raise ReproError(f"trace line {lineno}: empty value label in {text!r}")
    try:
        if sort == "obj":
            return ObjectId(label)
        return DataVal(sort, label)
    except ValueError as exc:
        raise ReproError(f"trace line {lineno}: bad value {text!r}: {exc}") from exc


def format_event(e: Event) -> str:
    """Serialise one event to its single-line text form."""
    if e.args:
        args = ", ".join(_format_value(a) for a in e.args)
        return f"{e.caller.name} -> {e.callee.name} : {e.method}({args})"
    return f"{e.caller.name} -> {e.callee.name} : {e.method}"


def parse_line(line: str, lineno: int = 1) -> Event | None:
    """Parse one line of the text format.

    Returns ``None`` for blank lines and ``#`` comments; raises
    :class:`~repro.core.errors.ReproError` (tagged with ``lineno``) for
    malformed lines.  This is the unit shared by :func:`loads`, the
    streaming ``repro monitor -`` CLI, and the service wire protocol.
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    m = _LINE_RE.match(line)
    if m is None:
        raise ReproError(f"trace line {lineno}: cannot parse {line!r}")
    args: tuple[Value, ...] = ()
    if m.group("args") is not None and m.group("args").strip():
        args = tuple(
            _parse_value(part, lineno) for part in m.group("args").split(",")
        )
    try:
        return Event(
            ObjectId(m.group("caller")),
            ObjectId(m.group("callee")),
            m.group("method"),
            args,
        )
    except ValueError as exc:
        raise ReproError(f"trace line {lineno}: {exc}") from exc


def dumps(trace: Trace) -> str:
    """Serialise a trace to the text format."""
    lines = [format_event(e) for e in trace]
    return "\n".join(lines) + ("\n" if lines else "")


def loads(text: str) -> Trace:
    """Parse the text format back into a trace."""
    events = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        event = parse_line(raw, lineno)
        if event is not None:
            events.append(event)
    return Trace(tuple(events))


def save(trace: Trace, path: str | Path) -> None:
    """Write a trace file."""
    Path(path).write_text(dumps(trace))


def load(path: str | Path) -> Trace:
    """Read a trace file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from exc
    return loads(text)
