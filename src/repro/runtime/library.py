"""Ready-made behaviours for the paper's scenarios.

These implement the *systems* the paper's specifications describe, so the
simulator can generate semantic traces and the monitors can check the
specifications against them (Section 2's soundness, live):

* :class:`ReaderBehavior` / :class:`WriterBehavior` — clients of the
  readers/writers controller ``o``, playing the ``Read2``/``Write``
  protocols;
* :class:`WriteThenConfirmBehavior` — Example 4's ``Client``: write to the
  controller, confirm to the monitor;
* :class:`RogueWriterBehavior` — a faulty writer that skips ``OW``
  (used to check that monitors catch protocol violations).

Protocol behaviours are *sequenced*: they issue one call at a time and
wait to observe its delivery before issuing the next.  Without this, the
scheduler may deliver queued calls out of order and the local protocol
order would be lost — the simulator models asynchronous delivery, and the
event trace records delivery order (the observable order of the
formalism).
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.core.events import Event
from repro.core.values import DataVal, ObjectId
from repro.runtime.behaviors import Behavior, Call

__all__ = [
    "SequencedBehavior",
    "ReaderBehavior",
    "WriterBehavior",
    "WriteThenConfirmBehavior",
    "RogueWriterBehavior",
]


def _data(rng: random.Random) -> DataVal:
    return DataVal("Data", f"v{rng.randrange(4)}")


class SequencedBehavior(Behavior):
    """One outstanding call at a time.

    Subclasses implement :meth:`next_call`; the base class issues it on a
    tick only when the previous call has been observed as delivered.
    State is ``(phase, outstanding_call_or_None)``.
    """

    def initial_phase(self) -> Hashable:
        return ()

    def next_call(
        self, phase: Hashable, rng: random.Random, me: ObjectId
    ) -> tuple[Hashable, Call | None]:
        raise NotImplementedError

    def observed(
        self, phase: Hashable, event: Event, me: ObjectId
    ) -> Hashable:
        """Passive observation hook (event already involves ``me``)."""
        return phase

    # -- Behavior interface ------------------------------------------------

    def init_state(self) -> Hashable:
        return (self.initial_phase(), None)

    def on_tick(self, state, rng, me):
        phase, outstanding = state
        if outstanding is not None:
            return state, ()
        phase, call = self.next_call(phase, rng, me)
        if call is None:
            return (phase, None), ()
        return (phase, call), (call,)

    def on_event(self, state, event, me):
        phase, outstanding = state
        phase = self.observed(phase, event, me)
        if (
            outstanding is not None
            and event.caller == me
            and event.callee == outstanding.callee
            and event.method == outstanding.method
            and event.args == outstanding.args
        ):
            outstanding = None
        return (phase, outstanding), ()


class ReaderBehavior(SequencedBehavior):
    """Cycles OR, R(d)×k, CR towards the controller."""

    def __init__(self, controller: ObjectId, reads_per_session: int = 2) -> None:
        self.controller = controller
        self.reads = reads_per_session

    def initial_phase(self) -> Hashable:
        return ("open", 0)

    def next_call(self, phase, rng, me):
        stage, k = phase
        o = self.controller
        if stage == "open":
            return ("read", 0), Call(o, "OR")
        if stage == "read":
            if k < self.reads:
                return ("read", k + 1), Call(o, "R", (_data(rng),))
            return ("open", 0), Call(o, "CR")
        return phase, None


class WriterBehavior(SequencedBehavior):
    """Cycles OW, W(d)×k, CW towards the controller.

    Exclusion is a property of the *specification*; the simulator does not
    block anyone.  With ``polite=True`` the writer observes the
    controller's traffic and only opens when no other writer holds a
    session, so polite systems satisfy ``Write``; impolite ones violate it
    under most schedules (and the monitors say exactly where).
    """

    def __init__(
        self,
        controller: ObjectId,
        writes_per_session: int = 1,
        polite: bool = False,
    ) -> None:
        self.controller = controller
        self.writes = writes_per_session
        self.polite = polite

    def initial_phase(self) -> Hashable:
        return ("open", 0, frozenset())

    def observed(self, phase, event, me):
        stage, k, holders = phase
        if event.callee == self.controller:
            if event.method == "OW":
                holders = holders | {event.caller}
            elif event.method == "CW":
                holders = holders - {event.caller}
        return (stage, k, holders)

    def next_call(self, phase, rng, me):
        stage, k, holders = phase
        o = self.controller
        if stage == "open":
            if self.polite and holders - {me}:
                return phase, None  # wait for the session to close
            return ("write", 0, holders), Call(o, "OW")
        if stage == "write":
            if k < self.writes:
                return ("write", k + 1, holders), Call(o, "W", (_data(rng),))
            return ("open", 0, holders), Call(o, "CW")
        return phase, None


class WriteThenConfirmBehavior(SequencedBehavior):
    """Example 4's Client: ⟨c,o,W(d)⟩ then ⟨c,o',OK⟩, repeatedly."""

    def __init__(self, controller: ObjectId, monitor: ObjectId) -> None:
        self.controller = controller
        self.monitor = monitor

    def initial_phase(self) -> Hashable:
        return "write"

    def next_call(self, phase, rng, me):
        if phase == "write":
            return "confirm", Call(self.controller, "W", (_data(rng),))
        return "write", Call(self.monitor, "OK")


class RogueWriterBehavior(SequencedBehavior):
    """A faulty writer: writes without ever opening a session."""

    def __init__(self, controller: ObjectId) -> None:
        self.controller = controller

    def next_call(self, phase, rng, me):
        return phase, Call(self.controller, "W", (_data(rng),))
