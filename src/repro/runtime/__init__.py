"""Open-distributed-system simulator: behaviours, schedulers, systems,
and online monitors checking specifications against running objects."""

from repro.runtime.behaviors import (
    Behavior,
    Call,
    LoopBehavior,
    PassiveBehavior,
    ScriptedBehavior,
)
from repro.runtime.library import (
    SequencedBehavior,
    ReaderBehavior,
    RogueWriterBehavior,
    WriterBehavior,
    WriteThenConfirmBehavior,
)
from repro.runtime import tracefile
from repro.runtime.monitor import SpecMonitor, Violation
from repro.runtime.scheduler import (
    FifoScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.runtime.system import PendingCall, System

__all__ = [
    "Behavior",
    "Call",
    "LoopBehavior",
    "PassiveBehavior",
    "ScriptedBehavior",
    "SequencedBehavior",
    "ReaderBehavior",
    "RogueWriterBehavior",
    "WriterBehavior",
    "WriteThenConfirmBehavior",
    "SpecMonitor",
    "Violation",
    "FifoScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "PendingCall",
    "System",
]
