"""The simulated open system: objects, pending calls, event trace.

Execution model: the system holds a set of named objects (each a
:class:`~repro.runtime.behaviors.Behavior` plus its state) and a queue of
*pending calls*.  Each step, the scheduler picks one runnable action:

* **deliver** a pending call — the call becomes a communication event
  ``⟨caller, callee, m(args)⟩`` appended to the global trace; both the
  caller's and the callee's behaviours observe it (their ``h/o``); a call
  to an object outside the system is an *environment* call and still
  produces an event (the environment is not under local control, exactly
  the paper's open-system stance);
* **tick** an object — its behaviour may enqueue new outgoing calls.

Self-calls are internal activity: they are executed (the behaviour sees a
tick-like effect) but produce **no event**, matching the formalism where
``⟨o,o,m⟩`` is not observable.

Monitors attached to the system observe every event as it happens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import RuntimeModelError
from repro.core.events import Event
from repro.core.traces import Trace
from repro.core.values import ObjectId
from repro.runtime.behaviors import Behavior, Call
from repro.runtime.monitor import SpecMonitor
from repro.runtime.scheduler import RandomScheduler, Scheduler

__all__ = ["System", "PendingCall"]


@dataclass(frozen=True, slots=True)
class PendingCall:
    caller: ObjectId
    call: Call


class System:
    """A running collection of objects plus the global observable trace."""

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        tick_seed: int = 0,
    ) -> None:
        self.scheduler = scheduler or RandomScheduler()
        self._tick_rng = random.Random(tick_seed)
        self._behaviors: dict[ObjectId, Behavior] = {}
        self._states: dict[ObjectId, object] = {}
        self.pending: list[PendingCall] = []
        self.trace: Trace = Trace.empty()
        self.monitors: list[SpecMonitor] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_object(self, identity: ObjectId, behavior: Behavior) -> "System":
        if identity in self._behaviors:
            raise RuntimeModelError(f"object {identity} already in the system")
        self._behaviors[identity] = behavior
        self._states[identity] = behavior.init_state()
        return self

    def attach_monitor(self, monitor: SpecMonitor) -> "System":
        self.monitors.append(monitor)
        return self

    def objects(self) -> tuple[ObjectId, ...]:
        return tuple(sorted(self._behaviors))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _emit(self, event: Event) -> None:
        self.trace = self.trace.append(event)
        for m in self.monitors:
            m.observe(event)

    def _enqueue(self, caller: ObjectId, calls) -> None:
        for call in calls:
            self.pending.append(PendingCall(caller, call))

    def _deliver(self, pc: PendingCall) -> None:
        caller, call = pc.caller, pc.call
        if call.callee == caller:
            # Internal activity: no observable event; the behaviour still
            # gets to react (modelled as an immediate self-notification).
            state, out = self._behaviors[caller].on_tick(
                self._states[caller], self._tick_rng, caller
            )
            self._states[caller] = state
            self._enqueue(caller, out)
            return
        event = Event(caller, call.callee, call.method, call.args)
        self._emit(event)
        for side in (caller, call.callee):
            behavior = self._behaviors.get(side)
            if behavior is None:
                continue  # environment object: not under local control
            state, out = behavior.on_event(self._states[side], event, side)
            self._states[side] = state
            self._enqueue(side, out)

    def _tick(self, identity: ObjectId) -> None:
        behavior = self._behaviors[identity]
        state, out = behavior.on_tick(
            self._states[identity], self._tick_rng, identity
        )
        self._states[identity] = state
        self._enqueue(identity, out)

    def step(self) -> bool:
        """Run one scheduler-chosen action; ``False`` if nothing can run."""
        actions: list = [("deliver", i) for i in range(len(self.pending))]
        actions.extend(("tick", o) for o in sorted(self._behaviors))
        if not actions:
            return False
        kind, which = actions[self.scheduler.pick(len(actions))]
        if kind == "deliver":
            pc = self.pending.pop(which)
            self._deliver(pc)
        else:
            self._tick(which)
        return True

    def run(self, steps: int) -> Trace:
        """Run up to ``steps`` scheduler actions; returns the global trace."""
        for _ in range(steps):
            if not self.step():
                break
        return self.trace

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def trace_of(self, identity: ObjectId) -> Trace:
        """The local trace ``h/o`` of one object."""
        return self.trace.proj_obj(identity)

    def violations(self):
        out = []
        for m in self.monitors:
            out.extend(m.violations)
        return out
