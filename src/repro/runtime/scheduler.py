"""Schedulers: who moves next in the simulated open system.

A scheduler repeatedly picks one of the currently runnable *actions* —
delivering a pending call or giving an object a spontaneous tick.  The
nondeterminism of the open system lives entirely here, seeded for
reproducibility; the paper models the same nondeterminism as the
branching of the trace set.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

__all__ = ["Scheduler", "RandomScheduler", "RoundRobinScheduler", "FifoScheduler"]


class Scheduler(ABC):
    """Picks the index of the next action among the runnable ones."""

    @abstractmethod
    def pick(self, n_actions: int) -> int:
        """Return an index in ``range(n_actions)`` (``n_actions ≥ 1``)."""


class RandomScheduler(Scheduler):
    """Uniformly random choice; the canonical open-system adversary."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def pick(self, n_actions: int) -> int:
        return self.rng.randrange(n_actions)


class RoundRobinScheduler(Scheduler):
    """Deterministic rotation over the runnable actions."""

    def __init__(self) -> None:
        self._next = 0

    def pick(self, n_actions: int) -> int:
        choice = self._next % n_actions
        self._next += 1
        return choice


class FifoScheduler(Scheduler):
    """Always the oldest runnable action (deliveries before ticks)."""

    def pick(self, n_actions: int) -> int:
        return 0
