"""Online safety monitors: run specifications against live systems.

A safety specification (prefix-closed trace set) is monitorable: feed the
global event stream through the specification's trace machine, projecting
to the specification's alphabet on the way (``h/α(Γ) ∈ T(Γ)`` is exactly
the soundness condition of Section 2).  A violation is detected at the
*first* event whose projected prefix leaves the trace set — safety
properties have finite witnesses (Alpern & Schneider, cited by the paper).

Monitors are attachable to a :class:`~repro.runtime.system.System` and can
either record violations or raise :class:`~repro.core.errors.MonitorViolation`.

Monitors keep a *bounded* window of recent events (``history_limit``,
default 4096): on unbounded streams — e.g. a long-running
:mod:`repro.service` session — memory stays constant while the violation
report still carries the true global event index.

When a :class:`~repro.automata.build.MachineImage` is supplied, the
monitor steps by integer through the image's flat successor array instead
of re-running the trace machine per event: each in-alphabet event is
encoded to a letter id once and the step is two array reads.  Events in
the alphabet but outside the instantiated letter table (live values the
finite universe never saw) deoptimise to machine stepping and re-enter the
dense array as soon as the machine state is one the image knows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.build import MachineImage
from repro.core.errors import MonitorViolation, RuntimeModelError
from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.traces import Trace
from repro.core.tracesets import FullTraceSet, MachineTraceSet
from repro.machines.base import TraceMachine

__all__ = ["SpecMonitor", "Violation", "DEFAULT_HISTORY_LIMIT"]

#: Default size of the bounded event-history window.
DEFAULT_HISTORY_LIMIT = 4096


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected violation: a recent-event window and the bad event.

    ``index`` is the *global* position of the offending event in the
    observed stream (0-based), even when the stream is longer than the
    monitor's bounded history; ``trace`` holds at most ``history_limit``
    events ending with the offending one.
    """

    spec_name: str
    trace: Trace
    event: Event
    index: int

    def __str__(self) -> str:
        return (
            f"{self.spec_name} violated by event #{self.index} {self.event} "
            f"(projected prefix leaves the trace set)"
        )


class SpecMonitor:
    """Monitors one specification online.

    Only machine-defined trace sets are monitorable (membership must be
    decidable per event); composed trace sets involve existential hiding
    and are checked offline via the checker instead.

    ``machine`` may be supplied to share one compiled (pure, immutable)
    trace machine across many monitors — the service's spec registry
    compiles each specification once and hands the machine to every
    session monitor.  ``dense`` additionally supplies the machine's
    :class:`~repro.automata.build.MachineImage` so in-table events step
    through the flat successor array (``dense_steps``) and only
    out-of-table events fall back to the machine (``fallback_steps``).
    ``history_limit`` bounds the retained event window (``None`` keeps
    everything; only sensible for short offline runs).
    """

    def __init__(
        self,
        spec: Specification,
        raise_on_violation: bool = False,
        *,
        machine: TraceMachine | None = None,
        dense: MachineImage | None = None,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        if machine is None:
            if not isinstance(spec.traces, (MachineTraceSet, FullTraceSet)):
                raise RuntimeModelError(
                    f"{spec.name}: only machine trace sets are monitorable online"
                )
            machine = spec.traces.machine()
        if history_limit is not None and history_limit < 1:
            raise RuntimeModelError("history_limit must be positive (or None)")
        self.spec = spec
        self.machine = machine
        self.dense = dense
        self.raise_on_violation = raise_on_violation
        self.history_limit = history_limit
        self.state = self.machine.initial()
        self.alive = self.machine.ok(self.state)
        self.violations: list[Violation] = []
        self.dense_steps = 0
        self.fallback_steps = 0
        self._seen = 0
        self._history: deque[Event] = deque(maxlen=history_limit)
        self._dstate = self._dense_entry()

    def _dense_entry(self) -> int | None:
        """The dense id of the current machine state, if the image has it."""
        if self.dense is None or not self.alive:
            return None
        return self.dense.index.get(self.state)

    def observe(self, event: Event, *, index: int | None = None) -> bool:
        """Feed one global event; returns whether the spec still holds.

        Events outside the specification's alphabet are skipped (the
        projection ``h/α(Γ)``); once violated, the monitor stays violated
        (safety is irremediable).  ``index`` overrides the violation's
        recorded global position — the sharded service uses this to stamp
        the session-global event index when a session's stream is split
        across per-callee shard monitors.
        """
        self._history.append(event)
        if index is None:
            index = self._seen
        self._seen += 1
        if not self.alive:
            return False
        if not self.spec.alphabet.contains(event):
            return True
        image = self.dense
        if image is not None and self._dstate is not None:
            lid = image.dfa.table.get(event)
            if lid is not None:
                self.dense_steps += 1
                nxt = image.dfa.dense[self._dstate * image.dfa.n_letters + lid]
                if nxt < len(image.states):
                    self._dstate = nxt
                    self.state = image.states[nxt]
                    return True
                return self._violate(event, index)
        # In the alphabet but outside the instantiated table (a live
        # value the finite universe never saw), or already off the dense
        # array from an earlier such event: step the machine and re-enter
        # the dense array as soon as the state is a known one.
        if image is not None:
            self.fallback_steps += 1
        self.state = self.machine.step(self.state, event)
        if not self.machine.ok(self.state):
            return self._violate(event, index)
        if image is not None:
            self._dstate = image.index.get(self.state)
        return True

    def observe_ids(self, ids, *, base_index: int | None = None) -> int | None:
        """Step a whole batch of letter ids through the dense array.

        ``ids`` are letter ids of the monitor's image table (the binary
        wire protocol's ``EVENTS`` payload); event ``j`` of the batch has
        session-global index ``base_index + j``.  Returns the
        *batch-relative* offset of the first violation detected inside
        this batch, or ``None`` — the recorded
        :class:`Violation`'s ``index`` is already resolved to the global
        position, so callers never do the arithmetic twice.

        Semantics match feeding the decoded events through
        :meth:`observe` one by one (tested as a law): every batch event
        counts as seen and enters the bounded history, events after a
        violation no longer step, and a deoptimised monitor (off the
        dense array after an out-of-table event) falls back to machine
        stepping per event.  The fast path is one tight loop over the
        flat successor array — no per-event dict lookups, spans, or
        clock reads.
        """
        n = len(ids)
        if base_index is None:
            base_index = self._seen
        image = self.dense
        if image is None:
            raise RuntimeModelError(
                f"{self.spec.name}: observe_ids needs a dense image"
            )
        letters = image.dfa.table.letters
        if self.alive and self._dstate is None:
            # Deoptimised: an earlier out-of-table event pushed the
            # monitor off the dense array.  Correctness over speed.
            offset = None
            for j in range(n):
                was_alive = self.alive
                self.observe(letters[ids[j]], index=base_index + j)
                if was_alive and not self.alive:
                    offset = j
            return offset
        if not self.alive:
            # Irremediable: count and record, never step.
            self._seen += n
            self._history.extend(letters[lid] for lid in ids)
            return None
        dfa = image.dfa
        dense = dfa.dense
        k = dfa.n_letters
        live = len(image.states)
        state = self._dstate
        offset: int | None = None
        for j in range(n):
            nxt = dense[state * k + ids[j]]
            if nxt < live:
                state = nxt
            else:
                offset = j
                break
        consumed = n if offset is None else offset + 1
        self._seen += n
        self.dense_steps += consumed
        self._history.extend(letters[ids[j]] for j in range(consumed))
        # Commit the machine state reached by the last *good* step —
        # exactly where per-event observe() leaves it on a violation.
        self.state = image.states[state]
        if offset is None:
            self._dstate = state
            return None
        self._violate(letters[ids[offset]], base_index + offset)
        # Post-violation batch events still enter the bounded history,
        # exactly as per-event observe() would have recorded them.
        self._history.extend(letters[ids[j]] for j in range(consumed, n))
        return offset

    def _violate(self, event: Event, index: int) -> bool:
        self.alive = False
        self._dstate = None
        v = Violation(
            self.spec.name, Trace(tuple(self._history)), event, index
        )
        self.violations.append(v)
        if self.raise_on_violation:
            raise MonitorViolation(str(v), v.trace, event)
        return False

    @property
    def ok(self) -> bool:
        return self.alive

    @property
    def events_seen(self) -> int:
        """Total number of events observed (including skipped ones)."""
        return self._seen

    def reset(self) -> None:
        self.state = self.machine.initial()
        self.alive = self.machine.ok(self.state)
        self.violations.clear()
        self.dense_steps = 0
        self.fallback_steps = 0
        self._seen = 0
        self._history.clear()
        self._dstate = self._dense_entry()

    def __repr__(self) -> str:
        status = "ok" if self.alive else "violated"
        return f"SpecMonitor({self.spec.name}, {status})"
