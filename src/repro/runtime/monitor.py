"""Online safety monitors: run specifications against live systems.

A safety specification (prefix-closed trace set) is monitorable: feed the
global event stream through the specification's trace machine, projecting
to the specification's alphabet on the way (``h/α(Γ) ∈ T(Γ)`` is exactly
the soundness condition of Section 2).  A violation is detected at the
*first* event whose projected prefix leaves the trace set — safety
properties have finite witnesses (Alpern & Schneider, cited by the paper).

Monitors are attachable to a :class:`~repro.runtime.system.System` and can
either record violations or raise :class:`~repro.core.errors.MonitorViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import MonitorViolation, RuntimeModelError
from repro.core.events import Event
from repro.core.specification import Specification
from repro.core.traces import Trace
from repro.core.tracesets import FullTraceSet, MachineTraceSet

__all__ = ["SpecMonitor", "Violation"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected violation: the global trace so far and the bad event."""

    spec_name: str
    trace: Trace
    event: Event
    index: int

    def __str__(self) -> str:
        return (
            f"{self.spec_name} violated by event #{self.index} {self.event} "
            f"(projected prefix leaves the trace set)"
        )


class SpecMonitor:
    """Monitors one specification online.

    Only machine-defined trace sets are monitorable (membership must be
    decidable per event); composed trace sets involve existential hiding
    and are checked offline via the checker instead.
    """

    def __init__(self, spec: Specification, raise_on_violation: bool = False) -> None:
        if not isinstance(spec.traces, (MachineTraceSet, FullTraceSet)):
            raise RuntimeModelError(
                f"{spec.name}: only machine trace sets are monitorable online"
            )
        self.spec = spec
        self.machine = spec.traces.machine()
        self.raise_on_violation = raise_on_violation
        self.state = self.machine.initial()
        self.alive = self.machine.ok(self.state)
        self.violations: list[Violation] = []
        self._seen = 0
        self._history: list[Event] = []

    def observe(self, event: Event) -> bool:
        """Feed one global event; returns whether the spec still holds.

        Events outside the specification's alphabet are skipped (the
        projection ``h/α(Γ)``); once violated, the monitor stays violated
        (safety is irremediable).
        """
        self._history.append(event)
        self._seen += 1
        if not self.alive:
            return False
        if not self.spec.alphabet.contains(event):
            return True
        self.state = self.machine.step(self.state, event)
        if not self.machine.ok(self.state):
            self.alive = False
            v = Violation(
                self.spec.name, Trace(tuple(self._history)), event, self._seen - 1
            )
            self.violations.append(v)
            if self.raise_on_violation:
                raise MonitorViolation(str(v), v.trace, event)
            return False
        return True

    @property
    def ok(self) -> bool:
        return self.alive

    def reset(self) -> None:
        self.state = self.machine.initial()
        self.alive = self.machine.ok(self.state)
        self.violations.clear()
        self._seen = 0
        self._history.clear()

    def __repr__(self) -> str:
        status = "ok" if self.alive else "violated"
        return f"SpecMonitor({self.spec.name}, {status})"
