"""HTTP/JSON gateway over the :mod:`repro.api` facade.

REST endpoints for the online-monitoring service — register documents,
stream events, query verdicts, scrape merged metrics — served by the
stdlib ``http.server`` stack with zero new dependencies.  The package
deliberately knows nothing about the TCP service: handlers call only the
:class:`repro.api.Gateway` facade (tests/gateway/test_lint.py bans
``repro.service`` imports here), so the wire protocol can keep evolving
behind the stable API surface.

Entry points: ``repro serve --http-port N``, ``repro gateway``, and
:func:`repro.api.serve_http`.  Endpoint reference: ``docs/http-api.md``.
"""

from repro.gateway.app import GatewayServer
from repro.gateway.errors import error_envelope, status_for

__all__ = ["GatewayServer", "error_envelope", "status_for"]
