"""The gateway's uniform JSON error envelope.

Every failure an HTTP handler can hit — bad bodies, unknown resources,
typed :class:`~repro.core.errors.ReproError` subclasses raised by the
:class:`repro.api.Gateway` facade, transport trouble — renders as one
shape::

    {"error": {"kind": "<exception class>", "message": "...", "detail": ...}}

with the HTTP status picked by walking the exception's MRO through
:data:`_STATUS_BY_KIND`.  Matching is *by class name*, not by class
object, so service-layer exceptions (``ProtocolError``,
``ServiceUnavailable``) map correctly without this module ever importing
``repro.service`` — the import ban tests/gateway/test_lint.py enforces.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = [
    "BadRequestError",
    "MethodNotAllowedError",
    "NotFoundError",
    "error_envelope",
    "status_for",
]


class BadRequestError(ReproError):
    """A malformed HTTP request (body, JSON shape, header) — 400."""


class NotFoundError(ReproError):
    """No route matches the request path — 404."""


class MethodNotAllowedError(ReproError):
    """The path exists but not under this HTTP method — 405."""


#: Exception class name → HTTP status.  Order within an MRO decides:
#: the most specific ancestor with an entry wins, ``ReproError`` is the
#: 400 backstop for library errors, anything unmapped is a 500.
_STATUS_BY_KIND = {
    "BadRequestError": 400,
    "NotFoundError": 404,
    "MethodNotAllowedError": 405,
    "OUNSyntaxError": 400,
    "OUNElaborationError": 400,
    "SpecificationError": 400,
    "StateSpaceLimitExceeded": 400,
    "ProtocolError": 400,
    "UnknownSpecificationError": 404,
    "UnknownSessionError": 404,
    "SessionStateError": 409,
    "ServiceUnavailable": 503,
    "ReproError": 400,
    "ConnectionError": 502,
    "TimeoutError": 504,
}


def status_for(exc: BaseException) -> int:
    """The HTTP status for an exception (most specific MRO entry)."""
    for klass in type(exc).__mro__:
        status = _STATUS_BY_KIND.get(klass.__name__)
        if status is not None:
            return status
    return 500


def error_envelope(exc: BaseException) -> tuple[int, dict]:
    """``(status, payload)`` for the uniform JSON error envelope.

    ``detail`` carries machine-usable position info when the exception
    has it (parser line/column, state-space ``explored``), else null.
    """
    status = status_for(exc)
    detail = {}
    for attr in ("line", "column", "explored"):
        value = getattr(exc, attr, None)
        if isinstance(value, int):
            detail[attr] = value
    payload = {
        "error": {
            "kind": type(exc).__name__,
            "message": str(exc) or type(exc).__name__,
            "detail": detail or None,
        }
    }
    return status, payload
