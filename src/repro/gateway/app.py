"""The HTTP/JSON gateway: stdlib ``http.server`` over :class:`repro.api.Gateway`.

This module is *routing only*.  Every handler body is a line or two that
calls the synchronous :class:`repro.api.Gateway` facade and serialises
its dict — no protocol knowledge, no service imports (the lint test
tests/gateway/test_lint.py keeps it that way).  The endpoint surface,
status codes, and error envelope are specified normatively in
``docs/http-api.md``:

========  ==============================  =================================
method    path                            meaning
========  ==============================  =================================
GET       ``/v1/healthz``                 liveness + backend reachability
GET       ``/v1/documents``               served specification names
PUT       ``/v1/documents/{name}``        register / hot-swap a document
GET       ``/v1/sessions``                open gateway session keys
POST      ``/v1/sessions/{key}/events``   send one event or a batch
GET       ``/v1/sessions/{key}``          status + violation
DELETE    ``/v1/sessions/{key}``          close, returning final status
GET       ``/v1/metrics`` (``/metrics``)  Prometheus text (fan-in merged)
========  ==============================  =================================

:class:`http.server.ThreadingHTTPServer` gives one thread per in-flight
request; the :class:`~repro.api.Gateway` facade is thread-safe (its
per-session asyncio locks serialise same-key requests), so the handlers
need no locking of their own.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from repro import api
from repro.gateway.errors import (
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
    error_envelope,
)

__all__ = ["GatewayServer"]

#: Upper bound on request bodies (documents, event batches): plenty for
#: any real OUN document, small enough to shrug off garbage.
MAX_BODY = 8 * 1024 * 1024

_ROUTES = [
    ("GET", re.compile(r"^/v1/healthz$"), "_get_health"),
    ("GET", re.compile(r"^/v1/documents$"), "_get_documents"),
    ("PUT", re.compile(r"^/v1/documents/(?P<name>[^/]+)$"), "_put_document"),
    ("GET", re.compile(r"^/v1/sessions$"), "_get_sessions"),
    (
        "POST",
        re.compile(r"^/v1/sessions/(?P<key>[^/]+)/events$"),
        "_post_events",
    ),
    ("GET", re.compile(r"^/v1/sessions/(?P<key>[^/]+)$"), "_get_session"),
    (
        "DELETE",
        re.compile(r"^/v1/sessions/(?P<key>[^/]+)$"),
        "_delete_session",
    ),
    ("GET", re.compile(r"^/v1/metrics$"), "_get_metrics"),
    ("GET", re.compile(r"^/metrics$"), "_get_metrics"),
]


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"repro-gateway/{api.API_VERSION}"
    # headers and body go out as two writes; without TCP_NODELAY that
    # pattern hits Nagle + delayed-ACK (~40ms) on every keep-alive request
    disable_nagle_algorithm = True

    @property
    def gateway(self) -> api.Gateway:
        return self.server.gateway

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service process owns stderr; metrics count requests

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        try:
            split = urlsplit(self.path)
            path = unquote(split.path)
            self._query = parse_qs(split.query)
            path_known = False
            for verb, pattern, attr in _ROUTES:
                match = pattern.match(path)
                if match is None:
                    continue
                path_known = True
                if verb != method:
                    continue
                getattr(self, attr)(**match.groupdict())
                return
            if path_known:
                raise MethodNotAllowedError(
                    f"{method} is not supported on {path}"
                )
            raise NotFoundError(f"no such resource: {path}")
        except Exception as exc:  # uniform envelope, never a stack trace
            status, payload = error_envelope(exc)
            try:
                self._send_json(status, payload)
            except (BrokenPipeError, ConnectionResetError):
                pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- request plumbing ------------------------------------------------

    def _flag(self, name: str) -> bool:
        values = self._query.get(name, [])
        return bool(values) and values[-1].lower() not in (
            "",
            "0",
            "false",
            "no",
        )

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        if length is None:
            raise BadRequestError("request needs a Content-Length header")
        try:
            size = int(length)
        except ValueError:
            raise BadRequestError(f"bad Content-Length: {length!r}") from None
        if size < 0 or size > MAX_BODY:
            raise BadRequestError(
                f"body of {size} bytes exceeds the {MAX_BODY} byte limit"
            )
        return self.rfile.read(size)

    def _read_json(self) -> dict:
        raw = self._read_body()
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequestError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequestError("JSON body must be an object")
        return body

    def _send_json(self, status: int, payload: dict) -> None:
        body = (
            json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
            + b"\n"
        )
        self._send_bytes(status, body, "application/json")

    def _send_bytes(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- endpoints -------------------------------------------------------

    def _get_health(self) -> None:
        self._send_json(200, self.gateway.health())

    def _get_documents(self) -> None:
        self._send_json(200, {"documents": self.gateway.documents()})

    def _put_document(self, name: str) -> None:
        ctype = (
            (self.headers.get("Content-Type") or "")
            .split(";")[0]
            .strip()
            .lower()
        )
        force = self._flag("force")
        if ctype == "application/json":
            body = self._read_json()
            text = body.get("text")
            if not isinstance(text, str):
                raise BadRequestError(
                    'JSON document bodies need a string "text" field'
                )
            force = bool(body.get("force", force))
        else:
            raw = self._read_body()
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise BadRequestError(
                    f"document body is not UTF-8: {exc}"
                ) from exc
        report = self.gateway.update_from_text(text, force=force, declares=name)
        report["document"] = name
        self._send_json(200, report)

    def _get_sessions(self) -> None:
        self._send_json(200, {"sessions": self.gateway.sessions()})

    def _post_events(self, key: str) -> None:
        body = self._read_json()
        if ("event" in body) == ("events" in body):
            raise BadRequestError(
                'body needs exactly one of "event" or "events"'
            )
        if "event" in body:
            events = [body["event"]]
        else:
            events = body["events"]
            if not isinstance(events, list):
                raise BadRequestError(
                    '"events" must be an array of trace lines'
                )
        for event in events:
            if not isinstance(event, str):
                raise BadRequestError("event lines must be strings")
        spec = body.get("spec")
        if spec is not None and not isinstance(spec, str):
            raise BadRequestError('"spec" must be a string')
        durable = bool(body.get("durable", False))
        self._send_json(
            200,
            self.gateway.send_events(key, events, spec=spec, durable=durable),
        )

    def _get_session(self, key: str) -> None:
        self._send_json(200, self.gateway.session_status(key))

    def _delete_session(self, key: str) -> None:
        self._send_json(200, self.gateway.end_session(key))

    def _get_metrics(self) -> None:
        self._send_bytes(
            200,
            self.gateway.metrics_text().encode("utf-8"),
            "text/plain; version=0.0.4",
        )


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class GatewayServer:
    """Bind the HTTP front and serve — on a daemon thread or blocking.

    ``port=0`` picks an ephemeral port; :attr:`port` holds the real one
    after construction (binding happens in ``__init__``, so a caller can
    print/advertise the address before the first request).
    """

    def __init__(
        self, gateway: api.Gateway, *, host: str = "127.0.0.1", port: int = 8080
    ) -> None:
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.gateway = gateway
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    def start(self) -> "GatewayServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-gateway-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close`."""
        self._httpd.serve_forever(poll_interval=0.1)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
