"""Deprecated shim: exploration statistics moved to :mod:`repro.obs`.

.. deprecated:: 1.1
   :class:`~repro.obs.exploration.ExplorationStats`,
   :func:`~repro.obs.exploration.collect_exploration` and
   :func:`~repro.obs.exploration.active_exploration_stats` now live in
   ``repro.obs.exploration`` (re-exported from ``repro.obs``), where a
   closing collection block also flushes its totals into the unified
   metrics registry.  Import from ``repro.obs`` instead; this module
   will be removed one release after 1.1.  Each name warns with
   ``DeprecationWarning`` exactly once per process on first access.
"""

from __future__ import annotations

from repro.obs.compat import deprecated_module_attrs

__all__ = ["ExplorationStats", "collect_exploration", "active_exploration_stats"]

__getattr__ = deprecated_module_attrs(
    __name__,
    {
        "ExplorationStats": "repro.obs.exploration",
        "collect_exploration": "repro.obs.exploration",
        "active_exploration_stats": "repro.obs.exploration",
    },
)
