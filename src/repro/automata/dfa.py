"""Deterministic finite automata over finite event alphabets.

The exact checking layer instantiates symbolic alphabets over a finite
universe and represents trace sets as DFAs.  A :class:`DFA` here is always
*total*: every (state, letter) pair has a successor; construction adds an
explicit sink when needed.  Letters are concrete
:class:`~repro.core.events.Event` values (any hashable works, which the
unit tests exploit).

Design notes (per the HPC guides: simple first, then measured):
transitions are stored as one dict per state, letters are indexed once at
construction, and the hot loops (product, Hopcroft, BFS) work on integer
state ids only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.errors import AutomatonError

__all__ = ["DFA"]


@dataclass(frozen=True, slots=True)
class DFA:
    """A total DFA: states ``0..n-1``, transition dicts keyed by letter."""

    letters: tuple[Hashable, ...]
    transitions: tuple[dict, ...]  # state -> {letter: state}
    start: int
    accepting: frozenset[int]

    def __post_init__(self) -> None:
        n = len(self.transitions)
        if not (0 <= self.start < n):
            raise AutomatonError(f"start state {self.start} out of range")
        letter_set = set(self.letters)
        if len(letter_set) != len(self.letters):
            raise AutomatonError("duplicate letters in alphabet")
        for q, row in enumerate(self.transitions):
            if set(row) != letter_set:
                raise AutomatonError(
                    f"state {q} is not total over the alphabet"
                )
            for t in row.values():
                if not (0 <= t < n):
                    raise AutomatonError(
                        f"transition target {t} out of range in state {q}"
                    )
        for q in self.accepting:
            if not (0 <= q < n):
                raise AutomatonError(f"accepting state {q} out of range")

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, letter: Hashable) -> int:
        try:
            return self.transitions[state][letter]
        except KeyError:
            raise AutomatonError(f"letter {letter!r} not in the alphabet")

    def accepts(self, word: Iterable[Hashable]) -> bool:
        q = self.start
        for a in word:
            q = self.step(q, a)
        return q in self.accepting

    def run(self, word: Iterable[Hashable]) -> int:
        q = self.start
        for a in word:
            q = self.step(q, a)
        return q

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def build(
        letters: Sequence[Hashable],
        n_states: int,
        start: int,
        accepting: Iterable[int],
        edges: dict[tuple[int, Hashable], int],
        default: int | None = None,
    ) -> "DFA":
        """Build from an edge dict; missing edges go to ``default``.

        ``default=None`` requires the edge dict to be total.
        """
        letters_t = tuple(letters)
        rows: list[dict] = []
        for q in range(n_states):
            row = {}
            for a in letters_t:
                t = edges.get((q, a), default)
                if t is None:
                    raise AutomatonError(
                        f"missing transition ({q}, {a!r}) and no default"
                    )
                row[a] = t
            rows.append(row)
        return DFA(letters_t, tuple(rows), start, frozenset(accepting))

    @staticmethod
    def empty_language(letters: Sequence[Hashable]) -> "DFA":
        """The DFA accepting no word."""
        letters_t = tuple(letters)
        return DFA(letters_t, ({a: 0 for a in letters_t},), 0, frozenset())

    @staticmethod
    def full_language(letters: Sequence[Hashable]) -> "DFA":
        """The DFA accepting every word."""
        letters_t = tuple(letters)
        return DFA(letters_t, ({a: 0 for a in letters_t},), 0, frozenset({0}))

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------

    def reachable_states(self) -> frozenset[int]:
        seen = {self.start}
        stack = [self.start]
        while stack:
            q = stack.pop()
            for t in self.transitions[q].values():
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return frozenset(seen)

    def trim(self) -> "DFA":
        """Drop unreachable states (renumbering; language preserved)."""
        reach = sorted(self.reachable_states())
        index = {q: i for i, q in enumerate(reach)}
        rows = tuple(
            {a: index[t] for a, t in self.transitions[q].items()} for q in reach
        )
        return DFA(
            self.letters,
            rows,
            index[self.start],
            frozenset(index[q] for q in self.accepting if q in index),
        )

    def is_prefix_closed(self) -> bool:
        """Is the accepted language prefix closed?

        True iff no accepting state is reachable from a reachable
        non-accepting state — equivalently, every reachable non-accepting
        state only reaches non-accepting states.
        """
        reach = self.reachable_states()
        for q in reach:
            if q in self.accepting:
                continue
            # BFS from q must avoid accepting states
            seen = {q}
            stack = [q]
            while stack:
                s = stack.pop()
                for t in self.transitions[s].values():
                    if t in self.accepting:
                        return False
                    if t not in seen:
                        seen.add(t)
                        stack.append(t)
        return True

    def __repr__(self) -> str:
        return (
            f"DFA(states={self.n_states}, letters={len(self.letters)}, "
            f"accepting={len(self.accepting)})"
        )
