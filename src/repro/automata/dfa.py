"""Deterministic finite automata over finite event alphabets.

The exact checking layer instantiates symbolic alphabets over a finite
universe and represents trace sets as DFAs.  A :class:`DFA` here is always
*total*: every (state, letter) pair has a successor; construction adds an
explicit sink when needed.  Letters are concrete
:class:`~repro.core.events.Event` values (any hashable works, which the
unit tests exploit).

Storage is **dense** (DESIGN.md §10): letters are interned to integer ids
through a shared :class:`~repro.automata.letters.LetterTable` and the
transition function is one flat ``array('i')`` of ``n_states * n_letters``
successors indexed by ``state * n_letters + letter_id``.  Every hot kernel
(product, Hopcroft, BFS, online stepping) works purely on ints; structured
letters are hashed only at the boundary — encoding a word once on the way
in, decoding a counterexample on the way out.

The historical event-keyed API is preserved as a thin shim: the
constructor still accepts per-state ``{letter: state}`` dicts (encoded
once, eagerly validated) and :attr:`transitions` materialises them back on
demand, so callers migrate to ids incrementally.
"""

from __future__ import annotations

import warnings
from array import array
from typing import Hashable, Iterable, Sequence

from repro.automata.letters import LetterTable
from repro.obs.exploration import active_exploration_stats
from repro.core.errors import AutomatonError

#: Once-per-process latch for the ``DFA.transitions`` deprecation notice.
_WARNED_TRANSITIONS = False

__all__ = ["DFA"]


class DFA:
    """A total DFA: states ``0..n-1``, dense integer-coded transitions.

    ``DFA(letters, rows, start, accepting)`` takes event-keyed row dicts
    (the legacy shim, fully validated); the kernels construct directly via
    :meth:`from_dense`.  Instances are immutable by convention: ``dense``
    and ``table`` must never be mutated — boolean operations share them.
    """

    __slots__ = (
        "letters",
        "table",
        "dense",
        "n_states",
        "n_letters",
        "start",
        "accepting",
        "_rows",
    )

    def __init__(
        self,
        letters: Sequence[Hashable],
        transitions: Sequence[dict],
        start: int,
        accepting: Iterable[int],
    ) -> None:
        table = LetterTable.intern(letters)
        letters_t = table.letters
        n = len(transitions)
        letter_set = set(letters_t)
        dense = array("i")
        for q, row in enumerate(transitions):
            if set(row) != letter_set:
                raise AutomatonError(
                    f"state {q} is not total over the alphabet"
                )
            for a in letters_t:
                t = row[a]
                if not (0 <= t < n):
                    raise AutomatonError(
                        f"transition target {t} out of range in state {q}"
                    )
                dense.append(t)
        self._init_dense(table, n, dense, start, frozenset(accepting))

    # ------------------------------------------------------------------
    # dense construction
    # ------------------------------------------------------------------

    def _init_dense(
        self,
        table: LetterTable,
        n_states: int,
        dense: array,
        start: int,
        accepting: frozenset[int],
    ) -> None:
        if not (0 <= start < n_states):
            raise AutomatonError(f"start state {start} out of range")
        for q in accepting:
            if not (0 <= q < n_states):
                raise AutomatonError(f"accepting state {q} out of range")
        self.letters = table.letters
        self.table = table
        self.dense = dense
        self.n_states = n_states
        self.n_letters = len(table.letters)
        self.start = start
        self.accepting = accepting
        self._rows = None

    @classmethod
    def from_dense(
        cls,
        letters: Sequence[Hashable],
        n_states: int,
        dense: array,
        start: int,
        accepting: Iterable[int],
        *,
        table: LetterTable | None = None,
        validated: bool = False,
    ) -> "DFA":
        """Build from a flat successor array (the kernels' constructor).

        ``validated=True`` skips the target-range scan for arrays the
        caller built from in-range ids (exploration orders, products).
        """
        if table is None:
            table = LetterTable.intern(letters)
        k = len(table.letters)
        if len(dense) != n_states * k:
            raise AutomatonError(
                f"dense table has {len(dense)} entries, expected "
                f"{n_states} states x {k} letters"
            )
        if not validated and len(dense) and not (
            0 <= min(dense) and max(dense) < n_states
        ):
            raise AutomatonError("dense transition target out of range")
        self = cls.__new__(cls)
        self._init_dense(table, n_states, dense, start, frozenset(accepting))
        return self

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def step(self, state: int, letter: Hashable) -> int:
        """One transition by letter (encoding at the boundary).

        Unknown letters raise an :class:`AutomatonError` naming the letter
        and the nearest alphabet letters by method name — a universe or
        spec-alphabet mismatch is undebuggable from a bare miss.
        """
        lid = self.table.get(letter)
        if lid is None:
            raise AutomatonError(self.table.unknown_letter_message(letter))
        return self.dense[state * self.n_letters + lid]

    def step_id(self, state: int, letter_id: int) -> int:
        """One transition by letter id (the hot path: no hashing)."""
        return self.dense[state * self.n_letters + letter_id]

    def run(self, word: Iterable[Hashable]) -> int:
        q = self.start
        k = self.n_letters
        dense = self.dense
        get = self.table.get
        steps = 0
        for a in word:
            lid = get(a)
            if lid is None:
                raise AutomatonError(self.table.unknown_letter_message(a))
            q = dense[q * k + lid]
            steps += 1
        stats = active_exploration_stats()
        if stats is not None:
            stats.letters_encoded += steps
            stats.dense_steps += steps
        return q

    def run_ids(self, ids: Sequence[int], state: int | None = None) -> int:
        """Run a pre-encoded word of letter ids from ``state`` (or start)."""
        q = self.start if state is None else state
        k = self.n_letters
        dense = self.dense
        for lid in ids:
            q = dense[q * k + lid]
        stats = active_exploration_stats()
        if stats is not None:
            stats.dense_steps += len(ids)
        return q

    def accepts(self, word: Iterable[Hashable]) -> bool:
        return self.run(word) in self.accepting

    @property
    def transitions(self) -> tuple[dict, ...]:
        """Event-keyed row dicts (the legacy shim, materialised lazily).

        .. deprecated:: 1.1
           Step through :meth:`step` / :meth:`step_id` / :meth:`run_ids`
           (dense, allocation-free) instead; the dict rows exist only for
           pre-dense callers and cost ``n_states * n_letters`` dict
           entries to materialise.
        """
        global _WARNED_TRANSITIONS
        if not _WARNED_TRANSITIONS:
            _WARNED_TRANSITIONS = True
            warnings.warn(
                "DFA.transitions is deprecated; use the dense accessors "
                "(step/step_id/run_ids) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        rows = self._rows
        if rows is None:
            letters = self.letters
            k = self.n_letters
            dense = self.dense
            rows = tuple(
                dict(zip(letters, dense[q * k : (q + 1) * k]))
                for q in range(self.n_states)
            )
            self._rows = rows
        return rows

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def build(
        letters: Sequence[Hashable],
        n_states: int,
        start: int,
        accepting: Iterable[int],
        edges: dict[tuple[int, Hashable], int],
        default: int | None = None,
    ) -> "DFA":
        """Build from an edge dict; missing edges go to ``default``.

        ``default=None`` requires the edge dict to be total.
        """
        table = LetterTable.intern(letters)
        dense = array("i")
        for q in range(n_states):
            for a in table.letters:
                t = edges.get((q, a), default)
                if t is None:
                    raise AutomatonError(
                        f"missing transition ({q}, {a!r}) and no default"
                    )
                dense.append(t)
        return DFA.from_dense(
            table.letters, n_states, dense, start, accepting, table=table
        )

    @staticmethod
    def empty_language(letters: Sequence[Hashable]) -> "DFA":
        """The DFA accepting no word."""
        table = LetterTable.intern(letters)
        dense = array("i", [0] * len(table.letters))
        return DFA.from_dense(
            table.letters, 1, dense, 0, frozenset(), table=table,
            validated=True,
        )

    @staticmethod
    def full_language(letters: Sequence[Hashable]) -> "DFA":
        """The DFA accepting every word."""
        table = LetterTable.intern(letters)
        dense = array("i", [0] * len(table.letters))
        return DFA.from_dense(
            table.letters, 1, dense, 0, frozenset({0}), table=table,
            validated=True,
        )

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------

    def reachable_states(self) -> frozenset[int]:
        n, k, dense = self.n_states, self.n_letters, self.dense
        seen = bytearray(n)
        seen[self.start] = 1
        stack = [self.start]
        while stack:
            q = stack.pop()
            for t in dense[q * k : (q + 1) * k]:
                if not seen[t]:
                    seen[t] = 1
                    stack.append(t)
        return frozenset(q for q in range(n) if seen[q])

    def trim(self) -> "DFA":
        """Drop unreachable states (renumbering; language preserved)."""
        reach = sorted(self.reachable_states())
        if len(reach) == self.n_states:
            return self
        index = {q: i for i, q in enumerate(reach)}
        k = self.n_letters
        dense = self.dense
        out = array("i")
        for q in reach:
            for t in dense[q * k : (q + 1) * k]:
                out.append(index[t])
        return DFA.from_dense(
            self.letters,
            len(reach),
            out,
            index[self.start],
            frozenset(index[q] for q in self.accepting if q in index),
            table=self.table,
            validated=True,
        )

    def is_prefix_closed(self) -> bool:
        """Is the accepted language prefix closed?

        True iff no accepting state is reachable (in one or more steps)
        from a reachable non-accepting state.  Decided by one backward
        co-reachability pass from the accepting states over reversed
        edges — O(states x letters), not a BFS per state.
        """
        n, k, dense = self.n_states, self.n_letters, self.dense
        preds: list[list[int]] = [[] for _ in range(n)]
        for q in range(n):
            for t in dense[q * k : (q + 1) * k]:
                preds[t].append(q)
        # co[q]: some path of length >= 1 from q hits an accepting state.
        co = bytearray(n)
        stack: list[int] = []
        for t in self.accepting:
            for p in preds[t]:
                if not co[p]:
                    co[p] = 1
                    stack.append(p)
        while stack:
            s = stack.pop()
            for p in preds[s]:
                if not co[p]:
                    co[p] = 1
                    stack.append(p)
        accepting = self.accepting
        return not any(
            co[q] and q not in accepting for q in self.reachable_states()
        )

    # ------------------------------------------------------------------
    # identity, pickling, fingerprints
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DFA):
            return (
                self.letters == other.letters
                and self.start == other.start
                and self.accepting == other.accepting
                and self.dense == other.dense
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (self.letters, self.start, self.accepting, self.dense.tobytes())
        )

    def cache_key_parts(self):
        """Fingerprint content: the dense form is the definitional one."""
        return (
            self.letters,
            self.n_states,
            self.dense.tobytes(),
            self.start,
            self.accepting,
        )

    def __getstate__(self):
        # Dense arrays pickle as one bytes blob — the compact wire form
        # crossing the engine's process boundary and the on-disk cache.
        return (
            self.letters,
            self.n_states,
            self.dense.tobytes(),
            self.start,
            self.accepting,
        )

    def __setstate__(self, state) -> None:
        letters, n_states, blob, start, accepting = state
        dense = array("i")
        dense.frombytes(blob)
        table = LetterTable.intern(letters)
        self._init_dense(table, n_states, dense, start, frozenset(accepting))

    def __repr__(self) -> str:
        return (
            f"DFA(states={self.n_states}, letters={len(self.letters)}, "
            f"accepting={len(self.accepting)})"
        )
