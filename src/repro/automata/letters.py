"""Interned letter tables: the Event ↔ int bijection of the dense core.

Every exact kernel in the automata layer — product, Hopcroft, subset
construction, online stepping — used to consume letters as full
:class:`~repro.core.events.Event` values, re-hashing structured tuples on
every transition.  A :class:`LetterTable` fixes one *canonical* letter
order for a finite letter universe and assigns each letter a dense
integer id; every kernel then works on ids, and letters are hashed only
at the *boundary* (encoding an incoming event once, decoding a
counterexample word back for reports).

Tables are **interned** per letter tuple (:meth:`LetterTable.intern`):
the compiler, the normalization pipeline, and the service registry all
derive their letters from the same ``(universe, alphabet)``
instantiation, so interning makes "same letters" mean "same table
object" process-wide — monitors sharing one compiled machine also share
one encoding dict, and repeated compilations (raw vs. normalized, per
obligation, per session) never rebuild the bijection.

The invariant the dense :class:`~repro.automata.dfa.DFA` relies on: a
table is immutable, and a compiled machine's table is fixed for the
machine's lifetime (DESIGN.md §10).
"""

from __future__ import annotations

import difflib
from typing import Hashable, Iterable, Iterator, Sequence

from repro.obs.exploration import active_exploration_stats
from repro.core.errors import AutomatonError

__all__ = ["LetterTable", "interned_table_count"]

#: Process-wide intern pool: letter tuple → table.  Letter tuples are
#: per-(universe, alphabet) instantiations — a small, bounded population.
_INTERNED: dict[tuple, "LetterTable"] = {}


def interned_table_count() -> int:
    """How many distinct letter tables the intern pool holds."""
    return len(_INTERNED)


class LetterTable:
    """An immutable bijection between letters and dense ids ``0..k-1``.

    The id order is exactly the order of the ``letters`` tuple — callers
    that need a canonical order (the compiler sorts universe
    instantiations, :func:`~repro.automata.ops.product` sorts operand
    letters) establish it *before* building the table.
    """

    __slots__ = ("letters", "_ids")

    def __init__(self, letters: Sequence[Hashable]) -> None:
        letters_t = tuple(letters)
        ids: dict[Hashable, int] = {}
        for i, letter in enumerate(letters_t):
            ids[letter] = i
        if len(ids) != len(letters_t):
            raise AutomatonError("duplicate letters in alphabet")
        self.letters: tuple[Hashable, ...] = letters_t
        self._ids = ids

    @staticmethod
    def intern(letters: Sequence[Hashable]) -> "LetterTable":
        """The shared table for a letter tuple (built on first sight)."""
        key = tuple(letters)
        table = _INTERNED.get(key)
        if table is None:
            table = _INTERNED[key] = LetterTable(key)
        return table

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def id_of(self, letter: Hashable) -> int:
        """The dense id of a letter; unknown letters raise with a hint."""
        lid = self._ids.get(letter)
        if lid is None:
            raise AutomatonError(self.unknown_letter_message(letter))
        return lid

    def get(self, letter: Hashable) -> int | None:
        """The dense id of a letter, or ``None`` when not in the table."""
        return self._ids.get(letter)

    def encode(self, word: Iterable[Hashable]) -> list[int]:
        """Encode a word to letter ids (raising on unknown letters)."""
        ids = self._ids
        try:
            out = [ids[a] for a in word]
        except KeyError as exc:
            raise AutomatonError(
                self.unknown_letter_message(exc.args[0])
            ) from None
        stats = active_exploration_stats()
        if stats is not None:
            stats.letters_encoded += len(out)
        return out

    def decode(self, ids: Iterable[int]) -> tuple[Hashable, ...]:
        """Decode letter ids back to letters."""
        letters = self.letters
        return tuple(letters[i] for i in ids)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def unknown_letter_message(self, letter: Hashable) -> str:
        """An error message naming the letter and its nearest neighbours.

        Events are matched by method name first — "which spec's alphabet
        was violated" is almost always answered by showing the alphabet's
        letters for the same method; other letter types fall back to
        close string matches.
        """
        method = getattr(letter, "method", None)
        near: list = []
        if method is not None:
            near = [
                a
                for a in self.letters
                if getattr(a, "method", None) == method
            ][:3]
            if near:
                hint = (
                    f"nearest letters by method {method!r}: "
                    + ", ".join(str(a) for a in near)
                )
                return (
                    f"letter {letter!r} not in the alphabet "
                    f"({len(self.letters)} letters); {hint}"
                )
        close = difflib.get_close_matches(
            str(letter), [str(a) for a in self.letters], n=3, cutoff=0.0
        )
        hint = (
            "nearest letters: " + ", ".join(close)
            if close
            else "the alphabet is empty"
        )
        return (
            f"letter {letter!r} not in the alphabet "
            f"({len(self.letters)} letters); {hint}"
        )

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.letters)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.letters)

    def __contains__(self, letter: Hashable) -> bool:
        return letter in self._ids

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LetterTable):
            return self.letters == other.letters
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.letters)

    def __getstate__(self):
        return self.letters

    def __setstate__(self, letters) -> None:
        # Re-intern on unpickle so worker processes and cache loads share
        # one table per letter tuple, like freshly built ones do.
        shared = LetterTable.intern(letters)
        object.__setattr__(self, "letters", shared.letters)
        object.__setattr__(self, "_ids", shared._ids)

    def __repr__(self) -> str:
        return f"LetterTable({len(self.letters)} letters)"
