"""Operations on DFAs: product, complement, minimisation, inclusion.

These are the decision procedures behind the exact refinement strategy:
``L(A) ⊆ L(B)`` is ``L(A) ∩ L(B)ᶜ = ∅``, with the shortest counterexample
extracted by BFS over the product.  Hopcroft's algorithm provides
canonical minimal forms, used both as an ablation knob in the benchmarks
and for language-equality checks (Example 6).

All kernels operate purely on dense letter ids (DESIGN.md §10): the
product walks two flat successor arrays with one shared canonical column
order, Hopcroft's splitter queue carries ``(block, letter_id)`` pairs,
and BFS parents record ids that are decoded to letters only when a
counterexample word is reported.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Hashable, Iterable

from repro.automata.dfa import DFA
from repro.automata.letters import LetterTable
from repro.obs.exploration import active_exploration_stats
from repro.core.errors import AutomatonError

__all__ = [
    "count_words",
    "complement",
    "product",
    "intersection",
    "union_lang",
    "difference",
    "is_empty",
    "shortest_accepted",
    "inclusion_counterexample",
    "equivalence_counterexample",
    "minimize",
    "MINIMIZE_ABOVE_DEFAULT",
]


def _format_letters(side: str, letters: list) -> str:
    shown = ", ".join(str(x) for x in letters[:5])
    more = f", … (+{len(letters) - 5} more)" if len(letters) > 5 else ""
    return f"{len(letters)} only in {side} ({shown}{more})"


def _check_same_alphabet(a: DFA, b: DFA) -> None:
    if a.table is b.table:  # interned: same tuple, same set
        return
    sa, sb = set(a.letters), set(b.letters)
    if sa != sb:
        # Name the offending letters: a universe-instantiation mismatch
        # is undebuggable from bare counts.
        parts = [
            _format_letters(side, sorted(diff, key=repr))
            for side, diff in (("left", sa - sb), ("right", sb - sa))
            if diff
        ]
        raise AutomatonError(
            "DFA operations require identical alphabets; " + "; ".join(parts)
        )


def _canonical_letters(letters: Iterable[Hashable]) -> tuple[Hashable, ...]:
    """A deterministic letter order independent of operand order."""
    try:
        return tuple(sorted(letters))
    except TypeError:
        return tuple(sorted(letters, key=repr))


def complement(a: DFA) -> DFA:
    """The DFA for the complement language (totality makes this flipping).

    Shares the operand's dense array — complement is O(accepting), not
    O(states x letters).
    """
    return DFA.from_dense(
        a.letters,
        a.n_states,
        a.dense,
        a.start,
        frozenset(range(a.n_states)) - a.accepting,
        table=a.table,
        validated=True,
    )


def product(a: DFA, b: DFA, accept) -> DFA:
    """Reachable product automaton; ``accept(in_a, in_b)`` marks acceptance.

    The result's letters are in canonical (sorted) order, so callers may
    pass operands whose letter tuples are ordered differently — only the
    letter *sets* must agree — and ``product(a, b, f)`` explores states
    in the same order as ``product(b, a, flip(f))``.
    """
    _check_same_alphabet(a, b)
    letters = _canonical_letters(a.letters)
    k = len(letters)
    table = LetterTable.intern(letters)
    # Column maps: canonical letter id -> operand letter id.  The common
    # case (both operands compiled over one sorted universe) is the
    # identity on both sides.
    acol = (
        range(k)
        if letters == a.letters
        else [a.table.id_of(x) for x in letters]
    )
    bcol = (
        range(k)
        if letters == b.letters
        else [b.table.id_of(x) for x in letters]
    )
    ad, bd = a.dense, b.dense
    index: dict[tuple[int, int], int] = {(a.start, b.start): 0}
    order: list[tuple[int, int]] = [(a.start, b.start)]
    out = array("i")
    i = 0
    while i < len(order):
        qa, qb = order[i]
        ra = qa * k
        rb = qb * k
        for c in range(k):
            key = (ad[ra + acol[c]], bd[rb + bcol[c]])
            j = index.get(key)
            if j is None:
                j = len(order)
                index[key] = j
                order.append(key)
            out.append(j)
        i += 1
    a_acc, b_acc = a.accepting, b.accepting
    accepting = frozenset(
        i
        for i, (qa, qb) in enumerate(order)
        if accept(qa in a_acc, qb in b_acc)
    )
    stats = active_exploration_stats()
    if stats is not None:
        stats.dense_steps += len(out)
    return DFA.from_dense(
        letters, len(order), out, 0, accepting, table=table, validated=True
    )


def intersection(a: DFA, b: DFA) -> DFA:
    return product(a, b, lambda x, y: x and y)


def union_lang(a: DFA, b: DFA) -> DFA:
    return product(a, b, lambda x, y: x or y)


def difference(a: DFA, b: DFA) -> DFA:
    """``L(A) − L(B)``."""
    return product(a, b, lambda x, y: x and not y)


def is_empty(a: DFA) -> bool:
    return shortest_accepted(a) is None


def shortest_accepted(a: DFA) -> tuple[Hashable, ...] | None:
    """Shortest accepted word (BFS), or ``None`` for the empty language."""
    if a.start in a.accepting:
        return ()
    k = a.n_letters
    dense = a.dense
    accepting = a.accepting
    parent: dict[int, tuple[int, int]] = {a.start: None}  # type: ignore[dict-item]
    queue: deque[int] = deque([a.start])
    while queue:
        q = queue.popleft()
        base = q * k
        for c in range(k):
            t = dense[base + c]
            if t in parent:
                continue
            parent[t] = (q, c)
            if t in accepting:
                ids: list[int] = []
                node = t
                while parent[node] is not None:
                    prev, cid = parent[node]
                    ids.append(cid)
                    node = prev
                ids.reverse()
                return a.table.decode(ids)
            queue.append(t)
    return None


#: State count above which :func:`inclusion_counterexample` minimises its
#: operands before building the product.  The product explores up to
#: ``|A|·|B|`` states; Hopcroft is ``O(n log n)`` per operand, so for
#: large automata minimising first is a net win (see
#: ``benchmarks/bench_engine.py``).  Language-preserving, so the shortest
#: counterexample — a property of the languages alone — is unchanged.
MINIMIZE_ABOVE_DEFAULT = 512


def inclusion_counterexample(
    a: DFA, b: DFA, minimize_above: int | None = MINIMIZE_ABOVE_DEFAULT
) -> tuple[Hashable, ...] | None:
    """Shortest word of ``L(A) − L(B)``, or ``None`` when ``L(A) ⊆ L(B)``.

    When either operand exceeds ``minimize_above`` states, both are
    Hopcroft-minimised before the product (``None`` disables).
    """
    if minimize_above is not None and max(a.n_states, b.n_states) > minimize_above:
        a = minimize(a)
        b = minimize(b)
    return shortest_accepted(difference(a, b))


def equivalence_counterexample(a: DFA, b: DFA) -> tuple[Hashable, ...] | None:
    """Shortest word distinguishing the two languages, or ``None``."""
    w = inclusion_counterexample(a, b)
    if w is not None:
        return w
    return inclusion_counterexample(b, a)


def count_words(a: DFA, max_len: int) -> list[int]:
    """Number of accepted words of each length ``0..max_len``.

    Dynamic programming over state-occupancy vectors: O(max_len · states ·
    letters).  For prefix-closed trace-set DFAs this counts the traces of
    each length over the instantiated universe — the growth profile used
    by EXPERIMENTS.md and cross-checked against bounded enumeration in the
    tests.
    """
    n = a.n_states
    k = a.n_letters
    dense = a.dense
    occupancy = [0] * n
    occupancy[a.start] = 1
    counts = [sum(occupancy[q] for q in a.accepting)]
    for _ in range(max_len):
        nxt = [0] * n
        for q, ways in enumerate(occupancy):
            if ways == 0:
                continue
            base = q * k
            for c in range(k):
                nxt[dense[base + c]] += ways
        occupancy = nxt
        counts.append(sum(occupancy[q] for q in a.accepting))
    return counts


def minimize(a: DFA) -> DFA:
    """Hopcroft minimisation (on the reachable part)."""
    a = a.trim()
    n = a.n_states
    k = a.n_letters
    if n == 0:
        return a
    dense = a.dense

    # Pre-compute reverse transitions per letter id.
    rev: list[list[list[int]]] = [
        [[] for _ in range(n)] for _ in range(k)
    ]
    for q in range(n):
        base = q * k
        for c in range(k):
            rev[c][dense[base + c]].append(q)

    accepting = set(a.accepting)
    non_accepting = set(range(n)) - accepting
    partition: list[set[int]] = [s for s in (accepting, non_accepting) if s]
    in_part = [0] * n
    for i, block in enumerate(partition):
        for q in block:
            in_part[q] = i

    work: deque[tuple[int, int]] = deque(
        (i, c) for i in range(len(partition)) for c in range(k)
    )
    while work:
        i, c = work.popleft()
        block = partition[i]
        # states with a letter-c transition into `block`
        pre: set[int] = set()
        rev_c = rev[c]
        for t in block:
            pre.update(rev_c[t])
        touched: dict[int, set[int]] = {}
        for q in pre:
            touched.setdefault(in_part[q], set()).add(q)
        for j, hit in touched.items():
            whole = partition[j]
            if len(hit) == len(whole):
                continue
            rest = whole - hit
            partition[j] = hit
            knew = len(partition)
            partition.append(rest)
            for q in rest:
                in_part[q] = knew
            # keep splitter invariant
            for c2 in range(k):
                work.append((knew, c2))

    index = {}
    for i, block in enumerate(partition):
        for q in block:
            index[q] = i
    out = array("i")
    starts = [next(iter(b)) for b in partition]
    for rep in starts:
        base = rep * k
        for c in range(k):
            out.append(index[dense[base + c]])
    accepting_blocks = frozenset(
        i for i, b in enumerate(partition) if next(iter(b)) in a.accepting
    )
    return DFA.from_dense(
        a.letters,
        len(partition),
        out,
        index[a.start],
        accepting_blocks,
        table=a.table,
        validated=True,
    )
