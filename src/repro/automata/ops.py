"""Operations on DFAs: product, complement, minimisation, inclusion.

These are the decision procedures behind the exact refinement strategy:
``L(A) ⊆ L(B)`` is ``L(A) ∩ L(B)ᶜ = ∅``, with the shortest counterexample
extracted by BFS over the product.  Hopcroft's algorithm provides
canonical minimal forms, used both as an ablation knob in the benchmarks
and for language-equality checks (Example 6).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

from repro.automata.dfa import DFA
from repro.core.errors import AutomatonError

__all__ = [
    "count_words",
    "complement",
    "product",
    "intersection",
    "union_lang",
    "difference",
    "is_empty",
    "shortest_accepted",
    "inclusion_counterexample",
    "equivalence_counterexample",
    "minimize",
    "MINIMIZE_ABOVE_DEFAULT",
]


def _format_letters(side: str, letters: list) -> str:
    shown = ", ".join(str(x) for x in letters[:5])
    more = f", … (+{len(letters) - 5} more)" if len(letters) > 5 else ""
    return f"{len(letters)} only in {side} ({shown}{more})"


def _check_same_alphabet(a: DFA, b: DFA) -> None:
    sa, sb = set(a.letters), set(b.letters)
    if sa != sb:
        # Name the offending letters: a universe-instantiation mismatch
        # is undebuggable from bare counts.
        parts = [
            _format_letters(side, sorted(diff, key=repr))
            for side, diff in (("left", sa - sb), ("right", sb - sa))
            if diff
        ]
        raise AutomatonError(
            "DFA operations require identical alphabets; " + "; ".join(parts)
        )


def _canonical_letters(letters: Iterable[Hashable]) -> tuple[Hashable, ...]:
    """A deterministic letter order independent of operand order."""
    try:
        return tuple(sorted(letters))
    except TypeError:
        return tuple(sorted(letters, key=repr))


def complement(a: DFA) -> DFA:
    """The DFA for the complement language (totality makes this flipping)."""
    return DFA(
        a.letters,
        a.transitions,
        a.start,
        frozenset(range(a.n_states)) - a.accepting,
    )


def product(a: DFA, b: DFA, accept) -> DFA:
    """Reachable product automaton; ``accept(in_a, in_b)`` marks acceptance.

    The result's letters are in canonical (sorted) order, so callers may
    pass operands whose letter tuples are ordered differently — only the
    letter *sets* must agree — and ``product(a, b, f)`` explores states
    in the same order as ``product(b, a, flip(f))``.
    """
    _check_same_alphabet(a, b)
    letters = _canonical_letters(a.letters)
    index: dict[tuple[int, int], int] = {(a.start, b.start): 0}
    order: list[tuple[int, int]] = [(a.start, b.start)]
    rows: list[dict] = []
    i = 0
    while i < len(order):
        qa, qb = order[i]
        row = {}
        for letter in letters:
            ta = a.transitions[qa][letter]
            tb = b.transitions[qb][letter]
            key = (ta, tb)
            j = index.get(key)
            if j is None:
                j = len(order)
                index[key] = j
                order.append(key)
            row[letter] = j
        rows.append(row)
        i += 1
    accepting = frozenset(
        i
        for i, (qa, qb) in enumerate(order)
        if accept(qa in a.accepting, qb in b.accepting)
    )
    return DFA(letters, tuple(rows), 0, accepting)


def intersection(a: DFA, b: DFA) -> DFA:
    return product(a, b, lambda x, y: x and y)


def union_lang(a: DFA, b: DFA) -> DFA:
    return product(a, b, lambda x, y: x or y)


def difference(a: DFA, b: DFA) -> DFA:
    """``L(A) − L(B)``."""
    return product(a, b, lambda x, y: x and not y)


def is_empty(a: DFA) -> bool:
    return shortest_accepted(a) is None


def shortest_accepted(a: DFA) -> tuple[Hashable, ...] | None:
    """Shortest accepted word (BFS), or ``None`` for the empty language."""
    if a.start in a.accepting:
        return ()
    parent: dict[int, tuple[int, Hashable]] = {a.start: None}  # type: ignore[dict-item]
    queue: deque[int] = deque([a.start])
    while queue:
        q = queue.popleft()
        for letter, t in a.transitions[q].items():
            if t in parent:
                continue
            parent[t] = (q, letter)
            if t in a.accepting:
                word: list[Hashable] = []
                node = t
                while parent[node] is not None:
                    prev, a_letter = parent[node]
                    word.append(a_letter)
                    node = prev
                return tuple(reversed(word))
            queue.append(t)
    return None


#: State count above which :func:`inclusion_counterexample` minimises its
#: operands before building the product.  The product explores up to
#: ``|A|·|B|`` states; Hopcroft is ``O(n log n)`` per operand, so for
#: large automata minimising first is a net win (see
#: ``benchmarks/bench_engine.py``).  Language-preserving, so the shortest
#: counterexample — a property of the languages alone — is unchanged.
MINIMIZE_ABOVE_DEFAULT = 512


def inclusion_counterexample(
    a: DFA, b: DFA, minimize_above: int | None = MINIMIZE_ABOVE_DEFAULT
) -> tuple[Hashable, ...] | None:
    """Shortest word of ``L(A) − L(B)``, or ``None`` when ``L(A) ⊆ L(B)``.

    When either operand exceeds ``minimize_above`` states, both are
    Hopcroft-minimised before the product (``None`` disables).
    """
    if minimize_above is not None and max(a.n_states, b.n_states) > minimize_above:
        a = minimize(a)
        b = minimize(b)
    return shortest_accepted(difference(a, b))


def equivalence_counterexample(a: DFA, b: DFA) -> tuple[Hashable, ...] | None:
    """Shortest word distinguishing the two languages, or ``None``."""
    w = inclusion_counterexample(a, b)
    if w is not None:
        return w
    return inclusion_counterexample(b, a)


def count_words(a: DFA, max_len: int) -> list[int]:
    """Number of accepted words of each length ``0..max_len``.

    Dynamic programming over state-occupancy vectors: O(max_len · states ·
    letters).  For prefix-closed trace-set DFAs this counts the traces of
    each length over the instantiated universe — the growth profile used
    by EXPERIMENTS.md and cross-checked against bounded enumeration in the
    tests.
    """
    n = a.n_states
    occupancy = [0] * n
    occupancy[a.start] = 1
    counts = [sum(occupancy[q] for q in a.accepting)]
    for _ in range(max_len):
        nxt = [0] * n
        for q, ways in enumerate(occupancy):
            if ways == 0:
                continue
            for t in a.transitions[q].values():
                nxt[t] += ways
        occupancy = nxt
        counts.append(sum(occupancy[q] for q in a.accepting))
    return counts


def minimize(a: DFA) -> DFA:
    """Hopcroft minimisation (on the reachable part)."""
    a = a.trim()
    n = a.n_states
    letters = a.letters
    if n == 0:
        return a

    # Pre-compute reverse transitions per letter.
    rev: dict[Hashable, list[list[int]]] = {
        letter: [[] for _ in range(n)] for letter in letters
    }
    for q in range(n):
        for letter, t in a.transitions[q].items():
            rev[letter][t].append(q)

    accepting = set(a.accepting)
    non_accepting = set(range(n)) - accepting
    partition: list[set[int]] = [s for s in (accepting, non_accepting) if s]
    in_part = [0] * n
    for i, block in enumerate(partition):
        for q in block:
            in_part[q] = i

    work: deque[tuple[int, Hashable]] = deque(
        (i, letter) for i in range(len(partition)) for letter in letters
    )
    while work:
        i, letter = work.popleft()
        block = partition[i]
        # states with a `letter` transition into `block`
        pre: set[int] = set()
        for t in block:
            pre.update(rev[letter][t])
        touched: dict[int, set[int]] = {}
        for q in pre:
            touched.setdefault(in_part[q], set()).add(q)
        for j, hit in touched.items():
            whole = partition[j]
            if len(hit) == len(whole):
                continue
            rest = whole - hit
            partition[j] = hit
            k = len(partition)
            partition.append(rest)
            for q in rest:
                in_part[q] = k
            # keep splitter invariant
            for l2 in letters:
                work.append((k, l2))

    index = {}
    for i, block in enumerate(partition):
        for q in block:
            index[q] = i
    rows = []
    starts = [next(iter(b)) for b in partition]
    for rep in starts:
        rows.append({letter: index[t] for letter, t in a.transitions[rep].items()})
    accepting_blocks = frozenset(
        i for i, b in enumerate(partition) if next(iter(b)) in a.accepting
    )
    return DFA(letters, tuple(rows), index[a.start], accepting_blocks)
