"""Compiling trace machines to DFAs over finite event alphabets.

Three constructions:

* :func:`machine_to_dfa` — explore the reachable state space of a trace
  machine over a finite event list.  Non-``ok`` states collapse into a
  single sink: the denoted trace set is prefix closed, so every extension
  of a rejected prefix is rejected.  Exact whenever the reachable space is
  finite; a state budget turns runaway counters into a clean
  :class:`~repro.core.errors.StateSpaceLimitExceeded`.

* :func:`hidden_closure_dfa` — the composition construction.  Traces of
  ``Γ‖Δ`` are projections that *erase* internal events, so the product
  machine becomes an NFA whose hidden-event steps are ε-moves; the subset
  construction (closing under hidden steps) yields a DFA over the
  observable events.  A subset state is accepting iff non-empty — every
  retained member is an ``ok`` product state reachable by some
  interleaving of hidden events.

* :func:`lift_dfa` — inverse projection: from a DFA for ``T`` over the
  events of ``α`` to the DFA for ``{h | h/α ∈ T}`` over a larger event
  list (events outside ``α`` self-loop).  This is the right-hand side of
  refinement condition 3.

All constructions emit the dense representation directly: exploration
assigns integer state ids in discovery order and appends successors to a
flat ``array('i')``, so no per-state dicts are ever built.
:func:`machine_to_dense` additionally retains the discovery order — the
machine state behind each dense id — which is what lets an online monitor
step by integer and still deoptimise to machine stepping when a live
event falls outside the instantiated letter table.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.automata.dfa import DFA
from repro.automata.letters import LetterTable
from repro.obs.exploration import active_exploration_stats
from repro.core.errors import AutomatonError, StateSpaceLimitExceeded
from repro.core.events import Event
from repro.machines.base import TraceMachine

__all__ = [
    "machine_to_dfa",
    "machine_to_dense",
    "MachineImage",
    "hidden_closure_dfa",
    "lift_dfa",
    "embed_dfa",
]


def _explore(
    machine: TraceMachine,
    letters: tuple[Hashable, ...],
    state_limit: int,
) -> tuple[list[Hashable], array]:
    """Reachable ``ok`` states in discovery order plus the flat successor
    array (sink transitions encoded as the eventual sink id)."""
    init = machine.initial()
    index: dict[Hashable, int] = {init: 0}
    order: list[Hashable] = [init]
    dense = array("i")
    i = 0
    while i < len(order):
        state = order[i]
        for e in letters:
            nxt = machine.step(state, e)
            if not machine.ok(nxt):
                dense.append(-1)
                continue
            j = index.get(nxt)
            if j is None:
                if len(order) >= state_limit:
                    raise StateSpaceLimitExceeded(
                        f"machine exploration exceeded {state_limit} states",
                        explored=len(order),
                    )
                j = len(order)
                index[nxt] = j
                order.append(nxt)
            dense.append(j)
        i += 1
    sink = len(order)
    for pos, t in enumerate(dense):
        if t < 0:
            dense[pos] = sink
    return order, dense


@dataclass(frozen=True, slots=True)
class MachineImage:
    """A dense compilation of one machine, keeping the state mapping.

    ``dfa`` is the compiled automaton (states ``0..len(states)`` with the
    sink last); ``states[i]`` is the machine state behind dense id ``i``
    and ``index`` inverts it.  Online monitors step by id while events
    stay inside ``dfa.table`` and use the mapping to fall back to (and
    re-enter from) machine stepping for events outside the instantiated
    universe.
    """

    dfa: DFA
    states: tuple[Hashable, ...]
    index: dict[Hashable, int]

    @property
    def sink(self) -> int:
        return len(self.states)

    def cache_key_parts(self):
        return (self.dfa, self.states)


def machine_to_dfa(
    machine: TraceMachine,
    events: Sequence[Event],
    state_limit: int = 100_000,
    table: LetterTable | None = None,
) -> DFA:
    """Explore the machine's reachable states over ``events`` into a DFA."""
    if table is None:
        table = LetterTable.intern(tuple(events))
    letters = table.letters
    init = machine.initial()
    if not machine.ok(init):
        return DFA.empty_language(letters)

    order, dense = _explore(machine, letters, state_limit)

    stats = active_exploration_stats()
    if stats is not None:
        stats.dfa_states += len(order)
        stats.machine_steps += len(order) * len(letters)

    sink = len(order)
    dense.extend([sink] * len(letters))
    return DFA.from_dense(
        letters,
        sink + 1,
        dense,
        0,
        frozenset(range(sink)),
        table=table,
        validated=True,
    )


def machine_to_dense(
    machine: TraceMachine,
    events: Sequence[Event],
    state_limit: int = 100_000,
    table: LetterTable | None = None,
) -> MachineImage:
    """Compile a machine keeping the dense-id ↔ machine-state mapping."""
    if table is None:
        table = LetterTable.intern(tuple(events))
    letters = table.letters
    init = machine.initial()
    if not machine.ok(init):
        return MachineImage(DFA.empty_language(letters), (), {})
    order, dense = _explore(machine, letters, state_limit)
    sink = len(order)
    dense.extend([sink] * len(letters))
    dfa = DFA.from_dense(
        letters,
        sink + 1,
        dense,
        0,
        frozenset(range(sink)),
        table=table,
        validated=True,
    )
    return MachineImage(
        dfa, tuple(order), {s: i for i, s in enumerate(order)}
    )


def hidden_closure_dfa(
    initial_states: Sequence[Hashable],
    step: Callable[[Hashable, Event], Hashable],
    ok: Callable[[Hashable], bool],
    observable: Sequence[Event],
    hidden: Sequence[Event],
    state_limit: int = 100_000,
    table: LetterTable | None = None,
) -> DFA:
    """Subset construction treating hidden events as ε-moves.

    ``initial_states``/``step``/``ok`` describe the underlying product
    machine; the DFA accepts exactly the observable traces that some
    interleaving with hidden events keeps ``ok`` throughout.
    """
    if table is None:
        table = LetterTable.intern(tuple(observable))
    letters = table.letters

    def closure(states: frozenset) -> frozenset:
        seen = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for e in hidden:
                t = step(s, e)
                if ok(t) and t not in seen:
                    seen.add(t)
                    stack.append(t)
        return frozenset(seen)

    init = closure(frozenset(s for s in initial_states if ok(s)))
    index: dict[frozenset, int] = {init: 0}
    order: list[frozenset] = [init]
    dense = array("i")
    i = 0
    while i < len(order):
        subset = order[i]
        for e in letters:
            succ = frozenset(
                t for t in (step(s, e) for s in subset) if ok(t)
            )
            succ = closure(succ)
            j = index.get(succ)
            if j is None:
                if len(order) >= state_limit:
                    raise StateSpaceLimitExceeded(
                        f"hidden-closure construction exceeded "
                        f"{state_limit} subset states",
                        explored=len(order),
                    )
                j = len(order)
                index[succ] = j
                order.append(succ)
            dense.append(j)
        i += 1
    stats = active_exploration_stats()
    if stats is not None:
        stats.dfa_states += len(order)
    accepting = frozenset(i for i, subset in enumerate(order) if subset)
    return DFA.from_dense(
        letters, len(order), dense, 0, accepting, table=table, validated=True
    )


def _source_columns(
    dfa: DFA, letters: tuple[Hashable, ...], alpha, alpha_kind: str, dfa_kind: str
) -> list[int]:
    """Map each target letter to a source letter id, or -1 when outside
    ``alpha`` (meaning: handled by the caller's out-of-α rule)."""
    cols: list[int] = []
    for e in letters:
        if alpha.contains(e):
            lid = dfa.table.get(e)
            if lid is None:
                raise AutomatonError(
                    f"event {e} is in the {alpha_kind} alphabet but not a "
                    f"letter of the {dfa_kind} DFA"
                )
            cols.append(lid)
        else:
            cols.append(-1)
    return cols


def embed_dfa(dfa: DFA, events: Sequence[Event], alpha) -> DFA:
    """The DFA for ``L(dfa)`` viewed inside a larger event list.

    Unlike :func:`lift_dfa` (inverse projection: foreign events self-loop),
    embedding *rejects* on events outside ``α`` — a trace set over ``α``
    contains no trace using other events.  Used to compare trace sets of
    specifications with different alphabets over a common letter set.
    """
    table = LetterTable.intern(tuple(events))
    letters = table.letters
    cols = _source_columns(dfa, letters, alpha, "embedded", "embedded")
    sink = dfa.n_states
    ks = dfa.n_letters
    src = dfa.dense
    dense = array("i")
    for q in range(dfa.n_states):
        base = q * ks
        for c in cols:
            dense.append(sink if c < 0 else src[base + c])
    dense.extend([sink] * len(letters))
    return DFA.from_dense(
        letters,
        sink + 1,
        dense,
        dfa.start,
        dfa.accepting,
        table=table,
        validated=True,
    )


def lift_dfa(dfa: DFA, events: Sequence[Event], alpha) -> DFA:
    """The DFA for ``{h over events | h/α ∈ L(dfa)}``.

    ``alpha`` is anything with a ``contains(event)`` method.  Events inside
    ``α`` must be letters of ``dfa``; events outside self-loop.
    """
    table = LetterTable.intern(tuple(events))
    letters = table.letters
    cols = _source_columns(dfa, letters, alpha, "projection", "projected")
    ks = dfa.n_letters
    src = dfa.dense
    dense = array("i")
    for q in range(dfa.n_states):
        base = q * ks
        for c in cols:
            dense.append(q if c < 0 else src[base + c])
    return DFA.from_dense(
        letters,
        dfa.n_states,
        dense,
        dfa.start,
        dfa.accepting,
        table=table,
        validated=True,
    )
