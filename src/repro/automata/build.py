"""Compiling trace machines to DFAs over finite event alphabets.

Three constructions:

* :func:`machine_to_dfa` — explore the reachable state space of a trace
  machine over a finite event list.  Non-``ok`` states collapse into a
  single sink: the denoted trace set is prefix closed, so every extension
  of a rejected prefix is rejected.  Exact whenever the reachable space is
  finite; a state budget turns runaway counters into a clean
  :class:`~repro.core.errors.StateSpaceLimitExceeded`.

* :func:`hidden_closure_dfa` — the composition construction.  Traces of
  ``Γ‖Δ`` are projections that *erase* internal events, so the product
  machine becomes an NFA whose hidden-event steps are ε-moves; the subset
  construction (closing under hidden steps) yields a DFA over the
  observable events.  A subset state is accepting iff non-empty — every
  retained member is an ``ok`` product state reachable by some
  interleaving of hidden events.

* :func:`lift_dfa` — inverse projection: from a DFA for ``T`` over the
  events of ``α`` to the DFA for ``{h | h/α ∈ T}`` over a larger event
  list (events outside ``α`` self-loop).  This is the right-hand side of
  refinement condition 3.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Sequence

from repro.automata.dfa import DFA
from repro.automata.stats import active_exploration_stats
from repro.core.errors import AutomatonError, StateSpaceLimitExceeded
from repro.core.events import Event
from repro.machines.base import TraceMachine

__all__ = ["machine_to_dfa", "hidden_closure_dfa", "lift_dfa", "embed_dfa"]


def machine_to_dfa(
    machine: TraceMachine,
    events: Sequence[Event],
    state_limit: int = 100_000,
) -> DFA:
    """Explore the machine's reachable states over ``events`` into a DFA."""
    letters = tuple(events)
    init = machine.initial()
    if not machine.ok(init):
        return DFA.empty_language(letters)

    index: dict[Hashable, int] = {init: 0}
    order: list[Hashable] = [init]
    rows: list[dict] = []
    SINK = -1  # patched to a real id at the end
    i = 0
    while i < len(order):
        state = order[i]
        row: dict = {}
        for e in letters:
            nxt = machine.step(state, e)
            if not machine.ok(nxt):
                row[e] = SINK
                continue
            j = index.get(nxt)
            if j is None:
                if len(order) >= state_limit:
                    raise StateSpaceLimitExceeded(
                        f"machine exploration exceeded {state_limit} states",
                        explored=len(order),
                    )
                j = len(order)
                index[nxt] = j
                order.append(nxt)
            row[e] = j
        rows.append(row)
        i += 1

    stats = active_exploration_stats()
    if stats is not None:
        stats.dfa_states += len(order)
        stats.machine_steps += len(order) * len(letters)

    sink = len(order)
    rows = [
        {e: (sink if t == SINK else t) for e, t in row.items()} for row in rows
    ]
    rows.append({e: sink for e in letters})
    return DFA(letters, tuple(rows), 0, frozenset(range(len(order))))


def hidden_closure_dfa(
    initial_states: Sequence[Hashable],
    step: Callable[[Hashable, Event], Hashable],
    ok: Callable[[Hashable], bool],
    observable: Sequence[Event],
    hidden: Sequence[Event],
    state_limit: int = 100_000,
) -> DFA:
    """Subset construction treating hidden events as ε-moves.

    ``initial_states``/``step``/``ok`` describe the underlying product
    machine; the DFA accepts exactly the observable traces that some
    interleaving with hidden events keeps ``ok`` throughout.
    """
    letters = tuple(observable)

    def closure(states: frozenset) -> frozenset:
        seen = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for e in hidden:
                t = step(s, e)
                if ok(t) and t not in seen:
                    seen.add(t)
                    stack.append(t)
        return frozenset(seen)

    init = closure(frozenset(s for s in initial_states if ok(s)))
    index: dict[frozenset, int] = {init: 0}
    order: list[frozenset] = [init]
    rows: list[dict] = []
    i = 0
    while i < len(order):
        subset = order[i]
        row: dict = {}
        for e in letters:
            succ = frozenset(
                t for t in (step(s, e) for s in subset) if ok(t)
            )
            succ = closure(succ)
            j = index.get(succ)
            if j is None:
                if len(order) >= state_limit:
                    raise StateSpaceLimitExceeded(
                        f"hidden-closure construction exceeded "
                        f"{state_limit} subset states",
                        explored=len(order),
                    )
                j = len(order)
                index[succ] = j
                order.append(succ)
            row[e] = j
        rows.append(row)
        i += 1
    stats = active_exploration_stats()
    if stats is not None:
        stats.dfa_states += len(order)
    accepting = frozenset(i for i, subset in enumerate(order) if subset)
    return DFA(letters, tuple(rows), 0, accepting)


def embed_dfa(dfa: DFA, events: Sequence[Event], alpha) -> DFA:
    """The DFA for ``L(dfa)`` viewed inside a larger event list.

    Unlike :func:`lift_dfa` (inverse projection: foreign events self-loop),
    embedding *rejects* on events outside ``α`` — a trace set over ``α``
    contains no trace using other events.  Used to compare trace sets of
    specifications with different alphabets over a common letter set.
    """
    letters = tuple(events)
    dfa_letters = set(dfa.letters)
    sink = dfa.n_states
    rows: list[dict] = []
    for q in range(dfa.n_states):
        row = {}
        for e in letters:
            if alpha.contains(e):
                if e not in dfa_letters:
                    raise AutomatonError(
                        f"event {e} is in the embedded alphabet but not a "
                        f"letter of the embedded DFA"
                    )
                row[e] = dfa.transitions[q][e]
            else:
                row[e] = sink
        rows.append(row)
    rows.append({e: sink for e in letters})
    return DFA(letters, tuple(rows), dfa.start, dfa.accepting)


def lift_dfa(dfa: DFA, events: Sequence[Event], alpha) -> DFA:
    """The DFA for ``{h over events | h/α ∈ L(dfa)}``.

    ``alpha`` is anything with a ``contains(event)`` method.  Events inside
    ``α`` must be letters of ``dfa``; events outside self-loop.
    """
    letters = tuple(events)
    dfa_letters = set(dfa.letters)
    rows: list[dict] = []
    for q in range(dfa.n_states):
        row = {}
        for e in letters:
            if alpha.contains(e):
                if e not in dfa_letters:
                    raise AutomatonError(
                        f"event {e} is in the projection alphabet but not a "
                        f"letter of the projected DFA"
                    )
                row[e] = dfa.transitions[q][e]
            else:
                row[e] = q
        rows.append(row)
    return DFA(letters, tuple(rows), dfa.start, dfa.accepting)
