"""Finite automata over event alphabets: DFAs, boolean operations,
minimisation, inclusion with counterexamples, and compilation of trace
machines (including composition with hiding) to DFAs."""

from repro.automata.build import hidden_closure_dfa, lift_dfa, machine_to_dfa
from repro.automata.dfa import DFA
from repro.automata.ops import (
    count_words,
    complement,
    difference,
    equivalence_counterexample,
    inclusion_counterexample,
    intersection,
    is_empty,
    minimize,
    product,
    shortest_accepted,
    union_lang,
)

__all__ = [
    "DFA",
    "machine_to_dfa",
    "hidden_closure_dfa",
    "lift_dfa",
    "count_words",
    "complement",
    "difference",
    "equivalence_counterexample",
    "inclusion_counterexample",
    "intersection",
    "is_empty",
    "minimize",
    "product",
    "shortest_accepted",
    "union_lang",
]
