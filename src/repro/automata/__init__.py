"""Finite automata over event alphabets: DFAs, boolean operations,
minimisation, inclusion with counterexamples, and compilation of trace
machines (including composition with hiding) to DFAs.

The core is dense and integer-coded: letters are interned to ids through
a shared :class:`LetterTable` and transitions live in flat successor
arrays (DESIGN.md §10)."""

from repro.automata.build import (
    MachineImage,
    hidden_closure_dfa,
    lift_dfa,
    machine_to_dense,
    machine_to_dfa,
)
from repro.automata.dfa import DFA
from repro.automata.letters import LetterTable, interned_table_count
from repro.automata.ops import (
    count_words,
    complement,
    difference,
    equivalence_counterexample,
    inclusion_counterexample,
    intersection,
    is_empty,
    minimize,
    product,
    shortest_accepted,
    union_lang,
)

__all__ = [
    "DFA",
    "LetterTable",
    "MachineImage",
    "interned_table_count",
    "machine_to_dfa",
    "machine_to_dense",
    "hidden_closure_dfa",
    "lift_dfa",
    "count_words",
    "complement",
    "difference",
    "equivalence_counterexample",
    "inclusion_counterexample",
    "intersection",
    "is_empty",
    "minimize",
    "product",
    "shortest_accepted",
    "union_lang",
]
