"""Counting machines: predicates over event counts.

Example 3's ``P_RW2`` constrains differences of counts::

    (#(h/OW) − #(h/CW) = 0  ∨  #(h/OR) − #(h/CR) = 0)
    ∧  #(h/OW) − #(h/CW) ≤ 1

A :class:`CountingMachine` maintains one integer counter per
:class:`CounterDef` and evaluates a :class:`CounterCond` condition over the
counter vector.  Conditions form a small introspectable AST (linear
inequalities combined with ∧/∨/¬) so that the OUN notation can build them
and the automata layer can hash machine states (plain integer tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from typing import TYPE_CHECKING

from repro.core.errors import MachineError
from repro.core.events import Event
from repro.core.patterns import EventPattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.alphabet import Alphabet

from repro.machines.base import TraceMachine

__all__ = [
    "CounterDef",
    "CounterCond",
    "Linear",
    "CondAnd",
    "CondOr",
    "CondNot",
    "CondTrue",
    "CountingMachine",
    "method_counter",
    "difference_counter",
]

_OPS = {
    "<=": lambda v: v <= 0,
    "<": lambda v: v < 0,
    ">=": lambda v: v >= 0,
    ">": lambda v: v > 0,
    "==": lambda v: v == 0,
    "!=": lambda v: v != 0,
}


@dataclass(frozen=True, slots=True)
class CounterDef:
    """One counter: a weighted sum of per-method event counts.

    ``terms`` maps method names to integer weights; an event adds the
    weight of its method (0 if absent).  ``pattern`` optionally restricts
    which events count at all (e.g. only calls *to* a particular object);
    any event set with a ``contains`` method works — a single
    :class:`~repro.core.patterns.EventPattern` or a whole
    :class:`~repro.core.alphabet.Alphabet` (the normalization pipeline
    pushes filters into counters as alphabet-valued patterns).

    Prefer *difference* counters (``#(h/OW) − #(h/CW)`` as one counter with
    weights ``+1/−1``) over raw totals: conditions in the paper only ever
    constrain differences, and difference counters keep the reachable
    state space finite when the other conjuncts bound the protocol —
    which is what makes exact DFA compilation possible.
    """

    terms: tuple[tuple[str, int], ...]
    pattern: "EventPattern | Alphabet | None" = None

    def delta(self, e: Event) -> int:
        if self.pattern is not None and not self.pattern.contains(e):
            return 0
        for method, weight in self.terms:
            if e.method == method:
                return weight
        return 0

    def __str__(self) -> str:
        inner = " ".join(
            f"{w:+d}·#({m})" for m, w in self.terms
        )
        if self.pattern is None:
            return inner
        return f"[{inner} | {self.pattern}]"


def method_counter(method: str) -> CounterDef:
    """The paper's ``#(h/M)``: count all calls to ``method``."""
    return CounterDef(((method, 1),))


def difference_counter(plus: str, minus: str) -> CounterDef:
    """``#(h/plus) − #(h/minus)`` as a single counter."""
    return CounterDef(((plus, 1), (minus, -1)))


# ----------------------------------------------------------------------
# condition AST
# ----------------------------------------------------------------------


class CounterCond:
    """Base class for conditions over counter vectors."""

    __slots__ = ()

    def holds(self, counters: tuple[int, ...]) -> bool:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class CondTrue(CounterCond):
    def holds(self, counters: tuple[int, ...]) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class Linear(CounterCond):
    """``Σ coeffs[i]·counter[i] + const OP 0`` with OP ∈ {<=,<,>=,>,==,!=}.

    Example 3's ``#(h/OW) − #(h/CW) ≤ 1`` over counters ``(OW, CW)`` is
    ``Linear((1, -1), -1, "<=")``.
    """

    coeffs: tuple[int, ...]
    const: int
    op: str

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise MachineError(f"unknown comparison operator {self.op!r}")

    def holds(self, counters: tuple[int, ...]) -> bool:
        if len(counters) != len(self.coeffs):
            raise MachineError(
                f"condition over {len(self.coeffs)} counters applied to "
                f"{len(counters)}"
            )
        v = sum(c * x for c, x in zip(self.coeffs, counters)) + self.const
        return _OPS[self.op](v)

    def __str__(self) -> str:
        terms = [
            f"{c:+d}·c{i}" for i, c in enumerate(self.coeffs) if c != 0
        ]
        lhs = " ".join(terms) if terms else "0"
        if self.const:
            lhs += f" {self.const:+d}"
        return f"{lhs} {self.op} 0"


@dataclass(frozen=True, slots=True)
class CondAnd(CounterCond):
    parts: tuple[CounterCond, ...]

    def holds(self, counters: tuple[int, ...]) -> bool:
        return all(p.holds(counters) for p in self.parts)

    def __str__(self) -> str:
        return " ∧ ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True, slots=True)
class CondOr(CounterCond):
    parts: tuple[CounterCond, ...]

    def holds(self, counters: tuple[int, ...]) -> bool:
        return any(p.holds(counters) for p in self.parts)

    def __str__(self) -> str:
        return " ∨ ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True, slots=True)
class CondNot(CounterCond):
    part: CounterCond

    def holds(self, counters: tuple[int, ...]) -> bool:
        return not self.part.holds(counters)

    def __str__(self) -> str:
        return f"¬({self.part})"


# ----------------------------------------------------------------------
# the machine
# ----------------------------------------------------------------------


class CountingMachine(TraceMachine):
    """Counter vector + condition, as a trace machine.

    State is the tuple of counter values; counters are unbounded during
    evaluation.  Exact DFA compilation requires the *reachable, non-failed*
    counter space to be finite — which the paper's conditions guarantee in
    conjunction with their regex constraints (see
    :mod:`repro.automata.build`, which enforces a state budget).
    """

    def __init__(
        self,
        counters: Sequence[CounterDef],
        condition: CounterCond,
        saturate_at: int | None = None,
    ) -> None:
        if not counters:
            raise MachineError("counting machine needs at least one counter")
        if saturate_at is not None and saturate_at < 0:
            raise MachineError("saturation bound must be non-negative")
        self.counters = tuple(counters)
        self.condition = condition
        self.saturate_at = saturate_at

    def initial(self) -> Hashable:
        return (0,) * len(self.counters)

    def step(self, state: Hashable, event: Event) -> Hashable:
        values = (
            x + c.delta(event) for x, c in zip(state, self.counters)
        )
        if self.saturate_at is None:
            return tuple(values)
        # Saturation clamps counters into [−s, s], keeping the reachable
        # state space finite.  Sound whenever the condition is constant
        # beyond the bound (threshold conditions like "≥ k" with k ≤ s) —
        # the intended use is goal machines for liveness analyses.
        s = self.saturate_at
        return tuple(max(-s, min(s, v)) for v in values)

    def ok(self, state: Hashable) -> bool:
        return self.condition.holds(state)

    def mentioned_values(self) -> frozenset:
        out: frozenset = frozenset()
        for c in self.counters:
            if c.pattern is not None:
                out |= c.pattern.mentioned_values()
        return out

    def cache_key_parts(self):
        return (self.counters, self.condition, self.saturate_at)

    def __repr__(self) -> str:
        names = ", ".join(str(c) for c in self.counters)
        return f"CountingMachine([{names}], {self.condition})"
