"""Trace machines: executable denotations of trace-set predicates.

The paper defines trace sets "by predicates ... the largest prefix closed
subset of ``{h : Seq[α] | P(h)}``" (Section 2).  A :class:`TraceMachine`
is an executable form of such a predicate ``P``: a deterministic state
transformer with

* an :meth:`initial` state,
* a total :meth:`step` function consuming one event, and
* an :meth:`ok` predicate on states meaning "the prefix consumed so far
  satisfies ``P``".

The *largest prefix-closed subset* semantics is then uniform for every
machine: a trace belongs to the denoted trace set iff **every** prefix is
``ok`` — see :meth:`accepts`.  Because this only ever inspects states along
one run, the same machine drives

* concrete membership tests (this module),
* online runtime monitors (:mod:`repro.runtime.monitor`), and
* exact compilation to a DFA over a finite universe by exploring the
  reachable state space (:mod:`repro.automata.build`).

States must be hashable (they key the DFA exploration and hidden-event
search memo tables) and machines must be pure: ``step`` may not mutate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable

from repro.core.errors import FingerprintError
from repro.core.events import Event
from repro.core.traces import Trace

__all__ = ["TraceMachine", "RunResult"]


class RunResult:
    """Outcome of running a machine over a trace.

    ``violation_at`` is ``None`` when every prefix was ``ok``; otherwise it
    is the length of the shortest violating prefix (the index *after* the
    offending event).  ``state`` is the state reached after the full trace
    (always defined; machines are total).
    """

    __slots__ = ("state", "violation_at")

    def __init__(self, state: Hashable, violation_at: int | None) -> None:
        self.state = state
        self.violation_at = violation_at

    @property
    def accepted(self) -> bool:
        return self.violation_at is None

    def __repr__(self) -> str:
        return f"RunResult(accepted={self.accepted}, violation_at={self.violation_at})"


class TraceMachine(ABC):
    """Abstract base for trace machines (see module docstring)."""

    @abstractmethod
    def initial(self) -> Hashable:
        """The state before any event."""

    @abstractmethod
    def step(self, state: Hashable, event: Event) -> Hashable:
        """The successor state after consuming ``event`` (total, pure)."""

    @abstractmethod
    def ok(self, state: Hashable) -> bool:
        """Whether the prefix leading to ``state`` satisfies the predicate."""

    def mentioned_values(self) -> frozenset:
        """Values the predicate refers to explicitly.

        Universes must contain these (plus fresh representatives) for
        finite instantiation to exercise the predicate faithfully —
        e.g. Example 4's Client names the monitor ``o'`` only in its trace
        predicate, not in its alphabet.  Subclasses override.
        """
        return frozenset()

    def cache_key_parts(self):
        """The structural content that determines this machine's behaviour.

        Used by :mod:`repro.checker.fingerprint` to derive content-addressed
        cache keys for compiled artifacts (DESIGN.md §8).  Subclasses return
        the *definition* of the predicate — regex ASTs, sorts, counter
        definitions, sub-machines — never derived state such as compiled
        NFAs or memo tables, which may differ between equal machines.

        The default refuses: a machine without an explicit content key is
        treated as uncacheable, which costs recompilation but can never
        cause a stale-cache unsoundness.
        """
        raise FingerprintError(
            f"{type(self).__qualname__} does not define cache_key_parts()"
        )

    # ------------------------------------------------------------------
    # derived operations
    # ------------------------------------------------------------------

    def run(self, trace: Trace | Iterable[Event]) -> RunResult:
        """Run over a trace, recording the first prefix violation if any."""
        state = self.initial()
        violation = None if self.ok(state) else 0
        for i, e in enumerate(trace):
            state = self.step(state, e)
            if violation is None and not self.ok(state):
                violation = i + 1
        return RunResult(state, violation)

    def accepts(self, trace: Trace | Iterable[Event]) -> bool:
        """Largest-prefix-closed-subset membership: all prefixes ``ok``."""
        state = self.initial()
        if not self.ok(state):
            return False
        for e in trace:
            state = self.step(state, e)
            if not self.ok(state):
                return False
        return True

    def violation_index(self, trace: Trace | Iterable[Event]) -> int | None:
        """Length of the shortest violating prefix, or ``None`` if accepted."""
        return self.run(trace).violation_at
