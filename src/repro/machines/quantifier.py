"""Quantifier machines: per-object universally quantified predicates.

Example 2 defines ``Read2`` by::

    ∀x ∈ Objects : h/x prs [⟨x,o,OR⟩ ⟨x,o,R⟩* ⟨x,o,CR⟩]*

i.e. *for every environment object x*, the projection of the trace onto the
events involving ``x`` satisfies a body predicate parameterised by ``x``.
Although the quantifier ranges over an infinite sort, only the finitely
many objects occurring in a given trace can have a non-empty projection,
so the predicate is decidable: maintain one body machine per object seen
so far, and evaluate the body on the empty trace once for the (uniform)
unseen remainder.

``body_factory`` must be *uniform* in the quantified value — the body for
``x`` must treat all values of the sort alike up to substitution (true for
all predicates definable in the paper's notation).  Uniformity is what
justifies checking unseen objects via a single canonical witness.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.core.errors import MachineError
from repro.core.events import Event
from repro.core.sorts import Sort
from repro.core.values import Value

from repro.machines.base import TraceMachine

__all__ = ["ForallMachine"]


class ForallMachine(TraceMachine):
    """``∀x ∈ sort : P_x(h/x)`` as a trace machine.

    ``relevant(event)`` yields the values of the event that instantiate the
    quantifier; the default is the event's endpoints filtered by the sort,
    matching the paper's ``h/x`` projection onto events *involving* x.
    """

    def __init__(
        self,
        sort: Sort,
        body_factory: Callable[[Value], TraceMachine],
        relevant: Callable[[Event], tuple[Value, ...]] | None = None,
    ) -> None:
        self.sort = sort
        self.body_factory = body_factory
        self._relevant = relevant
        self._bodies: dict[Value, TraceMachine] = {}
        if sort.is_empty():
            raise MachineError("quantification over the empty sort is vacuous; "
                               "use TrueMachine instead")
        # The canonical witness decides whether the empty projection is ok —
        # by uniformity this answers for every unseen value at once.
        witness = sort.witness()
        self._empty_ok = self._body(witness).ok(self._body(witness).initial())

    def _body(self, value: Value) -> TraceMachine:
        m = self._bodies.get(value)
        if m is None:
            m = self.body_factory(value)
            self._bodies[value] = m
        return m

    def relevant_values(self, event: Event) -> tuple[Value, ...]:
        if self._relevant is not None:
            vals = self._relevant(event)
        else:
            vals = (event.caller, event.callee)
        out = []
        for v in vals:
            if self.sort.contains(v) and v not in out:
                out.append(v)
        return tuple(out)

    # -- TraceMachine interface ----------------------------------------

    def initial(self) -> Hashable:
        return frozenset()

    def step(self, state: Hashable, event: Event) -> Hashable:
        vals = self.relevant_values(event)
        if not vals:
            return state
        d = dict(state)
        for v in vals:
            body = self._body(v)
            sub = d.get(v, body.initial())
            d[v] = body.step(sub, event)
        return frozenset(d.items())

    def ok(self, state: Hashable) -> bool:
        if not self._empty_ok:
            return False
        return all(self._body(v).ok(s) for v, s in state)

    def mentioned_values(self) -> frozenset:
        # By uniformity, the witness body mentions what every body does —
        # except the quantified value itself, which we subtract again.
        witness = self.sort.witness()
        body_mentions = self._body(witness).mentioned_values() - {witness}
        return frozenset(self.sort.mentioned_values()) | body_mentions

    def cache_key_parts(self):
        # By uniformity (module docstring), the body machine for the
        # canonical witness determines the body for every value of the
        # sort — so the factory closure itself never enters the key.
        parts = (self.sort, self._body(self.sort.witness()))
        if self._relevant is not None:
            parts = parts + (self._relevant,)
        return parts

    def __repr__(self) -> str:
        return f"ForallMachine(∀x ∈ {self.sort})"
