"""Projection machines: evaluate a predicate on a filtered subtrace.

Two uses from the paper:

* soundness and refinement condition 3 quantify over traces of a *larger*
  alphabet and project down: ``h/α(Γ) ∈ T(Γ)``.  ``FilterMachine`` steps
  its inner machine only on events passing the filter, so running it on
  ``h`` is running the inner machine on ``h/S``;
* Example 6 restricts communication to a unique caller with
  ``P(h) ≙ h/c = h`` — expressed here as :class:`OnlyMachine`, which
  fails as soon as an event outside the filter occurs.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.core.events import Event
from repro.core.traces import as_predicate

from repro.machines.base import TraceMachine

__all__ = ["FilterMachine", "OnlyMachine"]


class FilterMachine(TraceMachine):
    """Run ``inner`` on the subtrace of events in ``event_set`` (``h/S``)."""

    def __init__(self, event_set, inner: TraceMachine) -> None:
        self.event_set = event_set
        self._pred: Callable[[Event], bool] = as_predicate(event_set)
        self.inner = inner

    def initial(self) -> Hashable:
        return self.inner.initial()

    def step(self, state: Hashable, event: Event) -> Hashable:
        if self._pred(event):
            return self.inner.step(state, event)
        return state

    def ok(self, state: Hashable) -> bool:
        return self.inner.ok(state)

    def mentioned_values(self) -> frozenset:
        out = self.inner.mentioned_values()
        mentioned = getattr(self.event_set, "mentioned_values", None)
        if mentioned is not None:
            out = out | frozenset(mentioned())
        return out

    def cache_key_parts(self):
        return (self.event_set, self.inner)

    def __repr__(self) -> str:
        return f"FilterMachine({self.event_set!r}, {self.inner!r})"


class OnlyMachine(TraceMachine):
    """``h/S = h``: every event must belong to ``event_set``.

    Example 6's restriction "communication is restricted to the unique
    object c" is ``OnlyMachine`` with the events involving ``c``.
    """

    def __init__(self, event_set) -> None:
        self.event_set = event_set
        self._pred: Callable[[Event], bool] = as_predicate(event_set)

    def initial(self) -> Hashable:
        return True

    def step(self, state: Hashable, event: Event) -> Hashable:
        return bool(state) and self._pred(event)

    def ok(self, state: Hashable) -> bool:
        return bool(state)

    def mentioned_values(self) -> frozenset:
        mentioned = getattr(self.event_set, "mentioned_values", None)
        if mentioned is not None:
            return frozenset(mentioned())
        return frozenset()

    def cache_key_parts(self):
        return (self.event_set,)

    def __repr__(self) -> str:
        return f"OnlyMachine({self.event_set!r})"
