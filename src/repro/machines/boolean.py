"""Boolean combinations of trace machines.

Trace-set predicates compose logically — Example 3 defines
``T(RW) = {h | P_RW1(h) ∧ P_RW2(h)}``.  The corresponding machines are
products of the component machines with the obvious ``ok`` combination.
Remember that the *trace set* denoted by any machine is the largest
prefix-closed subset of the satisfying traces (see
:mod:`repro.machines.base`), so negation and disjunction are safe: the
prefix-closure is applied to the combined predicate, not per conjunct.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.events import Event

from repro.machines.base import TraceMachine

__all__ = ["TrueMachine", "FalseMachine", "AndMachine", "OrMachine", "NotMachine"]


class TrueMachine(TraceMachine):
    """The trivial predicate: every trace over the alphabet is allowed.

    This is Example 1's ``T(Read) = {h : Seq[α(Read)]}``.
    """

    def initial(self) -> Hashable:
        return ()

    def step(self, state: Hashable, event: Event) -> Hashable:
        return ()

    def ok(self, state: Hashable) -> bool:
        return True

    def cache_key_parts(self):
        return ()

    def __eq__(self, other) -> bool:
        return type(other) is TrueMachine

    def __hash__(self) -> int:
        return hash(TrueMachine)

    def __repr__(self) -> str:
        return "TrueMachine()"


class FalseMachine(TraceMachine):
    """The empty predicate; its largest prefix-closed subset is empty."""

    def initial(self) -> Hashable:
        return ()

    def step(self, state: Hashable, event: Event) -> Hashable:
        return ()

    def ok(self, state: Hashable) -> bool:
        return False

    def cache_key_parts(self):
        return ()

    def __eq__(self, other) -> bool:
        return type(other) is FalseMachine

    def __hash__(self) -> int:
        return hash(FalseMachine)

    def __repr__(self) -> str:
        return "FalseMachine()"


class _Product(TraceMachine):
    def __init__(self, parts: Sequence[TraceMachine]) -> None:
        if not parts:
            raise ValueError("boolean combination needs at least one machine")
        self.parts = tuple(parts)

    def initial(self) -> Hashable:
        return tuple(m.initial() for m in self.parts)

    def step(self, state: Hashable, event: Event) -> Hashable:
        return tuple(m.step(s, event) for m, s in zip(self.parts, state))

    def mentioned_values(self) -> frozenset:
        out: frozenset = frozenset()
        for m in self.parts:
            out |= m.mentioned_values()
        return out

    def cache_key_parts(self):
        return self.parts


class AndMachine(_Product):
    """Conjunction: ok iff every component is ok."""

    def ok(self, state: Hashable) -> bool:
        return all(m.ok(s) for m, s in zip(self.parts, state))

    def __repr__(self) -> str:
        return f"AndMachine({list(self.parts)!r})"


class OrMachine(_Product):
    """Disjunction: ok iff some component is ok."""

    def ok(self, state: Hashable) -> bool:
        return any(m.ok(s) for m, s in zip(self.parts, state))

    def __repr__(self) -> str:
        return f"OrMachine({list(self.parts)!r})"


class NotMachine(TraceMachine):
    """Negation of the underlying predicate (then prefix-closed as usual)."""

    def __init__(self, inner: TraceMachine) -> None:
        self.inner = inner

    def initial(self) -> Hashable:
        return self.inner.initial()

    def step(self, state: Hashable, event: Event) -> Hashable:
        return self.inner.step(state, event)

    def ok(self, state: Hashable) -> bool:
        return not self.inner.ok(state)

    def mentioned_values(self) -> frozenset:
        return self.inner.mentioned_values()

    def cache_key_parts(self):
        return (self.inner,)

    def __repr__(self) -> str:
        return f"NotMachine({self.inner!r})"
