"""Abstract syntax of trace regular expressions.

The paper specifies trace sets with prefix-of-regular-expression
predicates, e.g. (Example 1)::

    h prs [ [⟨x,o,OW⟩ ⟨x,o,W⟩* ⟨x,o,CW⟩] • x ∈ Objects ]*

The regex alphabet is not a finite set of letters but *event templates*:
symbolic event descriptions whose positions are concrete values, sorts
("any member"), or *variables* introduced by the paper's binding operator
``•`` (:class:`Bind`) or bound externally by a quantifier
(``∀x ∈ Objects : h/x prs R``, see :mod:`repro.machines.quantifier`).

AST nodes are immutable; construction helpers at the bottom give a concise
embedded syntax, and :mod:`repro.machines.regex.parse` provides a concrete
text syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.core.errors import RegexError
from repro.core.events import Event
from repro.core.sorts import Sort
from repro.core.values import ObjectId, Value, base_sort_of

__all__ = [
    "Var",
    "Position",
    "EventTemplate",
    "Regex",
    "Eps",
    "Atom",
    "Seq",
    "Alt",
    "Star",
    "Plus",
    "Opt",
    "Bind",
    "atom",
    "tmpl",
    "meth",
    "seq",
    "alt",
    "star",
    "plus",
    "opt",
    "bind",
]


@dataclass(frozen=True, slots=True)
class Var:
    """A template variable, bound by :class:`Bind` or by a quantifier."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise RegexError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


#: A template position: a concrete value, a sort ("any member"), or a variable.
Position = Union[Value, Sort, Var]


def _match_position(
    pos: Position,
    val: Value,
    env: dict[str, Value],
    domains: dict[str, Sort],
) -> bool:
    """Match one position against a concrete value, extending ``env`` in place."""
    if isinstance(pos, Var):
        if pos.name in env:
            return env[pos.name] == val
        dom = domains.get(pos.name)
        if dom is None:
            raise RegexError(f"unbound variable {pos.name!r} has no domain")
        if not dom.contains(val):
            return False
        env[pos.name] = val
        return True
    if isinstance(pos, Sort):
        return pos.contains(val)
    return pos == val


def _position_sort(pos: Position, env: dict[str, Value], domains: dict[str, Sort]) -> Sort:
    """The set of values a position can take under ``env`` (for satisfiability)."""
    if isinstance(pos, Var):
        if pos.name in env:
            return Sort.values(env[pos.name])
        dom = domains.get(pos.name)
        if dom is None:
            raise RegexError(f"unbound variable {pos.name!r} has no domain")
        return dom
    if isinstance(pos, Sort):
        return pos
    return Sort.values(pos)


@dataclass(frozen=True, slots=True)
class EventTemplate:
    """A symbolic event with variable positions.

    ``args`` is ``None`` for *bare method* templates (the paper's Example 3
    writes just ``OW`` or ``W`` for "any event calling that method"):
    such a template matches any caller, callee, and parameter list.
    """

    caller: Position
    callee: Position
    method: str
    args: tuple[Position, ...] | None = ()

    def __post_init__(self) -> None:
        if not self.method:
            raise RegexError("template method name must be non-empty")

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for pos in (self.caller, self.callee, *(self.args or ())):
            if isinstance(pos, Var):
                out.add(pos.name)
        return frozenset(out)

    def match(
        self,
        event: Event,
        env: dict[str, Value],
        domains: dict[str, Sort],
    ) -> dict[str, Value] | None:
        """Return the extended environment if the event matches, else ``None``."""
        new_env = dict(env)
        if event.method != self.method:
            return None
        if not _match_position(self.caller, event.caller, new_env, domains):
            return None
        if not _match_position(self.callee, event.callee, new_env, domains):
            return None
        if self.args is not None:
            if len(event.args) != len(self.args):
                return None
            for pos, val in zip(self.args, event.args):
                if not _match_position(pos, val, new_env, domains):
                    return None
        return new_env

    def satisfiable(
        self, env: dict[str, Value], domains: dict[str, Sort]
    ) -> bool:
        """Can *some* event match under ``env``?

        Unbound variables range over their domains.  The only cross-position
        constraint is the event diagonal ``caller ≠ callee``; per-position
        sort emptiness plus the same-singleton diagonal case decide
        satisfiability exactly (infinite domains always admit a fresh,
        conflict-free choice).
        """
        c = _position_sort(self.caller, env, domains)
        k = _position_sort(self.callee, env, domains)
        if c.is_empty() or k.is_empty():
            return False
        if (
            c.is_singleton()
            and k.is_singleton()
            and c.the_value() == k.the_value()
        ):
            return False
        # Same unbound variable in both endpoint positions can never match
        # (caller ≠ callee always).
        if (
            isinstance(self.caller, Var)
            and isinstance(self.callee, Var)
            and self.caller.name == self.callee.name
        ):
            return False
        for pos in self.args or ():
            if _position_sort(pos, env, domains).is_empty():
                return False
        return True

    def __str__(self) -> str:
        def p(pos: Position) -> str:
            return str(pos)

        if self.args is None:
            return self.method
        if self.args:
            inner = ", ".join(p(a) for a in self.args)
            return f"⟨{p(self.caller)},{p(self.callee)},{self.method}({inner})⟩"
        return f"⟨{p(self.caller)},{p(self.callee)},{self.method}⟩"


# ----------------------------------------------------------------------
# regex nodes
# ----------------------------------------------------------------------


class Regex:
    """Base class for regex nodes."""

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        """All variable names occurring in templates below this node."""
        out: set[str] = set()
        for node in self.walk():
            if isinstance(node, Atom):
                out |= node.template.variables()
        return frozenset(out)

    def bound_variables(self) -> frozenset[str]:
        return frozenset(
            n.var.name for n in self.walk() if isinstance(n, Bind)
        )

    def mentioned_values(self) -> frozenset:
        """Concrete values named anywhere in the expression."""
        out: set = set()
        for node in self.walk():
            if isinstance(node, Bind):
                out |= node.sort.mentioned_values()
            if isinstance(node, Atom):
                t = node.template
                for pos in (t.caller, t.callee, *(t.args or ())):
                    if isinstance(pos, Var):
                        continue
                    if isinstance(pos, Sort):
                        out |= pos.mentioned_values()
                    else:
                        out.add(pos)
        return frozenset(out)

    def walk(self) -> Iterator["Regex"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Regex", ...]:
        return ()


@dataclass(frozen=True, slots=True)
class Eps(Regex):
    """The empty word."""

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True, slots=True)
class Atom(Regex):
    """A single event template."""

    template: EventTemplate

    def __str__(self) -> str:
        return str(self.template)


@dataclass(frozen=True, slots=True)
class Seq(Regex):
    """Sequential composition ``R₁ R₂ … Rₙ``."""

    parts: tuple[Regex, ...]

    def children(self) -> tuple[Regex, ...]:
        return self.parts

    def __str__(self) -> str:
        return " ".join(
            f"[{p}]" if isinstance(p, (Alt,)) else str(p) for p in self.parts
        )


@dataclass(frozen=True, slots=True)
class Alt(Regex):
    """Alternation ``R₁ | R₂ | … | Rₙ``."""

    parts: tuple[Regex, ...]

    def children(self) -> tuple[Regex, ...]:
        return self.parts

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.parts)


@dataclass(frozen=True, slots=True)
class Star(Regex):
    """Kleene repetition ``R*``."""

    body: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"[{self.body}]*"


@dataclass(frozen=True, slots=True)
class Plus(Regex):
    """One or more repetitions ``R⁺``."""

    body: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"[{self.body}]+"


@dataclass(frozen=True, slots=True)
class Opt(Regex):
    """Zero or one occurrence ``R?``."""

    body: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"[{self.body}]?"


@dataclass(frozen=True, slots=True)
class Bind(Regex):
    """The paper's binding operator ``[R(x)] • x ∈ S``.

    The variable is bound afresh on each entry into the sub-expression;
    wrapping a ``Bind`` in :class:`Star` therefore rebinds per traversal of
    the loop, exactly as in Example 1's ``Write`` specification.
    """

    var: Var
    sort: Sort
    body: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"[[{self.body}] • {self.var} ∈ {self.sort}]"


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------


def tmpl(
    caller: Position, callee: Position, method: str, *args: Position
) -> EventTemplate:
    """Build an event template ``⟨caller, callee, method(args)⟩``."""
    return EventTemplate(caller, callee, method, tuple(args))


def atom(
    caller: Position, callee: Position, method: str, *args: Position
) -> Atom:
    """Build an atomic regex from template components."""
    return Atom(tmpl(caller, callee, method, *args))


def meth(method: str) -> Atom:
    """Bare-method atom: any event calling ``method`` (Example 3 style)."""
    return Atom(EventTemplate(Sort.base("Obj"), Sort.base("Obj"), method, None))


def seq(*parts: Regex) -> Regex:
    flat: list[Regex] = []
    for p in parts:
        if isinstance(p, Seq):
            flat.extend(p.parts)
        elif not isinstance(p, Eps):
            flat.append(p)
    if not flat:
        return Eps()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def alt(*parts: Regex) -> Regex:
    if not parts:
        raise RegexError("alternation needs at least one branch")
    if len(parts) == 1:
        return parts[0]
    return Alt(tuple(parts))


def star(body: Regex) -> Star:
    return Star(body)


def plus(body: Regex) -> Plus:
    return Plus(body)


def opt(body: Regex) -> Opt:
    return Opt(body)


def bind(var: str | Var, sort: Sort, body: Regex) -> Bind:
    v = var if isinstance(var, Var) else Var(var)
    return Bind(v, sort, body)
