"""Thompson construction for trace regular expressions with binders.

The construction is classic (one fragment per node, ε-edges for glue),
extended with the paper's binding operator ``•``:

* every NFA state carries the statically-known set of *active binder
  variables* at that point of the expression;
* a simulation configuration is a pair ``(state, environment)`` where the
  environment maps active binders to the concrete values they were
  unified with;
* whenever a configuration moves to a state, its environment is restricted
  to the target's active binders — leaving a ``Bind`` fragment (in
  particular, going around an enclosing ``Star``) therefore *releases* the
  binding, which is exactly the paper's "x is bound for each traversal of
  the loop" semantics.

Liveness (used for ``prs``).  ``h prs R`` holds iff ``h`` is a prefix of a
word of ``L(R)``, i.e. iff some simulation configuration can still reach
the accepting state.  :meth:`SymbolicNFA.live` decides this exactly:

* transitions whose template is unsatisfiable under the configuration's
  environment are skipped (:meth:`EventTemplate.satisfiable`);
* an unbound variable with an *infinite* domain is left unbound — a fresh
  value can always be chosen that avoids every equality/diagonal conflict
  with the finitely many values in play, so per-template satisfiability is
  sound and complete for such variables;
* an unbound variable with a *finite* domain is enumerated, which keeps
  the analysis exact when, say, a binder ranges over two named objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import RegexError
from repro.core.events import Event
from repro.core.sorts import Sort
from repro.core.values import Value

from repro.machines.regex.ast import (
    Alt,
    Atom,
    Bind,
    Eps,
    EventTemplate,
    Opt,
    Plus,
    Regex,
    Seq,
    Star,
    Var,
)

__all__ = ["SymbolicNFA", "Config", "compile_regex"]

#: A simulation environment: bound variables as a hashable mapping.
Env = frozenset  # of (name, Value) pairs


def _restrict(env: Env, binders: frozenset[str]) -> Env:
    return frozenset((k, v) for k, v in env if k in binders)


@dataclass(frozen=True, slots=True)
class Config:
    """One NFA simulation configuration: a state plus variable bindings."""

    state: int
    env: Env

    def env_dict(self) -> dict[str, Value]:
        return dict(self.env)


class SymbolicNFA:
    """An NFA over event templates with binder-scoped environments."""

    def __init__(self, domains: dict[str, Sort]) -> None:
        self.domains: dict[str, Sort] = dict(domains)
        self.trans: list[list[tuple[EventTemplate, int]]] = []
        self.eps: list[list[int]] = []
        self.binders: list[frozenset[str]] = []
        self.start: int = -1
        self.accept: int = -1
        self._live_cache: dict[tuple[int, Env], bool] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def new_state(self, binders: frozenset[str]) -> int:
        self.trans.append([])
        self.eps.append([])
        self.binders.append(binders)
        return len(self.trans) - 1

    def add_eps(self, a: int, b: int) -> None:
        self.eps[a].append(b)

    def add_trans(self, a: int, t: EventTemplate, b: int) -> None:
        self.trans[a].append((t, b))

    @property
    def n_states(self) -> int:
        return len(self.trans)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def closure(self, configs: Iterable[Config]) -> frozenset[Config]:
        """ε-closure with environment restriction at each target state."""
        seen: set[Config] = set()
        stack = list(configs)
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            for q in self.eps[c.state]:
                stack.append(Config(q, _restrict(c.env, self.binders[q])))
        return frozenset(seen)

    def initial_configs(self) -> frozenset[Config]:
        return self.closure([Config(self.start, frozenset())])

    def step_configs(
        self, configs: Iterable[Config], event: Event
    ) -> frozenset[Config]:
        out: list[Config] = []
        for c in configs:
            env = c.env_dict()
            for t, q in self.trans[c.state]:
                new_env = t.match(event, env, self.domains)
                if new_env is None:
                    continue
                restricted = _restrict(
                    frozenset(new_env.items()), self.binders[q]
                )
                out.append(Config(q, restricted))
        return self.closure(out)

    # ------------------------------------------------------------------
    # liveness (prefix semantics)
    # ------------------------------------------------------------------

    def live(self, config: Config) -> bool:
        """Can this configuration still reach the accepting state?"""
        key = (config.state, config.env)
        cached = self._live_cache.get(key)
        if cached is not None:
            return cached
        result = self._live_search(config, set())
        self._live_cache[key] = result
        return result

    def _live_search(self, config: Config, visiting: set) -> bool:
        key = (config.state, config.env)
        if key in visiting:
            return False
        if config.state == self.accept:
            return True
        cached = self._live_cache.get(key)
        if cached is not None:
            return cached
        visiting.add(key)
        found = False
        for q in self.eps[config.state]:
            nxt = Config(q, _restrict(config.env, self.binders[q]))
            if self._live_search(nxt, visiting):
                found = True
                break
        if not found:
            env = config.env_dict()
            for t, q in self.trans[config.state]:
                for succ_env in self._abstract_successor_envs(t, env):
                    nxt = Config(
                        q, _restrict(frozenset(succ_env.items()), self.binders[q])
                    )
                    if self._live_search(nxt, visiting):
                        found = True
                        break
                if found:
                    break
        visiting.discard(key)
        if found:
            # Positive results are path-independent; safe to cache here.
            self._live_cache[key] = True
        return found

    def _abstract_successor_envs(
        self, t: EventTemplate, env: dict[str, Value]
    ) -> list[dict[str, Value]]:
        """Environments after abstractly firing ``t`` from ``env``.

        Infinite-domain unbound variables stay unbound (a fresh witness
        always exists); finite-domain unbound variables are enumerated.
        Returns ``[]`` when the template is unsatisfiable.
        """
        if not t.satisfiable(env, self.domains):
            return []
        finite_vars = [
            name
            for name in sorted(t.variables())
            if name not in env and self.domains[name].is_finite()
        ]
        if not finite_vars:
            return [env]
        outs: list[dict[str, Value]] = []

        def expand(i: int, cur: dict[str, Value]) -> None:
            if i == len(finite_vars):
                if t.satisfiable(cur, self.domains):
                    outs.append(cur)
                return
            name = finite_vars[i]
            for v in self.domains[name].enumerate_finite():
                nxt = dict(cur)
                nxt[name] = v
                expand(i + 1, nxt)

        expand(0, dict(env))
        return outs

    def accepting(self, configs: Iterable[Config]) -> bool:
        return any(c.state == self.accept for c in configs)

    def any_live(self, configs: Iterable[Config]) -> bool:
        return any(self.live(c) for c in configs)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------


def compile_regex(
    regex: Regex, free_domains: dict[str, Sort] | None = None
) -> SymbolicNFA:
    """Compile a regex to a :class:`SymbolicNFA`.

    ``free_domains`` supplies domains for variables bound *outside* the
    regex (quantifier variables); variables bound by :class:`Bind` get
    their domains from the binder.  Every variable must be covered by one
    or the other, and ``Bind`` may not shadow an enclosing binding.
    """
    free = dict(free_domains or {})
    domains = dict(free)

    def collect(node: Regex, active: frozenset[str]) -> None:
        if isinstance(node, Bind):
            name = node.var.name
            if name in active or name in free:
                raise RegexError(f"binder {name!r} shadows an enclosing binding")
            if name in domains and domains[name] != node.sort:
                raise RegexError(
                    f"binder {name!r} bound with two different sorts"
                )
            domains[name] = node.sort
            collect(node.body, active | {name})
            return
        if isinstance(node, Atom):
            for v in node.template.variables():
                if v not in active and v not in free:
                    raise RegexError(f"variable {v!r} is unbound in {node}")
            return
        for child in node.children():
            collect(child, active)

    collect(regex, frozenset())

    nfa = SymbolicNFA(domains)
    outer = frozenset(free)

    def build(node: Regex, active: frozenset[str]) -> tuple[int, int]:
        if isinstance(node, Eps):
            s = nfa.new_state(active)
            a = nfa.new_state(active)
            nfa.add_eps(s, a)
            return s, a
        if isinstance(node, Atom):
            s = nfa.new_state(active)
            a = nfa.new_state(active)
            nfa.add_trans(s, node.template, a)
            return s, a
        if isinstance(node, Seq):
            s, a = build(node.parts[0], active)
            for part in node.parts[1:]:
                s2, a2 = build(part, active)
                nfa.add_eps(a, s2)
                a = a2
            return s, a
        if isinstance(node, Alt):
            s = nfa.new_state(active)
            a = nfa.new_state(active)
            for part in node.parts:
                ps, pa = build(part, active)
                nfa.add_eps(s, ps)
                nfa.add_eps(pa, a)
            return s, a
        if isinstance(node, Star):
            s = nfa.new_state(active)
            a = nfa.new_state(active)
            bs, ba = build(node.body, active)
            nfa.add_eps(s, bs)
            nfa.add_eps(ba, a)
            nfa.add_eps(s, a)
            nfa.add_eps(ba, bs)
            return s, a
        if isinstance(node, Plus):
            s = nfa.new_state(active)
            a = nfa.new_state(active)
            bs, ba = build(node.body, active)
            nfa.add_eps(s, bs)
            nfa.add_eps(ba, a)
            nfa.add_eps(ba, bs)
            return s, a
        if isinstance(node, Opt):
            s = nfa.new_state(active)
            a = nfa.new_state(active)
            bs, ba = build(node.body, active)
            nfa.add_eps(s, bs)
            nfa.add_eps(ba, a)
            nfa.add_eps(s, a)
            return s, a
        if isinstance(node, Bind):
            # Wrapper states keep the binder *inactive* outside the body:
            # the ε-edge into the body activates it (unbound), and the
            # ε-edge out releases it — so a surrounding Star rebinds per
            # traversal, as in the paper.
            s = nfa.new_state(active)
            a = nfa.new_state(active)
            bs, ba = build(node.body, active | {node.var.name})
            nfa.add_eps(s, bs)
            nfa.add_eps(ba, a)
            return s, a
        raise RegexError(f"unknown regex node: {node!r}")

    s, a = build(regex, outer)
    nfa.start = s
    nfa.accept = a
    return nfa
