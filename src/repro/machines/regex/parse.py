"""Concrete text syntax for trace regular expressions.

The syntax mirrors the paper's notation, ASCII-fied::

    [ <x,o,OW> <x,o,W(_)>* <x,o,CW> ] . x : Objects
    [ OW [W | R]* CW  |  OR R* CR ]*

Grammar::

    regex   := concat ('|' concat)*
    concat  := postfix+
    postfix := primary ('*' | '+' | '?')*
    primary := '<' pos ',' pos ',' call '>'      -- event template
             | IDENT                             -- bare method (any event)
             | '[' regex ']' binder?
    binder  := '.' IDENT ':' IDENT               -- the paper's '• x ∈ S'
    call    := IDENT ('(' pos (',' pos)* ')')?
    pos     := IDENT | '_'

Identifier resolution:

* a ``pos`` identifier resolves to a concrete value or a sort from the
  ``symbols`` table; unknown identifiers become variables, which must be
  bound by a trailing ``binder`` or appear in ``free_vars``;
* ``_`` in an argument position is "any value of the declared parameter
  sort" and requires the method to appear in ``methods``;
* a ``binder`` sort name must resolve to a sort in ``symbols``.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass

from repro.core.errors import RegexError
from repro.core.sorts import Sort
from repro.core.values import Value

from repro.machines.regex.ast import (
    Alt,
    Atom,
    Bind,
    EventTemplate,
    Opt,
    Plus,
    Position,
    Regex,
    Seq,
    Star,
    Var,
    alt,
    seq,
)

__all__ = ["parse_regex"]

_TOKEN_RE = _re.compile(
    r"\s*(?:(?P<ident>[A-Za-z][A-Za-z0-9_']*)|(?P<punct>[<>()\[\],|*+?.:_]))"
)


@dataclass(frozen=True, slots=True)
class _Tok:
    kind: str  # "ident" | punctuation char | "eof"
    text: str
    pos: int


def _tokenize(text: str) -> list[_Tok]:
    out: list[_Tok] = []
    i = 0
    while i < len(text):
        m = _TOKEN_RE.match(text, i)
        if m is None:
            if text[i:].strip() == "":
                break
            raise RegexError(f"unexpected character {text[i]!r} at offset {i}")
        if m.group("ident"):
            out.append(_Tok("ident", m.group("ident"), m.start("ident")))
        else:
            p = m.group("punct")
            out.append(_Tok(p, p, m.start("punct")))
        i = m.end()
    out.append(_Tok("eof", "", len(text)))
    return out


class _Parser:
    def __init__(
        self,
        text: str,
        symbols: dict[str, "Value | Sort"],
        methods: dict[str, tuple[Sort, ...]],
        free_vars: dict[str, Sort],
    ) -> None:
        self.text = text
        self.toks = _tokenize(text)
        self.i = 0
        self.symbols = symbols
        self.methods = methods
        self.free_vars = free_vars
        self.used_vars: set[str] = set()
        self.bound_vars: set[str] = set()

    # -- token plumbing --------------------------------------------------

    def peek(self) -> _Tok:
        return self.toks[self.i]

    def next(self) -> _Tok:
        t = self.toks[self.i]
        self.i += 1
        return t

    def expect(self, kind: str) -> _Tok:
        t = self.next()
        if t.kind != kind:
            raise RegexError(
                f"expected {kind!r} but found {t.text or 'end of input'!r} "
                f"at offset {t.pos}"
            )
        return t

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Regex:
        r = self.regex()
        t = self.peek()
        if t.kind != "eof":
            raise RegexError(f"trailing input {t.text!r} at offset {t.pos}")
        unresolved = self.used_vars - self.bound_vars - set(self.free_vars)
        if unresolved:
            names = ", ".join(sorted(unresolved))
            raise RegexError(
                f"unresolved identifier(s) {names}: not a symbol, not a bound "
                f"variable, and not a declared free variable"
            )
        return r

    def regex(self) -> Regex:
        parts = [self.concat()]
        while self.peek().kind == "|":
            self.next()
            parts.append(self.concat())
        return alt(*parts)

    _PRIMARY_START = {"<", "[", "ident"}

    def concat(self) -> Regex:
        parts = [self.postfix()]
        while self.peek().kind in self._PRIMARY_START:
            parts.append(self.postfix())
        return seq(*parts)

    def postfix(self) -> Regex:
        r = self.primary()
        while self.peek().kind in ("*", "+", "?"):
            op = self.next().kind
            if op == "*":
                r = Star(r)
            elif op == "+":
                r = Plus(r)
            else:
                r = Opt(r)
        return r

    def primary(self) -> Regex:
        t = self.peek()
        if t.kind == "<":
            return self.template_atom()
        if t.kind == "ident":
            self.next()
            return Atom(
                EventTemplate(Sort.base("Obj"), Sort.base("Obj"), t.text, None)
            )
        if t.kind == "[":
            self.next()
            body = self.regex()
            self.expect("]")
            if self.peek().kind == ".":
                self.next()
                var_tok = self.expect("ident")
                self.expect(":")
                sort_tok = self.expect("ident")
                sort = self.symbols.get(sort_tok.text)
                if not isinstance(sort, Sort):
                    raise RegexError(
                        f"binder sort {sort_tok.text!r} at offset {sort_tok.pos} "
                        f"does not name a sort"
                    )
                self.bound_vars.add(var_tok.text)
                return Bind(Var(var_tok.text), sort, body)
            return body
        raise RegexError(
            f"expected an atom or group but found {t.text or 'end of input'!r} "
            f"at offset {t.pos}"
        )

    def template_atom(self) -> Regex:
        self.expect("<")
        caller = self.position(None)
        self.expect(",")
        callee = self.position(None)
        self.expect(",")
        name_tok = self.expect("ident")
        method = name_tok.text
        args: list[Position] = []
        has_args = False
        if self.peek().kind == "(":
            has_args = True
            self.next()
            if self.peek().kind != ")":
                args.append(self.position((method, 0)))
                k = 1
                while self.peek().kind == ",":
                    self.next()
                    args.append(self.position((method, k)))
                    k += 1
            self.expect(")")
        self.expect(">")
        sig = self.methods.get(method)
        if has_args and sig is not None and len(args) != len(sig):
            raise RegexError(
                f"method {method!r} declared with {len(sig)} parameter(s) "
                f"but used with {len(args)}"
            )
        if not has_args and sig:
            raise RegexError(
                f"method {method!r} declared with {len(sig)} parameter(s) "
                f"but used with none; write {method}({', '.join('_' * len(sig))})"
            )
        return Atom(EventTemplate(caller, callee, method, tuple(args)))

    def position(self, arg_slot: tuple[str, int] | None) -> Position:
        t = self.next()
        if t.kind == "_":
            if arg_slot is None:
                raise RegexError(
                    f"wildcard '_' is only allowed in argument positions "
                    f"(offset {t.pos})"
                )
            method, index = arg_slot
            sig = self.methods.get(method)
            if sig is None or index >= len(sig):
                raise RegexError(
                    f"wildcard argument of undeclared method {method!r} "
                    f"(offset {t.pos}); declare its parameter sorts"
                )
            return sig[index]
        if t.kind != "ident":
            raise RegexError(
                f"expected a position but found {t.text!r} at offset {t.pos}"
            )
        if t.text in self.symbols:
            return self.symbols[t.text]
        self.used_vars.add(t.text)
        return Var(t.text)


def parse_regex(
    text: str,
    symbols: dict[str, "Value | Sort"] | None = None,
    methods: dict[str, tuple[Sort, ...]] | None = None,
    free_vars: dict[str, Sort] | None = None,
) -> Regex:
    """Parse the concrete regex syntax (see module docstring).

    ``symbols`` maps identifiers to concrete values or sorts; ``methods``
    maps method names to their parameter sorts (needed for ``_`` wildcards
    and arity checking); ``free_vars`` declares externally-bound variables.
    """
    p = _Parser(text, dict(symbols or {}), dict(methods or {}), dict(free_vars or {}))
    return p.parse()
