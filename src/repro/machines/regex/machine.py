"""The ``prs`` trace machine: prefix-of-regular-expression predicates.

``PrsMachine(R)`` denotes the trace set ``{h | h prs R}`` — all traces that
are prefixes of some word of ``L(R)``.  Such sets are prefix closed by
construction (Section 2 of the paper), so the machine's ``ok`` predicate is
simply "some simulation configuration is still live".

The machine also exposes whole-word acceptance (:meth:`matches_word`),
used by tests to cross-check the prefix semantics against direct language
membership.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.events import Event
from repro.core.sorts import Sort

from repro.machines.base import TraceMachine
from repro.machines.regex.ast import Regex
from repro.machines.regex.nfa import Config, SymbolicNFA, compile_regex

__all__ = ["PrsMachine"]


class PrsMachine(TraceMachine):
    """Trace machine for ``h prs R``.

    ``free_domains`` supplies sorts for externally-bound variables (e.g.
    the ``x`` of a surrounding ``∀x ∈ Objects`` quantifier) and
    ``free_env`` optionally fixes their concrete values.  Free variables
    are active in every NFA state, so their bindings survive binder-scope
    restriction; only ``Bind``-introduced variables are released on scope
    exit.
    """

    def __init__(
        self,
        regex: Regex,
        free_domains: dict[str, Sort] | None = None,
        free_env: dict | None = None,
    ) -> None:
        self.regex = regex
        self.free_domains = dict(free_domains or {})
        self.free_env = dict(free_env or {})
        for name, value in self.free_env.items():
            self.free_domains.setdefault(name, Sort.values(value))
        self.nfa: SymbolicNFA = compile_regex(regex, self.free_domains)
        self._fixed = frozenset(self.free_env.items())

    # -- TraceMachine interface ----------------------------------------

    def initial(self) -> Hashable:
        return self.nfa.closure([Config(self.nfa.start, self._fixed)])

    def step(self, state: Hashable, event: Event) -> Hashable:
        return self.nfa.step_configs(state, event)

    def ok(self, state: Hashable) -> bool:
        return self.nfa.any_live(state)

    def mentioned_values(self) -> frozenset:
        out = set(self.regex.mentioned_values())
        for sort in self.free_domains.values():
            out |= sort.mentioned_values()
        out |= set(self.free_env.values())
        return frozenset(out)

    def cache_key_parts(self):
        # The regex AST plus the free-variable context fully determine the
        # compiled NFA; the NFA itself stays out of the key.
        return (self.regex, self.free_domains, self.free_env)

    # -- extras ----------------------------------------------------------

    def matches_word(self, trace) -> bool:
        """Whole-word membership ``h ∈ L(R)`` (not the prefix semantics)."""
        configs = self.initial()
        for e in trace:
            configs = self.nfa.step_configs(configs, e)
        return self.nfa.accepting(configs)

    def __repr__(self) -> str:
        return f"PrsMachine({self.regex})"
