"""Renaming machines: run a predicate on a value-renamed trace.

Object identities are first-class in the formalism, so *renaming* —
substituting identities consistently — is the natural notion of spec
reuse ("the same controller protocol, for a different server object").
``RenameMachine(inverse, m)`` accepts a trace ``h`` iff ``m`` accepts
``h`` with every value mapped through ``inverse`` — i.e. it is the image
of ``m``'s trace set under the forward renaming.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.core.events import Event
from repro.core.values import Value

from repro.machines.base import TraceMachine

__all__ = ["RenameMachine", "rename_event"]


def rename_event(event: Event, mapping: Mapping[Value, Value]) -> Event:
    """Apply a value renaming to all positions of an event."""
    caller = mapping.get(event.caller, event.caller)
    callee = mapping.get(event.callee, event.callee)
    args = tuple(mapping.get(a, a) for a in event.args)
    return Event(caller, callee, event.method, args)  # type: ignore[arg-type]


class RenameMachine(TraceMachine):
    """The inner machine, seen through a value renaming.

    ``inverse`` maps *new* names back to the names the inner machine was
    written with; events are translated before each step.
    """

    def __init__(self, inverse: Mapping[Value, Value], inner: TraceMachine) -> None:
        self.inverse = dict(inverse)
        self.inner = inner

    def initial(self) -> Hashable:
        return self.inner.initial()

    def step(self, state: Hashable, event: Event) -> Hashable:
        return self.inner.step(state, rename_event(event, self.inverse))

    def ok(self, state: Hashable) -> bool:
        return self.inner.ok(state)

    def mentioned_values(self) -> frozenset:
        forward = {old: new for new, old in self.inverse.items()}
        return frozenset(
            forward.get(v, v) for v in self.inner.mentioned_values()
        )

    def cache_key_parts(self):
        return (self.inverse, self.inner)

    def __repr__(self) -> str:
        return f"RenameMachine({self.inverse!r}, {self.inner!r})"
