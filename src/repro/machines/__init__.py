"""Trace machines: executable trace-set predicates.

See :mod:`repro.machines.base` for the machine model and prefix-closure
semantics.  The concrete machine zoo:

* :class:`~repro.machines.regex.machine.PrsMachine` — ``h prs R``;
* :class:`~repro.machines.quantifier.ForallMachine` — ``∀x ∈ S : P_x(h/x)``;
* :class:`~repro.machines.counting.CountingMachine` — counting constraints;
* :class:`~repro.machines.boolean` — ∧ / ∨ / ¬ / true / false;
* :class:`~repro.machines.projection.FilterMachine` — ``P(h/S)``;
* :class:`~repro.machines.projection.OnlyMachine` — ``h/S = h``.
"""

from repro.machines.base import RunResult, TraceMachine
from repro.machines.boolean import (
    AndMachine,
    FalseMachine,
    NotMachine,
    OrMachine,
    TrueMachine,
)
from repro.machines.counting import (
    difference_counter,
    CondAnd,
    CondNot,
    CondOr,
    CondTrue,
    CounterCond,
    CounterDef,
    CountingMachine,
    Linear,
    method_counter,
)
from repro.machines.projection import FilterMachine, OnlyMachine
from repro.machines.quantifier import ForallMachine
from repro.machines.regex import (
    Bind,
    PrsMachine,
    Regex,
    Var,
    atom,
    bind,
    compile_regex,
    meth,
    parse_regex,
    seq,
    star,
    alt,
    opt,
    plus,
    tmpl,
)

__all__ = [
    "RunResult",
    "TraceMachine",
    "AndMachine",
    "FalseMachine",
    "NotMachine",
    "OrMachine",
    "TrueMachine",
    "CondAnd",
    "CondNot",
    "CondOr",
    "CondTrue",
    "CounterCond",
    "CounterDef",
    "CountingMachine",
    "Linear",
    "method_counter",
    "FilterMachine",
    "OnlyMachine",
    "ForallMachine",
    "Bind",
    "PrsMachine",
    "Regex",
    "Var",
    "atom",
    "bind",
    "compile_regex",
    "meth",
    "parse_regex",
    "seq",
    "star",
    "alt",
    "opt",
    "plus",
    "tmpl",
]
