"""Wire-framing benchmark: text proto=1 vs binary EVENTS batches.

Drives the ``two_phase_dynamic`` workload scenario end-to-end over
localhost TCP four ways — text lines, and binary ``EVENTS`` batches of
1, 64 and 1024 letter ids — through the *same* generator, server, and
oracle.  Two claims are checked on every run:

* **equivalence** — each configuration's verdicts agree with the
  independent dense oracle (and therefore with each other: same seeds,
  same streams);
* **speedup** — binary at batch=1024 sustains at least ``MIN_SPEEDUP``×
  the text throughput (the acceptance gate of the batching work; see
  DESIGN.md §13 and docs/wire-protocol.md).

Runs under the pytest-benchmark harness *and* standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_wire.py -q
    PYTHONPATH=src python benchmarks/bench_wire.py

The standalone form persists ``BENCH_wire_<scenario>.json`` when
``REPRO_BENCH_DIR`` is set (repro-bench/1 schema).
"""

from __future__ import annotations

import pytest

from repro.workload import run_workload

SCENARIO = "two_phase_dynamic"
SESSIONS = 4
EVENTS_PER_SESSION = 1000
SEED = 2026

#: The acceptance gate: binary-batched (batch=1024) events/sec must be at
#: least this multiple of text-1 events/sec on the same scenario.
MIN_SPEEDUP = 3.0

#: (label, binary, batch) — batch is meaningless for the text run.
CONFIGS = [
    ("text-1", False, None),
    ("binary-b1", True, 1),
    ("binary-b64", True, 64),
    ("binary-b1024", True, 1024),
]


def _drive(binary: bool, batch: int | None):
    """One full run; returns the report (seconds covers streaming only)."""
    report = run_workload(
        SCENARIO,
        seed=SEED,
        sessions=SESSIONS,
        events=EVENTS_PER_SESSION,
        binary=binary,
        batch=batch,
    )
    assert report.all_agree, (
        f"oracle disagreement on the {'binary' if binary else 'text'} wire"
    )
    return report


@pytest.mark.parametrize("label,binary,batch", CONFIGS)
def bench_wire_throughput(benchmark, label, binary, batch):
    report = benchmark(lambda: _drive(binary, batch))
    benchmark.extra_info["wire"] = label
    benchmark.extra_info["events_per_sec"] = round(report.events_per_sec)


def main() -> None:
    from repro.workload.results import maybe_write_bench

    runs = []
    rates: dict[str, float] = {}
    for label, binary, batch in CONFIGS:
        report = _drive(binary, batch)
        rates[label] = report.events_per_sec
        print(
            f"{label}: {report.events_total} events in {report.seconds:.3f}s "
            f"→ {report.events_per_sec:,.0f} events/sec"
        )
        record = report.run_record(label)
        record["batch"] = batch
        runs.append(record)
    speedup = rates["binary-b1024"] / rates["text-1"]
    print(f"binary-b1024 / text-1 speedup: {speedup:.1f}×")
    assert speedup >= MIN_SPEEDUP, (
        f"binary batch=1024 is only {speedup:.1f}× text "
        f"(gate: {MIN_SPEEDUP}×)"
    )
    path = maybe_write_bench(
        f"wire_{SCENARIO}",
        {
            "scenario": SCENARIO,
            "seed": SEED,
            "sessions": SESSIONS,
            "events": EVENTS_PER_SESSION,
            "min_speedup": MIN_SPEEDUP,
            "speedup_b1024": round(speedup, 2),
        },
        runs,
    )
    if path is not None:
        print(f"→ {path}")


if __name__ == "__main__":
    main()
