"""Incremental build-graph benchmark: cold load vs one-spec-edit reload.

Builds a three-spec OUN document where the two *unchanged* specs carry
most of the compilation weight (long ``prs`` chains, large dense state
spaces) and the edited spec is small — the shape hot reloads actually
take.  Two claims are checked on every run:

* **incrementality** — reloading the edited document re-runs exactly
  the edited spec's elaborate/normalize/compile stages; the unchanged
  specs are stage *hits* (asserted via the
  ``repro_pipeline_stage_{hits,misses}_total`` counter family);
* **speedup** — the incremental reload is at least ``MIN_SPEEDUP``×
  faster than a cold build of the same edited document (the acceptance
  gate of the build-graph work; see docs/architecture.md).

Runs under the pytest-benchmark harness *and* standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -q
    PYTHONPATH=src python benchmarks/bench_pipeline.py

The standalone form persists ``BENCH_pipeline_reload.json`` when
``REPRO_BENCH_DIR`` is set (repro-bench/1 schema).
"""

from __future__ import annotations

import time

import pytest

from repro.pipeline import reset_shared_pipeline, stage_counts
from repro.service.registry import SpecRegistry, _reset_shared_state

#: Per-spec ``prs`` chain lengths: two heavy neighbours, one light spec
#: (S1) that the reload edits.
CHAINS = (60, 5, 60)
EDITED = 1

#: The acceptance gate: a one-spec edit must reload at least this many
#: times faster than a cold build of the same document.
MIN_SPEEDUP = 3.0

REPEAT = 5

EVENT = "<c,o,M(_)>"


def _spec(name: str, chain: int) -> str:
    body = " ".join([EVENT] * chain) + f" {EVENT}*"
    return (
        f"specification {name} {{\n"
        f"  objects o\n"
        f"  method M(Data)\n"
        f"  alphabet {{ {EVENT} ; }}\n"
        f'  traces prs "{body}"\n'
        f"}}"
    )


def _document(edit: int = 0) -> str:
    parts = ["object o", "object c"]
    for i, chain in enumerate(CHAINS):
        parts.append(_spec(f"S{i}", chain + (edit if i == EDITED else 0)))
    return "\n".join(parts)


OLD_DOC = _document()
NEW_DOC = _document(edit=1)


def _fresh() -> None:
    """Empty every process-wide memo (the cold-path precondition)."""
    reset_shared_pipeline()
    _reset_shared_state()


def _cold() -> float:
    """Seconds to build the edited document from empty memos."""
    _fresh()
    t0 = time.perf_counter()
    SpecRegistry.from_text(NEW_DOC)
    return time.perf_counter() - t0


def _incremental() -> float:
    """Seconds to hot-reload the edited document over warm memos."""
    _fresh()
    registry = SpecRegistry.from_text(OLD_DOC)
    t0 = time.perf_counter()
    report = registry.update_from_text(NEW_DOC)
    seconds = time.perf_counter() - t0
    assert report.changed == (f"S{EDITED}",), report
    return seconds


def check_incrementality() -> None:
    """Only the edited spec's stages re-run on the warm reload."""
    _fresh()
    registry = SpecRegistry.from_text(OLD_DOC)
    before = stage_counts()
    registry.update_from_text(NEW_DOC)
    after = stage_counts()

    def delta(stage: str, kind: str) -> int:
        return after[(stage, kind)] - before[(stage, kind)]

    n_unchanged = len(CHAINS) - 1
    assert delta("parse", "miss") == 1  # the text did change
    assert delta("elaborate", "hit") == n_unchanged
    assert delta("elaborate", "miss") == 1
    assert delta("normalize", "hit") == n_unchanged
    assert delta("normalize", "miss") == 1
    assert delta("compile", "hit") == n_unchanged
    assert delta("compile", "miss") == 1


@pytest.mark.parametrize("label", ["cold", "incremental"])
def bench_pipeline_reload(benchmark, label):
    fn = _cold if label == "cold" else _incremental
    seconds = benchmark(fn)
    benchmark.extra_info["path"] = label
    if seconds:
        benchmark.extra_info["reload_ms"] = round(seconds * 1e3, 3)


def main() -> None:
    from repro.workload.results import maybe_write_bench

    check_incrementality()
    print("incrementality: only the edited spec's stages re-ran")

    cold = min(_cold() for _ in range(REPEAT))
    incremental = min(_incremental() for _ in range(REPEAT))
    speedup = cold / incremental
    print(f"cold build:         {cold * 1e3:8.2f} ms")
    print(f"incremental reload: {incremental * 1e3:8.2f} ms")
    print(f"speedup: {speedup:.1f}× (gate: {MIN_SPEEDUP}×)")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental reload is only {speedup:.1f}× cold "
        f"(gate: {MIN_SPEEDUP}×)"
    )
    runs = [
        {"label": "cold", "seconds": round(cold, 6), "repeat": REPEAT},
        {
            "label": "incremental",
            "seconds": round(incremental, 6),
            "repeat": REPEAT,
        },
    ]
    path = maybe_write_bench(
        "pipeline_reload",
        {
            "chains": list(CHAINS),
            "edited_spec": f"S{EDITED}",
            "min_speedup": MIN_SPEEDUP,
            "speedup": round(speedup, 2),
        },
        runs,
    )
    if path is not None:
        print(f"→ {path}")


if __name__ == "__main__":
    main()
