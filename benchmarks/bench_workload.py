"""Workload benchmarks: oracle-checked scenario throughput.

End-to-end events/sec of `repro.workload.run_workload` — generator →
wire protocol → sharded monitors → verdict — for each corpus scenario,
fault-free vs faulted.  Every measured run also *checks* itself: the
report must show 100% oracle agreement, so the number is meaningless
unless the monitoring was correct.

Runs under the pytest-benchmark harness *and* standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_workload.py -q
    PYTHONPATH=src python benchmarks/bench_workload.py

Standalone, set ``REPRO_BENCH_DIR`` to persist one
``BENCH_workload_<scenario>.json`` per scenario (repro-bench/1 schema).
"""

from __future__ import annotations

import time

import pytest

from repro.workload import FaultSpec, maybe_write_bench, run_workload

SCENARIOS = ("two_phase_dynamic", "pubsub_fanout", "leader_election")
FAULTS = FaultSpec(reorder=0.02, dup=0.02, drop=0.02)
SEED = 2026
SESSIONS = 4
EVENTS = 250


def _run(scenario: str, faults: FaultSpec | None = None):
    report = run_workload(
        scenario, seed=SEED, faults=faults, sessions=SESSIONS, events=EVENTS
    )
    assert report.all_agree, report.describe()
    return report


@pytest.mark.parametrize("scenario", SCENARIOS)
def bench_workload_fault_free(benchmark, scenario):
    report = benchmark(lambda: _run(scenario))
    benchmark.extra_info["events_per_sec"] = round(report.events_per_sec)


@pytest.mark.parametrize("scenario", SCENARIOS)
def bench_workload_faulted(benchmark, scenario):
    report = benchmark(lambda: _run(scenario, FAULTS))
    benchmark.extra_info["events_per_sec"] = round(report.events_per_sec)
    benchmark.extra_info["faults"] = FAULTS.describe()


def main() -> None:
    for scenario in SCENARIOS:
        runs = []
        for label, faults in (("fault-free", None), ("faulted", FAULTS)):
            start = time.perf_counter()
            report = _run(scenario, faults)
            elapsed = time.perf_counter() - start
            runs.append(report.run_record(label))
            print(
                f"{scenario:18s} {label:10s}: {report.events_total} events "
                f"→ {report.events_per_sec:,.0f} events/sec "
                f"(wall {elapsed:.3f}s, agreement "
                f"{report.agreement:.0%})"
            )
        path = maybe_write_bench(
            f"workload_{scenario}",
            {
                "scenario": scenario,
                "seed": SEED,
                "sessions": SESSIONS,
                "events": EVENTS,
                "faults": FAULTS.as_dict(),
                "mode": "in-process",
            },
            runs,
        )
        if path is not None:
            print(f"  → {path}")


if __name__ == "__main__":
    main()
