"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.paper.specs import PaperCast
from repro.paper.upgrade import UpgradeCast


@pytest.fixture(scope="session")
def cast() -> PaperCast:
    return PaperCast()


@pytest.fixture(scope="session")
def upgrade() -> UpgradeCast:
    return UpgradeCast()
