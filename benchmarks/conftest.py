"""Shared fixtures for the benchmark harness.

Persistence: any ``bench_*.py`` can record results in the repo-wide
``repro-bench/1`` schema with one call — the :func:`persist_bench`
fixture under pytest, or :func:`repro.workload.results.maybe_write_bench`
directly from a standalone ``main()``.  Both are no-ops unless the
``REPRO_BENCH_DIR`` environment variable names an output directory, so
interactive runs stay side-effect free.
"""

from __future__ import annotations

import pytest

from repro.paper.specs import PaperCast
from repro.paper.upgrade import UpgradeCast
from repro.workload.results import maybe_write_bench


@pytest.fixture(scope="session")
def cast() -> PaperCast:
    return PaperCast()


@pytest.fixture(scope="session")
def upgrade() -> UpgradeCast:
    return UpgradeCast()


@pytest.fixture(scope="session")
def persist_bench():
    """One-call BENCH_*.json writer: ``persist_bench(name, params, runs)``.

    Returns the written path, or ``None`` when ``REPRO_BENCH_DIR`` is
    unset.  ``runs`` entries should carry at least ``label``, ``events``,
    ``seconds``, ``events_per_sec`` (see ``repro.workload.results``).
    """
    return maybe_write_bench
